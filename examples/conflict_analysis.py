"""Reproduce the paper's Section III conflict investigation (Fig. 1 & 2).

1. Shows task A's RMSE degrading as more (conflicting) genres join the
   joint run — the paper's Fig. 1 motivation.
2. Sweeps the inter-task relatedness knob and plots (as text) the positive
   correlation between Gradient Conflict Degree and Task Conflict
   Intensity — the paper's Fig. 2 evidence that gradient conflict *is*
   task conflict.
3. Verifies Theorem 1's bound on actual MoCoGrad calibrated gradients.

    python examples/conflict_analysis.py
"""

import numpy as np

from repro.analysis import task_interference_curve, tci_gcd_correlation
from repro.core import MoCoGrad, calibrated_gradient_bound, check_theorem1
from repro.experiments import ascii_scatter


def main() -> None:
    print("=== Fig. 1: task A RMSE vs number of joint tasks (HPS) ===")
    curve = task_interference_curve(
        records_per_genre=250, relatedness=0.05, epochs=5, seed=0
    )
    for task_set, rmse in zip(curve["task_sets"], curve["rmse"]):
        bar = "#" * int(rmse * 20)
        print(f"  {task_set:<30s} RMSE {rmse:.4f}  {bar}")
    print(
        "  → joint training with unrelated genres degrades task A "
        f"({curve['rmse'][0]:.3f} → {curve['rmse'][-1]:.3f})"
    )

    print("\n=== Fig. 2: TCI vs GCD across conflict levels ===")
    corr = tci_gcd_correlation(num_samples=250, epochs=10, seeds=2)
    print(ascii_scatter(corr["gcd"], corr["tci"], x_label="mean GCD", y_label="TCI"))
    print(f"  Pearson r = {corr['pearson_r']:.3f} (paper finds a strong positive correlation)")

    print("\n=== Theorem 1: calibrated gradient bound ===")
    rng = np.random.default_rng(0)
    balancer = MoCoGrad(calibration=0.5, seed=0)
    balancer.reset(3)
    worst_ratio = 0.0
    for _ in range(100):
        grads = rng.normal(size=(3, 50))
        calibrated = balancer.calibrate(grads)
        assert check_theorem1(calibrated, grads, 0.5)
        bound = calibrated_gradient_bound(3, 0.5, np.linalg.norm(grads, axis=1).max())
        worst_ratio = max(worst_ratio, np.linalg.norm(calibrated.sum(0)) / bound)
    print(f"  ‖ĝ‖ / K(1+λ)G over 100 random steps: worst ratio {worst_ratio:.3f} ≤ 1 ✓")


if __name__ == "__main__":
    main()
