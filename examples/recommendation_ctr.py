"""Multi-scenario CTR/CTCVR recommendation — a mini Table I.

Compares MoCoGrad against plain joint training (equal weighting) and PCGrad
on two AliExpress country scenarios, printing a per-scenario AUC table and
the ΔM aggregate versus single-task baselines.  This is the workload the
paper's introduction motivates: two nested binary prediction tasks per
market, where the conversion task is rare and easily crowded out by the
click task.

    python examples/recommendation_ctr.py
"""

import numpy as np

from repro import MTLTrainer, create_balancer, train_stl_all
from repro.data import make_aliexpress
from repro.experiments import format_percent, format_table
from repro.metrics import delta_m_from_results

SCENARIOS = ("ES", "US")
METHODS = ("equal", "pcgrad", "mocograd")
EPOCHS = 6
BATCH = 128
LR = 2e-3


def train_one(benchmark, method: str, seed: int = 0):
    model = benchmark.build_model("hps", np.random.default_rng(seed))
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        create_balancer(method, seed=seed),
        mode=benchmark.mode,
        lr=LR,
        seed=seed,
    )
    trainer.fit(benchmark.train, EPOCHS, BATCH)
    return trainer.evaluate(benchmark.test)


def main() -> None:
    rows = []
    for method in ("stl",) + METHODS:
        rows.append([method])
    deltas = {method: [] for method in METHODS}

    headers = ["Method"]
    for scenario in SCENARIOS:
        benchmark = make_aliexpress(scenario, num_records=3000, seed=0)
        headers += [f"{scenario}_CTR", f"{scenario}_CTCVR"]
        stl = train_stl_all(benchmark, EPOCHS, BATCH, lr=LR, seed=0)
        rows[0] += [stl["CTR"]["auc"], stl["CTCVR"]["auc"]]
        directions = {t.name: dict(t.higher_is_better) for t in benchmark.tasks}
        for i, method in enumerate(METHODS, start=1):
            metrics = train_one(benchmark, method)
            rows[i] += [metrics["CTR"]["auc"], metrics["CTCVR"]["auc"]]
            deltas[method].append(delta_m_from_results(metrics, stl, directions))

    headers.append("ΔM")
    rows[0].append("+0.00%")
    for i, method in enumerate(METHODS, start=1):
        rows[i].append(format_percent(float(np.mean(deltas[method]))))

    print(format_table(headers, rows, title="Mini Table I — AUC by scenario"))
    print(
        "\nShape to compare against the paper's Table I: single-task training is a\n"
        "strong baseline on these 2-task scenarios (most MTL methods score a\n"
        "negative ΔM there too), and the spread between balancing methods is small\n"
        "(fractions of an AUC point). Average more seeds for stable orderings —\n"
        "see repro.experiments.table1_aliexpress for the seed-averaged version."
    )


if __name__ == "__main__":
    main()
