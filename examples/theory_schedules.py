"""Corollary 1 live: decaying schedules, regret, and checkpointing.

Demonstrates the theory-side API:

1. runs MoCoGrad on a conflicting convex two-task problem under the
   Corollary 1 schedules (μ_t = μ/√t via :class:`InverseSqrt`,
   λ_t = λ/√t via ``MoCoGrad(calibration_decay=0.5)``);
2. measures the regret and compares it to the Theorem 3 bound (Eq. 17);
3. shows checkpoint save/restore on a trained multi-task model.

    python examples/theory_schedules.py
"""

import numpy as np

from repro import MoCoGrad, MTLTrainer
from repro.core import regret, regret_bound, run_convex_descent
from repro.data import make_aliexpress
from repro.nn import InverseSqrt, load_checkpoint, save_checkpoint


def convex_demo() -> None:
    offset = 2.0
    a, b = np.array([offset, 0.0]), np.array([-offset, 0.5])
    losses = [
        lambda theta: 0.5 * float(np.sum((theta - a) ** 2)),
        lambda theta: 0.5 * float(np.sum((theta - b) ** 2)),
    ]
    grads = [lambda theta: theta - a, lambda theta: theta - b]
    theta0 = np.array([4.0, 4.0])
    steps = 200

    balancer = MoCoGrad(calibration=0.3, calibration_decay=0.5, seed=0)
    result = run_convex_descent(grads, losses, balancer, theta0, step_size=0.2, steps=steps)
    optimum = (a + b) / 2.0
    optimal_loss = sum(fn(optimum) for fn in losses)
    measured = regret(result["total_loss"], [optimal_loss] * steps)
    bound = regret_bound(
        steps, dim=2, diameter=4 * np.linalg.norm(theta0 - optimum),
        grad_bound=10.0, num_tasks=2, step_size=0.2, calibration=0.3,
    )
    print("=== Corollary 1 on a conflicting convex problem ===")
    print(f"  final θ {result['final_theta'].round(4)}  (joint optimum {optimum})")
    print(f"  measured regret {measured:.2f}  ≤  Theorem 3 bound {bound:.2f}")
    print(f"  λ after {steps} steps: {balancer.current_calibration():.4f} (started 0.3)")


def checkpoint_demo() -> None:
    print("\n=== Scheduled training + checkpointing ===")
    benchmark = make_aliexpress("ES", num_records=1500, seed=0)
    model = benchmark.build_model("hps", np.random.default_rng(0))
    trainer = MTLTrainer(
        model, benchmark.tasks, MoCoGrad(seed=0), mode=benchmark.mode, lr=5e-3, seed=0
    )
    scheduler = InverseSqrt(trainer.optimizer)
    for epoch in range(5):
        trainer.fit(benchmark.train, 1, 128)
        lr = scheduler.step()
        print(f"  epoch {epoch + 1}: lr → {lr:.5f}")
    metrics = trainer.evaluate(benchmark.test)
    path = save_checkpoint(model, "/tmp/mocograd_demo.npz", {"auc": metrics["CTR"]["auc"]})
    fresh = benchmark.build_model("hps", np.random.default_rng(42))
    metadata = load_checkpoint(fresh, path)
    restored = fresh.forward(benchmark.test.batch(np.arange(4))[0], "CTR")
    original = model.forward(benchmark.test.batch(np.arange(4))[0], "CTR")
    assert np.allclose(restored.data, original.data)
    print(f"  checkpoint round-trip OK (stored AUC {metadata['auc']:.4f})")


if __name__ == "__main__":
    convex_demo()
    checkpoint_demo()
