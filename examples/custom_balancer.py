"""Extending the library: write and register your own gradient balancer.

Implements a toy "gradient clipping per task" balancer against the public
:class:`repro.core.GradientBalancer` API, registers it, and runs it through
the same trainer and benchmark machinery the built-in methods use — the
extension path a downstream user of this library would follow.

    python examples/custom_balancer.py
"""

import numpy as np

from repro import MTLTrainer, available_balancers, create_balancer
from repro.core import GradientBalancer, register_balancer
from repro.data import make_officehome


@register_balancer("clipped_sum")
class ClippedSum(GradientBalancer):
    """Clip each task gradient to a common norm, then sum.

    A deliberately simple conflict heuristic: no task can dominate the
    update by gradient magnitude alone.
    """

    def __init__(self, max_norm: float = 1.0, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        norms = np.linalg.norm(grads, axis=1, keepdims=True)
        scale = np.minimum(1.0, self.max_norm / np.maximum(norms, 1e-12))
        return (grads * scale).sum(axis=0)


def main() -> None:
    print("registered balancers:", ", ".join(available_balancers()))
    benchmark = make_officehome(
        num_classes=6,
        samples_per_domain=120,
        domain_conflict=0.2,
        style_strength=0.6,
        seed=0,
    )

    for method in ("equal", "clipped_sum", "mocograd"):
        model = benchmark.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model,
            benchmark.tasks,
            create_balancer(method, seed=0),
            mode=benchmark.mode,
            lr=3e-3,
            seed=0,
        )
        trainer.fit(benchmark.train, epochs=15, batch_size=24)
        metrics = trainer.evaluate(benchmark.test)
        avg = np.mean([m["accuracy"] for m in metrics.values()])
        per_domain = "  ".join(f"{d}={m['accuracy']:.3f}" for d, m in metrics.items())
        print(f"{method:>12s}: avg acc {avg:.3f}   {per_domain}")


if __name__ == "__main__":
    main()
