"""Quickstart: train MoCoGrad on a synthetic AliExpress scenario.

Runs in a few seconds on a laptop::

    python examples/quickstart.py

Demonstrates the three core objects of the library:

- a **benchmark** (dataset + task specs + model factory),
- a **balancer** (MoCoGrad here; swap any name from
  ``repro.available_balancers()``),
- the **trainer** that collects per-task gradients and applies the
  balanced update.
"""

import numpy as np

from repro import MoCoGrad, MTLTrainer
from repro.data import make_aliexpress


def main() -> None:
    # 1. Build the 2-task (CTR, CTCVR) benchmark for the Spanish scenario.
    benchmark = make_aliexpress("ES", num_records=3000, seed=0)
    print(f"benchmark: {benchmark.name}  tasks: {benchmark.task_names}")

    # 2. Build the paper's hard-parameter-sharing model.
    model = benchmark.build_model("hps", np.random.default_rng(0))
    print(f"model parameters: {model.num_parameters():,}")

    # 3. Train with MoCoGrad (λ = 0.12, the paper's Fig. 9 optimum).
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        MoCoGrad(calibration=0.12, seed=0),
        mode=benchmark.mode,
        lr=2e-3,
        seed=0,
    )
    history = trainer.fit(benchmark.train, epochs=8, batch_size=128)

    # 4. Inspect the run.
    print("\nper-epoch average loss:")
    for epoch, loss in enumerate(history.average_loss_curve(), 1):
        print(f"  epoch {epoch}: {loss:.4f}")

    metrics = trainer.evaluate(benchmark.test)
    print("\ntest AUC:")
    for task, values in metrics.items():
        print(f"  {task}: {values['auc']:.4f}")


if __name__ == "__main__":
    main()
