"""Dense-prediction multi-task learning on procedural street scenes.

Trains the CityScapes-style 2-task model (7-class segmentation + depth)
under MoCoGrad, under two different architectures (HPS and MTAN), and
prints the full Table IV metric set — the paper's §VI-B point that
MoCoGrad composes with richer architectures.

    python examples/scene_understanding.py
"""

import numpy as np

from repro import MoCoGrad, MTLTrainer
from repro.data import make_cityscapes
from repro.experiments import format_table

ARCHITECTURES = ("hps", "mtan")
EPOCHS = 4
BATCH = 16
LR = 3e-3


def main() -> None:
    benchmark = make_cityscapes(num_scenes=150, seed=0)
    rows = []
    for architecture in ARCHITECTURES:
        model = benchmark.build_model(architecture, np.random.default_rng(0))
        trainer = MTLTrainer(
            model,
            benchmark.tasks,
            MoCoGrad(seed=0),
            mode=benchmark.mode,
            lr=LR,
            seed=0,
        )
        history = trainer.fit(benchmark.train, EPOCHS, BATCH)
        metrics = trainer.evaluate(benchmark.test)
        rows.append(
            [
                architecture,
                metrics["segmentation"]["miou"],
                metrics["segmentation"]["pixacc"],
                metrics["depth"]["abs_err"],
                metrics["depth"]["rel_err"],
                history.average_loss_curve()[-1],
            ]
        )
        print(f"{architecture}: final avg train loss {history.average_loss_curve()[-1]:.4f}")

    print()
    print(
        format_table(
            ["Arch", "mIoU↑", "PixAcc↑", "AbsErr↓", "RelErr↓", "final loss"],
            rows,
            title="MoCoGrad × architecture on CityScapes-sim (cf. paper Fig. 7)",
        )
    )


if __name__ == "__main__":
    main()
