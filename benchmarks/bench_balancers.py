"""Balancer-kernel microbenchmark: loop vs vectorized pairwise kernels.

Measures the balance phase alone — direct ``balancer.balance()`` calls on
synthetic ``(K, d)`` gradient matrices, telemetry disabled — for every
balancer with a pairwise kernel (MoCoGrad, PCGrad, GradVac) under both
``pairwise_mode`` settings at K ∈ {2, 4, 8, 16}, and writes
``BENCH_balancers.json`` at the repository root.

The workload isolates what PR 4 changed: Algorithm 1's conflict test and
Eq. (8) calibration (and the PCGrad/GradVac surgery loops) used to run as
O(K²) Python loops with per-pair d-length BLAS-1 calls; the vectorized
kernels read the shared per-step GradStats cache (one K×K Gram GEMM) and
do O(K) incremental updates per pair.  d = 4096 matches the shared-trunk
dimensionality regime of the paper's benchmarks.

Below each balancer's ``vectorize_min_tasks`` threshold (default 4;
PCGrad uses 6) the vectorized mode dispatches to the loop kernel (the
fixed overhead loses to a handful of pairs), so those rows compare
identical code and are recorded with ``"vectorized_kernel": false`` and
excluded from the smoke gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_balancers.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if any genuinely
vectorized kernel is slower than its loop reference (speedup < 1.0).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from benchlib import provenance

import repro.balancers  # noqa: F401 - triggers registration
from repro.core import create_balancer

TASK_COUNTS = (2, 4, 8, 16)
DIM = 4096
BALANCERS = ("mocograd", "pcgrad", "gradvac")


def median_balance_seconds(
    name: str, mode: str, num_tasks: int, steps: int, warmup: int
) -> float:
    """Median wall-clock seconds of one ``balance()`` call."""
    rng = np.random.default_rng(0)
    grads = [rng.normal(size=(num_tasks, DIM)) for _ in range(warmup + steps)]
    losses = np.ones(num_tasks)
    balancer = create_balancer(name, seed=0, pairwise_mode=mode)
    balancer.reset(num_tasks)
    durations = []
    for matrix in grads:
        start = time.perf_counter()
        balancer.balance(matrix, losses)
        durations.append(time.perf_counter() - start)
    return float(np.median(durations[warmup:]))


def run(steps: int, warmup: int) -> dict:
    results = []
    for name in BALANCERS:
        min_tasks = create_balancer(name).vectorize_min_tasks
        for num_tasks in TASK_COUNTS:
            loop = median_balance_seconds(name, "loop", num_tasks, steps, warmup)
            vectorized = median_balance_seconds(name, "vectorized", num_tasks, steps, warmup)
            results.append(
                {
                    "balancer": name,
                    "num_tasks": num_tasks,
                    "loop_seconds": loop,
                    "vectorized_seconds": vectorized,
                    "speedup": loop / vectorized,
                    # Below the dispatch threshold both modes run the loop
                    # kernel; the row then measures noise around 1.0.
                    "vectorized_kernel": num_tasks >= min_tasks,
                }
            )
    return {
        "benchmark": "balancers",
        "workload": {
            "dim": DIM,
            "task_counts": list(TASK_COUNTS),
            "steps": steps,
            "warmup": warmup,
        },
        **provenance(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if any vectorized kernel is "
        "slower than its loop reference",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_balancers.json",
        help="output JSON path (default: <repo root>/BENCH_balancers.json)",
    )
    args = parser.parse_args(argv)

    steps, warmup = (15, 5) if args.smoke else (50, 10)
    report = run(steps, warmup)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'balancer':>10} {'K':>3} {'loop (ms)':>10} {'vectorized (ms)':>16} {'speedup':>8}")
    for row in report["results"]:
        note = "" if row["vectorized_kernel"] else "  (loop dispatch)"
        print(
            f"{row['balancer']:>10} {row['num_tasks']:>3} "
            f"{row['loop_seconds'] * 1e3:>10.3f} "
            f"{row['vectorized_seconds'] * 1e3:>16.3f} {row['speedup']:>7.2f}x{note}"
        )
    print(f"wrote {args.out}")

    if args.smoke:
        slow = [
            r
            for r in report["results"]
            if r["vectorized_kernel"] and r["speedup"] < 1.0
        ]
        if slow:
            rows = ", ".join(f"{r['balancer']}@K={r['num_tasks']}" for r in slow)
            print(f"FAIL: vectorized kernel slower than loop for {rows}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
