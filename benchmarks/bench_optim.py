"""Optimizer microbenchmark: flat arena steps vs per-parameter loops.

Two measurements, both written to ``BENCH_optim.json`` at the repository
root:

1. **Optimizer step** — each registered optimizer (SGD+momentum, Adam,
   AdaGrad, RMSProp) over an arena-packed parameter set shaped like a real
   model (many small tensors, total d ≥ 1e5), timed in
   ``step_mode="flat"`` vs ``step_mode="loop"``.  The acceptance bar is
   ≥ 1.5× on Adam at this d; CI's smoke gate fails any optimizer below
   1.0×.
2. **Full train step** — ``MTLTrainer`` (Adam, multi-root backward) with the
   arena on (``use_arena=True, step_mode="flat"``) vs off
   (``use_arena=False``), timing the whole ``step`` span: the packed path
   removes the flatten/scatter copies and the per-parameter optimizer loop
   from every step.

The flat kernels must also be allocation-free: after warmup, one flat
``_step`` may not allocate a single d-length temporary.  This is asserted
on every run via a ``tracemalloc`` probe (numpy buffers are tracked through
the tracemalloc allocation domain), so a regression that reintroduces
``grad**2`` / bias-correction / weight-decay temporaries fails the
benchmark before any timing is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_optim.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if any flat kernel is
slower than its loop oracle (speedup < 1.0) or the allocation probe trips.
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc
from pathlib import Path

import numpy as np
from benchlib import provenance

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.data import TaskSpec
from repro.nn import Adam, AdaGrad, Parameter, ParameterArena, RMSProp, SGD
from repro.nn.functional import mse_loss
from repro.obs import Telemetry
from repro.training import MTLTrainer

OPTIMIZERS = {
    "sgdm": (SGD, dict(lr=1e-2, momentum=0.9, weight_decay=1e-4)),
    "adam": (Adam, dict(lr=1e-3, weight_decay=1e-4)),
    "adagrad": (AdaGrad, dict(lr=1e-2)),
    "rmsprop": (RMSProp, dict(lr=1e-3)),
}

# ~256 tensors averaging ~430 elements: the granularity of a real trunk
# (weights + biases), total d ≈ 1.1e5 — the Adam/d≥1e5 acceptance config.
PARAM_SHAPES = [(24, 16), (16,)] * 128

TRAIN_BATCH = 32
TRAIN_IN_DIM = 16
TRAIN_HIDDEN = [48] * 6
TRAIN_TASKS = 4


def make_arena(seed: int = 0) -> ParameterArena:
    rng = np.random.default_rng(seed)
    return ParameterArena([Parameter(rng.normal(size=shape)) for shape in PARAM_SHAPES])


def assert_allocation_free(optimizer, dim: int) -> int:
    """Probe one warmed-up flat step for d-length allocations.

    Returns the observed peak allocation delta in bytes; raises
    ``AssertionError`` when it reaches a quarter of a d-length buffer.
    """
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    for _ in range(3):
        optimizer.step()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    delta = peak - baseline
    limit = dim * 8 // 4
    assert delta < limit, (
        f"flat _step allocated {delta} bytes after warmup "
        f"(d-length buffer is {dim * 8}); the fused path must be allocation-free"
    )
    return delta


def time_optimizer_steps(name: str, step_mode: str, steps: int, warmup: int) -> float:
    """Median seconds per optimizer step in the given mode."""
    import time

    cls, kwargs = OPTIMIZERS[name]
    arena = make_arena()
    optimizer = cls(arena, step_mode=step_mode, **kwargs)
    arena.grad[:] = np.random.default_rng(1).normal(size=arena.size)
    durations = []
    for i in range(warmup + steps):
        start = time.perf_counter()
        optimizer.step()
        if i >= warmup:
            durations.append(time.perf_counter() - start)
    return float(np.median(durations))


def bench_optimizer_steps(steps: int, warmup: int) -> list[dict]:
    results = []
    for name in OPTIMIZERS:
        cls, kwargs = OPTIMIZERS[name]
        arena = make_arena()
        flat = cls(arena, step_mode="flat", **kwargs)
        arena.grad[:] = np.random.default_rng(1).normal(size=arena.size)
        for _ in range(3):  # warm scratch/state before probing
            flat.step()
        probe_bytes = assert_allocation_free(flat, arena.size)
        loop_seconds = time_optimizer_steps(name, "loop", steps, warmup)
        flat_seconds = time_optimizer_steps(name, "flat", steps, warmup)
        results.append(
            {
                "optimizer": name,
                "dim": arena.size,
                "num_parameters": len(arena),
                "loop_seconds": loop_seconds,
                "flat_seconds": flat_seconds,
                "speedup": loop_seconds / flat_seconds,
                "probe_peak_bytes": probe_bytes,
            }
        )
    return results


def median_train_step_seconds(use_arena: bool, steps: int, warmup: int) -> float:
    """Median whole-step seconds of an MTLTrainer with/without the arena."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(TRAIN_BATCH, TRAIN_IN_DIM))
    names = [f"t{k}" for k in range(TRAIN_TASKS)]
    targets = {name: rng.normal(size=TRAIN_BATCH) for name in names}
    tasks = [TaskSpec(name, mse_loss, {}, {}) for name in names]
    model = HardParameterSharing(
        MLPEncoder(TRAIN_IN_DIM, TRAIN_HIDDEN, np.random.default_rng(1)),
        {
            name: LinearHead(TRAIN_HIDDEN[-1], 1, np.random.default_rng(2))
            for name in names
        },
    )
    telemetry = Telemetry()
    trainer = MTLTrainer(
        model,
        tasks,
        EqualWeighting(),
        seed=0,
        telemetry=telemetry,
        use_arena=use_arena,
        step_mode="auto",
    )
    for _ in range(warmup + steps):
        trainer.train_step_single(x, targets)
    return float(np.median(telemetry.durations("step")[warmup:]))


def run(steps: int, warmup: int, train_steps: int, train_warmup: int) -> dict:
    optimizer_results = bench_optimizer_steps(steps, warmup)
    loop_step = median_train_step_seconds(False, train_steps, train_warmup)
    flat_step = median_train_step_seconds(True, train_steps, train_warmup)
    return {
        "benchmark": "optim",
        "workload": {
            "dim": sum(int(np.prod(shape)) for shape in PARAM_SHAPES),
            "num_parameters": len(PARAM_SHAPES),
            "steps": steps,
            "warmup": warmup,
            "train": {
                "batch": TRAIN_BATCH,
                "in_dim": TRAIN_IN_DIM,
                "hidden": TRAIN_HIDDEN,
                "tasks": TRAIN_TASKS,
                "steps": train_steps,
                "warmup": train_warmup,
            },
        },
        **provenance(),
        "results": optimizer_results,
        "train_step": {
            "loop_seconds": loop_step,
            "flat_seconds": flat_step,
            "speedup": loop_step / flat_step,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if any flat kernel is slower than its loop oracle",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_optim.json",
        help="output JSON path (default: <repo root>/BENCH_optim.json)",
    )
    args = parser.parse_args(argv)

    steps, warmup = (60, 10) if args.smoke else (200, 20)
    train_steps, train_warmup = (15, 5) if args.smoke else (40, 8)
    report = run(steps, warmup, train_steps, train_warmup)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'optimizer':>9} {'loop (us)':>10} {'flat (us)':>10} {'speedup':>8}")
    for row in report["results"]:
        print(
            f"{row['optimizer']:>9} {row['loop_seconds'] * 1e6:>10.1f} "
            f"{row['flat_seconds'] * 1e6:>10.1f} {row['speedup']:>7.2f}x"
        )
    train = report["train_step"]
    print(
        f"train-step: no-arena {train['loop_seconds'] * 1e3:.3f} ms, "
        f"arena {train['flat_seconds'] * 1e3:.3f} ms, {train['speedup']:.2f}x"
    )
    print(f"wrote {args.out}")

    if args.smoke:
        slow = [r for r in report["results"] if r["speedup"] < 1.0]
        failures = []
        if slow:
            names = ", ".join(r["optimizer"] for r in slow)
            failures.append(f"flat slower than loop for: {names}")
        if train["speedup"] < 1.0:
            failures.append(f"arena train step slower than loop ({train['speedup']:.2f}x)")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
