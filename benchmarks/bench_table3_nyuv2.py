"""Table III — NYUv2 scene understanding (seg / depth / normals, 9 metrics + ΔM)."""

from repro.experiments import table3_nyuv2 as experiment


def test_table3_nyuv2(benchmark, emit, preset):
    result = benchmark.pedantic(
        lambda: experiment.run(preset=preset), rounds=1, iterations=1
    )
    emit("table3", experiment.format_result(result))
    for method, metrics in result["metrics"].items():
        assert 0.0 <= metrics["segmentation"]["miou"] <= 1.0, method
        assert metrics["depth"]["abs_err"] >= 0.0, method
        assert 0.0 <= metrics["normal"]["within_30"] <= 1.0, method
        # Ordering invariant of the within-t° columns.
        assert (
            metrics["normal"]["within_11.25"]
            <= metrics["normal"]["within_22.5"]
            <= metrics["normal"]["within_30"]
        ), method
