"""Ablation — MoCoGrad's internal design choices.

DESIGN.md documents two ambiguities in the paper's Algorithm 1 (momentum
update cadence; raw vs calibrated momentum source) and the λ calibration
strength.  This bench measures all variants on the conflict-stress
workload so the fidelity choices are backed by numbers, and additionally
verifies the paper's §VI-C feature-level gradient speedup.
"""

import numpy as np

from repro import MTLTrainer, create_balancer
from repro.data import make_aliexpress, make_movielens
from repro.data.movielens import GENRES
from repro.experiments import format_table

SETTINGS = {
    "quick": {"records_per_genre": 250, "epochs": 5, "seeds": 2},
    "full": {"records_per_genre": 500, "epochs": 8, "seeds": 4},
}

VARIANTS = {
    "per_step/raw λ=0.12": {},
    "per_pair/raw λ=0.12": {"momentum_update": "per_pair"},
    "per_step/calibrated λ=0.12": {"momentum_source": "calibrated"},
    "per_step/raw λ=0.06": {"calibration": 0.06},
    "per_step/raw λ=0.30": {"calibration": 0.30},
    "per_step/raw β₁=0.5": {"beta1": 0.5},
}


def _run_variants(preset):
    params = SETTINGS[preset]
    benchmark = make_movielens(
        genres=GENRES[:3],
        records_per_genre=params["records_per_genre"],
        relatedness=0.05,
        seed=0,
    )
    results = {}
    for label, kwargs in VARIANTS.items():
        values = []
        for seed in range(params["seeds"]):
            model = benchmark.build_model("hps", np.random.default_rng(seed))
            trainer = MTLTrainer(
                model,
                benchmark.tasks,
                create_balancer("mocograd", seed=seed, **kwargs),
                mode=benchmark.mode,
                lr=3e-3,
                seed=seed,
            )
            trainer.fit(benchmark.train, params["epochs"], 24)
            metrics = trainer.evaluate(benchmark.test)
            values.append(np.mean([m["rmse"] for m in metrics.values()]))
        results[label] = float(np.mean(values))
    return results


def test_ablation_mocograd_modes(benchmark, emit, preset):
    results = benchmark.pedantic(lambda: _run_variants(preset), rounds=1, iterations=1)
    rows = sorted(results.items(), key=lambda kv: kv[1])
    emit(
        "ablation_mocograd_modes",
        format_table(
            ["Variant", "Avg RMSE ↓"],
            [[k, v] for k, v in rows],
            title="Ablation — MoCoGrad design choices (conflict-stress MovieLens)",
        ),
    )
    assert all(np.isfinite(v) for v in results.values())


def _run_grad_space_study():
    data = make_aliexpress("ES", num_records=1200, seed=0)
    timings, aucs = {}, {}
    for space in ("parameters", "features"):
        model = data.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model,
            data.tasks,
            create_balancer("mocograd", seed=0),
            mode=data.mode,
            grad_space=space,
            lr=2e-3,
            seed=0,
        )
        # Batch must divide the 960-sample train split: in feature space
        # d_feat follows the batch shape, and MoCoGrad's (K, d_feat)
        # momentum rejects a trailing partial batch (see DESIGN.md,
        # "Gradient spaces").
        trainer.fit(data.train, 4, 120)
        timings[space] = trainer.median_step_seconds
        metrics = trainer.evaluate(data.test)
        aucs[space] = float(np.mean([m["auc"] for m in metrics.values()]))
    return timings, aucs


def test_ablation_feature_gradients_speedup(benchmark, emit):
    """The paper's feature-level gradients must (a) speed up the step and
    (b) keep AUC in the same range as parameter-level balancing."""
    timings, aucs = benchmark.pedantic(_run_grad_space_study, rounds=1, iterations=1)
    emit(
        "ablation_grad_source",
        format_table(
            ["grad_space", "ms / step", "mean AUC"],
            [[s, timings[s] * 1000, aucs[s]] for s in ("parameters", "features")],
            title="Ablation — parameter-level vs feature-level gradients (§VI-C)",
            float_digits=3,
        ),
    )
    assert timings["features"] < timings["parameters"]
    assert abs(aucs["features"] - aucs["parameters"]) < 0.1
