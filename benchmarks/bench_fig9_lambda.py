"""Fig. 9 — sensitivity of MoCoGrad to the calibration strength λ.

Regenerates the λ sweep on Office-Home.  The paper reports an interior
optimum (λ ≈ 0.12) with degradation at both extremes; at synthetic scale
we assert the weaker, noise-robust form of that shape: the best λ over the
sweep is strictly better than the worst (λ matters), and every setting
trains to above-chance accuracy.
"""

import numpy as np

from repro.analysis import DEFAULT_LAMBDA_GRID, lambda_sensitivity
from repro.experiments import ascii_bar_chart, format_table

SETTINGS = {
    "quick": {"num_classes": 8, "samples_per_domain": 80, "epochs": 20},
    "full": {"num_classes": 10, "samples_per_domain": 150, "epochs": 35},
}


def test_fig9_lambda_sensitivity(benchmark, emit, preset):
    params = SETTINGS[preset]
    result = benchmark.pedantic(
        lambda: lambda_sensitivity(
            lambda_grid=DEFAULT_LAMBDA_GRID,
            num_classes=params["num_classes"],
            samples_per_domain=params["samples_per_domain"],
            epochs=params["epochs"],
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    rows = list(zip(result["lambda"], result["avg_accuracy"]))
    table = format_table(
        ["λ", "Avg ACC"],
        rows,
        title="Fig. 9 — λ sensitivity on Office-Home-sim",
        float_digits=3,
    )
    bars = ascii_bar_chart(
        {f"λ={lam:.2f}": acc for lam, acc in rows}, sort=False, fmt="{:.3f}"
    )
    emit("fig9", table + "\n\n" + bars)
    accs = np.asarray(result["avg_accuracy"])
    chance = 1.0 / params["num_classes"]
    assert np.all(accs > chance)
    assert accs.max() > accs.min()  # λ is a live hyper-parameter
