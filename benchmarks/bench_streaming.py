"""Streaming shard pipeline benchmark: bounded memory at eager-or-better speed.

Times one full epoch (dataset construction + generation + batch
iteration) over the AliExpress generator at 20x its default row count in
five configurations, and writes ``BENCH_streaming.json`` at the
repository root:

- ``eager`` — the reference oracle: materialize every shard into one
  in-memory dataset, then stream batches from the concatenated arrays;
- ``streaming`` — chunked generation on the consumer thread
  (``prefetch_depth=0``), at most one shard alive at a time;
- ``prefetch`` — double-buffered: a background thread generates shard
  ``i+1`` while the loader batches shard ``i``;
- ``cache_cold`` / ``cache_warm`` — the ``np.memmap`` shard cache on its
  first (generate + write) and second (mmap-only) epoch.

Streaming never pays eager's full-concat copy or its O(total_rows)
residency, so ``prefetch`` must be at least as fast as ``eager`` even on
a single core, and ``cache_warm`` must beat it outright.  A separate
tracemalloc probe checks the bounded-memory claim directly: the
streaming peak must stay flat (within ``MEMORY_GATE``) when the row
count grows 10x, while the eager peak grows with it.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if ``prefetch`` or
``cache_warm`` is slower than ``eager`` (speedup < 1.0) or the streaming
peak is not flat across the 10x row-count step.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from benchlib import provenance

from repro.data import (
    AliExpressStream,
    ShardCache,
    StreamingDataset,
    StreamingLoader,
    as_stream,
)

COUNTRY = "ES"
BATCH = 256
SEED = 0
#: Streaming peak memory at 10x rows may be at most this multiple of the
#: peak at 1x rows (the truly row-independent ideal is 1.0; slack covers
#: allocator jitter and the fixed world/calibration block).
MEMORY_GATE = 1.5


def build_dataset(
    rows: int, chunk: int, cache: ShardCache | None = None, prefetch_depth: int = 0
) -> StreamingDataset:
    """Fresh AliExpress streaming dataset for one timed epoch."""
    source = AliExpressStream(COUNTRY, rows, chunk, seed=SEED)
    return StreamingDataset(source, cache=cache, prefetch_depth=prefetch_depth)


def consume(loader: StreamingLoader) -> int:
    """Drain one epoch, touching every batch; returns rows consumed."""
    rows = 0
    for _, targets in loader:
        ctr = targets["CTR"]
        rows += len(ctr)
        ctr.sum()  # force the batch arrays to actually be read
    return rows


def run_epoch(mode: str, rows: int, chunk: int, cache_dir: Path | None = None) -> float:
    """Wall-clock seconds for one full epoch in ``mode``."""
    start = time.perf_counter()
    if mode == "eager":
        dataset = build_dataset(rows, chunk)
        stream = as_stream(dataset.materialize(), chunk, prefetch_depth=0)
    elif mode == "streaming":
        stream = build_dataset(rows, chunk)
    elif mode == "prefetch":
        stream = build_dataset(rows, chunk, prefetch_depth=1)
    elif mode in ("cache_cold", "cache_warm"):
        stream = build_dataset(rows, chunk, cache=ShardCache(cache_dir), prefetch_depth=1)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    consumed = consume(StreamingLoader(stream, BATCH, seed=SEED))
    seconds = time.perf_counter() - start
    if consumed != rows:
        raise AssertionError(f"{mode}: consumed {consumed} of {rows} rows")
    return seconds


def peak_bytes(mode: str, rows: int, chunk: int) -> int:
    """tracemalloc peak across one epoch in ``mode`` (no cache)."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        run_epoch(mode, rows, chunk)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def run(
    rows: int, chunk: int, repeats: int, memory_rows: int, memory_chunk: int
) -> dict:
    results = []
    with tempfile.TemporaryDirectory(prefix="bench_streaming_") as tmp:
        cache_dir = Path(tmp)
        # One cold pass primes the cache; warm passes then mmap every shard.
        timings = {"cache_cold": run_epoch("cache_cold", rows, chunk, cache_dir)}
        # Best-of-``repeats``, with the modes interleaved round-robin so a
        # slow phase of the host (frequency scaling, a noisy neighbor on a
        # shared runner) skews every mode equally instead of one of them.
        interleaved = ("eager", "streaming", "prefetch", "cache_warm")
        for _ in range(repeats):
            for mode in interleaved:
                seconds = run_epoch(mode, rows, chunk, cache_dir)
                timings[mode] = min(timings.get(mode, seconds), seconds)
    eager_seconds = timings["eager"]
    for mode in ("eager", "streaming", "prefetch", "cache_cold", "cache_warm"):
        seconds = timings[mode]
        results.append(
            {
                "mode": mode,
                "seconds": seconds,
                "rows_per_sec": rows / seconds,
                "speedup": eager_seconds / seconds,
            }
        )

    # The probe uses its own (small, fixed) chunk size: boundedness means
    # the peak tracks the chunk, not the row count, so the chunk must stay
    # constant — and well below ``memory_rows`` — while rows grow 10x.
    streaming_base = peak_bytes("prefetch", memory_rows, memory_chunk)
    streaming_10x = peak_bytes("prefetch", memory_rows * 10, memory_chunk)
    eager_10x = peak_bytes("eager", memory_rows * 10, memory_chunk)
    memory = {
        "rows_base": memory_rows,
        "rows_10x": memory_rows * 10,
        "chunk_size": memory_chunk,
        "streaming_peak_base_bytes": streaming_base,
        "streaming_peak_10x_bytes": streaming_10x,
        "eager_peak_10x_bytes": eager_10x,
        "peak_ratio": streaming_10x / streaming_base,
        "eager_over_streaming_10x": eager_10x / streaming_10x,
    }
    return {
        "benchmark": "streaming",
        "workload": {
            "generator": "aliexpress",
            "country": COUNTRY,
            "rows": rows,
            "chunk_size": chunk,
            "batch": BATCH,
            "repeats": repeats,
            "memory_rows": [memory_rows, memory_rows * 10],
            "memory_chunk": memory_chunk,
        },
        **provenance(),
        "results": results,
        "memory": memory,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if prefetch or warm-cache "
        "streaming is slower than eager, or peak memory grows with rows",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_streaming.json",
        help="output JSON path (default: <repo root>/BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)

    # Both presets time 20x the generator's default 4000 rows and probe
    # memory at 4000 vs 40 000 (the 10x acceptance bar) — a full epoch is
    # ~25 ms, so even the smoke run affords the real workload.  Generation
    # must dominate the per-shard thread handoff for prefetch to pay off
    # on few cores, which is why the row count stays high and the timing
    # chunk stays wide.
    rows, chunk, memory_rows, memory_chunk = 80_000, 8192, 4000, 1024
    repeats = 5 if args.smoke else 9
    report = run(rows, chunk, repeats, memory_rows, memory_chunk)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'mode':>12} {'seconds':>9} {'rows/sec':>10} {'vs eager':>9}")
    for row in report["results"]:
        print(
            f"{row['mode']:>12} {row['seconds']:>9.3f} "
            f"{row['rows_per_sec']:>10.0f} {row['speedup']:>8.2f}x"
        )
    memory = report["memory"]
    print(
        f"peak memory: streaming {memory['streaming_peak_base_bytes'] / 1e6:.1f} MB "
        f"@ {memory['rows_base']} rows -> "
        f"{memory['streaming_peak_10x_bytes'] / 1e6:.1f} MB @ {memory['rows_10x']} "
        f"({memory['peak_ratio']:.2f}x); eager @ {memory['rows_10x']} rows: "
        f"{memory['eager_peak_10x_bytes'] / 1e6:.1f} MB"
    )
    print(f"wrote {args.out}")

    if args.smoke:
        failures = []
        speedups = {row["mode"]: row["speedup"] for row in report["results"]}
        for mode in ("prefetch", "cache_warm"):
            if speedups[mode] < 1.0:
                failures.append(f"{mode} slower than eager ({speedups[mode]:.2f}x)")
        if memory["peak_ratio"] > MEMORY_GATE:
            failures.append(
                f"streaming peak grew {memory['peak_ratio']:.2f}x across a 10x "
                f"row-count step (gate: {MEMORY_GATE}x)"
            )
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
