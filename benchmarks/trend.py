"""Bench-trend harness: speedup history keyed by git SHA, with a gate.

Aggregates every ``BENCH_*.json`` report at the repository root into one
``BENCH_trend.json`` history file, prints a comparison table of the
current numbers against the committed baseline (the most recent history
entry from a *different* commit), and exits non-zero when any tracked
speedup regressed by more than ``--threshold`` (relative).

Tracked metrics (label → speedup):

- ``grad_collection/K{K}`` — multi-root vs per-task backward;
- ``balancers/{name}/K{K}`` — vectorized vs loop pairwise kernels
  (rows below the dispatch threshold, ``"vectorized_kernel": false``,
  compare identical code and are skipped);
- ``optim/{name}`` — flat vs loop optimizer step;
- ``optim/train_step`` — arena vs no-arena whole train step;
- ``parallel/K{K}/W{W}`` — W shared-memory workers vs sequential (only
  recorded when the host has at least W usable cores — see
  ``bench_parallel.py``);
- ``feature_space/d{d}`` — feature-space vs parameter-space balancing
  cost at shared-parameter count d (``bench_feature_space.py``);
- ``streaming/prefetch`` / ``streaming/warm_cache`` — double-buffered
  streaming and warm mmap-cache epochs vs the eager materialize-then-
  iterate baseline (``bench_streaming.py``);
- ``serve/batched`` / ``serve/no_grad`` — micro-batched request serving
  vs one-forward-per-request, and the no-autograd inference forward vs
  the graph-building forward (``bench_serve.py``).

Speedup ratios are self-normalizing (both sides of each ratio run on the
same machine in the same process), so history entries from different
hosts remain comparable — which is why the gate tracks speedups rather
than raw wall-clock seconds.

Usage::

    PYTHONPATH=src python benchmarks/trend.py           # compare + record
    PYTHONPATH=src python benchmarks/trend.py --check   # compare only
    PYTHONPATH=src python benchmarks/trend.py --threshold 0.2

The default mode appends the current numbers to the history *after* the
gate passes (re-runs at the same SHA replace that SHA's entry, so CI
retries don't grow the file); ``--check`` never writes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchlib import REPO_ROOT, git_sha

TREND_SCHEMA = 1
TREND_FILE = "BENCH_trend.json"
#: Relative regression the gate tolerates before failing (30%). Generous
#: on purpose: shared CI runners are noisy and the ratios, while
#: self-normalizing, still jitter; the gate exists to catch the 2x-grade
#: regressions a bad kernel change causes, not 5% drift.
DEFAULT_THRESHOLD = 0.30
#: History entries kept (oldest dropped first).
MAX_HISTORY = 200


def extract_metrics(report: dict) -> dict[str, float]:
    """Flatten one BENCH_*.json report into ``{label: speedup}``."""
    kind = report.get("benchmark")
    metrics: dict[str, float] = {}
    if kind == "grad_collection":
        for row in report.get("results", []):
            metrics[f"grad_collection/K{row['num_tasks']}"] = float(row["speedup"])
    elif kind == "balancers":
        for row in report.get("results", []):
            if not row.get("vectorized_kernel", True):
                continue  # loop-dispatch rows measure noise around 1.0
            metrics[f"balancers/{row['balancer']}/K{row['num_tasks']}"] = float(
                row["speedup"]
            )
    elif kind == "optim":
        for row in report.get("results", []):
            metrics[f"optim/{row['optimizer']}"] = float(row["speedup"])
        train = report.get("train_step")
        if train:
            metrics["optim/train_step"] = float(train["speedup"])
    elif kind == "parallel":
        # Parallel speedup is hardware-bound: a W-worker run cannot beat
        # sequential on fewer than W cores, so only configurations the
        # recording host could actually parallelize are tracked.
        cores = int(report.get("cpu_count", 0))
        for row in report.get("results", []):
            if cores >= int(row["workers"]):
                metrics[f"parallel/K{row['num_tasks']}/W{row['workers']}"] = float(
                    row["speedup"]
                )
    elif kind == "feature_space":
        for row in report.get("results", []):
            metrics[f"feature_space/d{row['dim_shared']}"] = float(
                row["balance_speedup"]
            )
    elif kind == "streaming":
        # cold-cache and sync-streaming rows are diagnostics, not gates:
        # only the two modes users run for speed are trend-tracked.
        tracked = {"prefetch": "streaming/prefetch", "cache_warm": "streaming/warm_cache"}
        for row in report.get("results", []):
            label = tracked.get(row["mode"])
            if label is not None:
                metrics[label] = float(row["speedup"])
    elif kind == "serve":
        # sequential and graph rows are the baselines (speedup 1.0 by
        # construction) — only the two fast paths are trend-tracked.
        tracked = {"batched": "serve/batched", "no_grad": "serve/no_grad"}
        for row in report.get("results", []):
            label = tracked.get(row["mode"])
            if label is not None:
                metrics[label] = float(row["speedup"])
    return metrics


def collect_current(root: Path) -> dict[str, float]:
    """Read every BENCH_*.json (except the trend file) under ``root``."""
    metrics: dict[str, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == TREND_FILE:
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path.name}: {exc}", file=sys.stderr)
            continue
        metrics.update(extract_metrics(report))
    return metrics


def load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if data.get("schema") != TREND_SCHEMA:
        print(
            f"warning: {path.name} has schema {data.get('schema')!r}, "
            f"expected {TREND_SCHEMA}; starting a fresh history",
            file=sys.stderr,
        )
        return []
    return list(data.get("history", []))


def save_history(path: Path, history: list[dict]) -> None:
    payload = {"schema": TREND_SCHEMA, "history": history[-MAX_HISTORY:]}
    path.write_text(json.dumps(payload, indent=2) + "\n")


def baseline_entry(history: list[dict], sha: str) -> dict | None:
    """Most recent history entry not from ``sha`` (falls back to any)."""
    for entry in reversed(history):
        if entry.get("sha") != sha:
            return entry
    return history[-1] if history else None


def compare(
    current: dict[str, float], baseline: dict[str, float], threshold: float
) -> tuple[list[list], list[str]]:
    """Build comparison rows and the list of regressed labels."""
    rows: list[list] = []
    regressions: list[str] = []
    for label in sorted(current):
        now = current[label]
        base = baseline.get(label)
        if base is None:
            rows.append([label, "-", f"{now:.2f}x", "new"])
            continue
        delta = (now - base) / base if base else 0.0
        status = "ok"
        if base > 0 and now < base * (1.0 - threshold):
            status = "REGRESSED"
            regressions.append(label)
        rows.append([label, f"{base:.2f}x", f"{now:.2f}x", f"{delta:+.1%} {status}"])
    for label in sorted(set(baseline) - set(current)):
        rows.append([label, f"{baseline[label]:.2f}x", "-", "missing"])
    return rows, regressions


def format_rows(rows: list[list]) -> str:
    headers = ["metric", "baseline", "current", "delta"]
    cells = [headers] + [[str(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative speedup drop that fails the gate (default: 0.30)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline only; never update the history",
    )
    args = parser.parse_args(argv)

    current = collect_current(args.root)
    if not current:
        print("no BENCH_*.json reports found — run the benchmarks first", file=sys.stderr)
        return 2

    trend_path = args.root / TREND_FILE
    history = load_history(trend_path)
    sha = git_sha()
    baseline = baseline_entry(history, sha)

    if baseline is None:
        print(f"no baseline in {TREND_FILE}; recording first entry at {sha}")
        rows = [[label, "-", f"{value:.2f}x", "new"] for label, value in sorted(current.items())]
        print(format_rows(rows))
        regressions: list[str] = []
    else:
        print(
            f"baseline: {baseline.get('sha', '?')}  current: {sha}  "
            f"gate: -{args.threshold:.0%}"
        )
        rows, regressions = compare(current, baseline.get("metrics", {}), args.threshold)
        print(format_rows(rows))

    if regressions:
        print(
            f"FAIL: {len(regressions)} metric(s) regressed by more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1

    if not args.check:
        history = [entry for entry in history if entry.get("sha") != sha]
        history.append({"sha": sha, "ts": time.time(), "metrics": current})
        save_history(trend_path, history)
        print(f"recorded entry for {sha} in {trend_path.name} ({len(history)} total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
