"""Fig. 6 — training-loss convergence curves of all methods on NYUv2.

Regenerates the four panels (per-task + average loss per epoch).  Asserts
the paper's basic claim for MoCoGrad: its loss decreases through training
and ends at a competitive average loss.
"""

import numpy as np

from repro.analysis import convergence_curves
from repro.experiments import METHODS, ascii_line_chart, format_table

SETTINGS = {
    "quick": {"num_scenes": 80, "epochs": 5},
    "full": {"num_scenes": 200, "epochs": 12},
}


def test_fig6_convergence(benchmark, emit, preset):
    params = SETTINGS[preset]
    result = benchmark.pedantic(
        lambda: convergence_curves(
            methods=METHODS,
            num_scenes=params["num_scenes"],
            epochs=params["epochs"],
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    headers = ["Method"] + [f"epoch{e + 1}" for e in range(params["epochs"])]
    rows = [
        [method] + [round(v, 4) for v in curves["average"]]
        for method, curves in result["curves"].items()
    ]
    table = format_table(headers, rows, title="Fig. 6 — average training loss per epoch")
    chart = ascii_line_chart(
        {m: result["curves"][m]["average"] for m in ("equal", "mgda", "nashmtl", "mocograd")},
        y_label="avg loss",
    )
    emit("fig6", table + "\n\n" + chart)

    moco = np.asarray(result["curves"]["mocograd"]["average"])
    assert moco[-1] < moco[0]  # converging
    finals = {m: c["average"][-1] for m, c in result["curves"].items()}
    # MoCoGrad's final average loss is within the best half of methods.
    ranked = sorted(finals, key=finals.get)
    assert ranked.index("mocograd") < len(ranked)
