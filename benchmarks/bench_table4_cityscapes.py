"""Table IV — CityScapes 2-task scene understanding (seg + depth + ΔM)."""

from repro.experiments import table4_cityscapes as experiment


def test_table4_cityscapes(benchmark, emit, preset):
    result = benchmark.pedantic(
        lambda: experiment.run(preset=preset), rounds=1, iterations=1
    )
    emit("table4", experiment.format_result(result))
    # Paper shape: joint training helps on this strongly-related task pair —
    # the best balancing method lands a positive ΔM over STL.
    deltas = {m: d for m, d in result["delta_m"].items() if m != "stl"}
    assert max(deltas.values()) > 0.0
