"""Serving benchmark: micro-batched throughput and the no-autograd forward.

Times the two claims ``repro.serve`` makes, and writes
``BENCH_serve.json`` at the repository root:

- ``batched`` — N single-row requests answered through the
  :class:`~repro.serve.Server` micro-batcher (requests coalesce into
  batched forwards) vs the ``sequential`` reference oracle that forwards
  each request alone — the same model, the same
  :func:`~repro.nn.inference_mode` fast path, no batching.  On a BLAS
  backend one 64-row matmul beats 64 one-row matmuls by a wide margin,
  so this speedup is the whole point of the batcher;
- ``no_grad`` — forward-only inference under ``inference_mode`` vs the
  ``graph`` training forward that records the autograd graph (parents,
  grad fns, ctx) it would need for backward.  Serving never calls
  backward, so the bookkeeping is pure overhead.

Both ratios are self-normalizing (each pair runs on the same host in the
same process), which is what ``benchmarks/trend.py`` tracks as
``serve/batched`` and ``serve/no_grad``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if either speedup
drops below 1.0 — batched serving slower than one-by-one, or the fast
path slower than the graph-building forward, would each mean the
serving layer is a pessimization.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from benchlib import provenance

from repro.arch.factory import build_mlp_model
from repro.nn.tensor import Tensor, inference_mode
from repro.serve import Server

IN_FEATURES = 32
HIDDEN = [64, 64, 64]
TASKS = ["ctr", "ctcvr", "pay"]
SEED = 0
MAX_BATCH = 64
MAX_WAIT_MS = 1.0


def _model():
    return build_mlp_model("hps", IN_FEATURES, HIDDEN, TASKS, seed=SEED)


# ----------------------------------------------------------------------
# batched vs sequential request serving
# ----------------------------------------------------------------------
def time_sequential(model, requests) -> float:
    """The oracle: answer every request with its own single-row forward."""
    start = time.perf_counter()
    with inference_mode():
        for rows in requests:
            for out in model.forward_all(rows).values():
                out.data  # touch the outputs like a real consumer would
    return time.perf_counter() - start


def time_batched(model, requests) -> float:
    """Answer the same requests through the micro-batching server."""
    config = {"max_batch_size": MAX_BATCH, "max_wait_ms": MAX_WAIT_MS}
    with Server(model, config) as server:
        start = time.perf_counter()
        futures = [server.submit(rows) for rows in requests]
        for future in futures:
            future.result()
        return time.perf_counter() - start


# ----------------------------------------------------------------------
# inference_mode vs graph-building forward
# ----------------------------------------------------------------------
def time_graph_forward(model, x, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        model.forward_all(Tensor(x, requires_grad=True))
    return time.perf_counter() - start


def time_inference_forward(model, x, iterations: int) -> float:
    start = time.perf_counter()
    with inference_mode():
        for _ in range(iterations):
            model.forward_all(x)
    return time.perf_counter() - start


def run(num_requests: int, forward_iterations: int, repeats: int) -> dict:
    import numpy as np

    model = _model()
    model.eval()
    rng = np.random.default_rng(SEED)
    requests = [rng.standard_normal((1, IN_FEATURES)) for _ in range(num_requests)]
    x = rng.standard_normal((256, IN_FEATURES))

    # Warm-up both paths (BLAS thread pools, allocator), then best-of-
    # ``repeats`` with the modes interleaved so host noise skews all of
    # them equally.
    time_sequential(model, requests[:8])
    time_batched(model, requests[:8])
    time_graph_forward(model, x, 2)
    time_inference_forward(model, x, 2)

    timings: dict[str, float] = {}
    for _ in range(repeats):
        for mode, fn in (
            ("sequential", lambda: time_sequential(model, requests)),
            ("batched", lambda: time_batched(model, requests)),
            ("graph", lambda: time_graph_forward(model, x, forward_iterations)),
            ("no_grad", lambda: time_inference_forward(model, x, forward_iterations)),
        ):
            seconds = fn()
            timings[mode] = min(timings.get(mode, seconds), seconds)

    results = []
    for mode, baseline in (
        ("sequential", "sequential"),
        ("batched", "sequential"),
        ("graph", "graph"),
        ("no_grad", "graph"),
    ):
        row = {
            "mode": mode,
            "seconds": timings[mode],
            "speedup": timings[baseline] / timings[mode],
        }
        if mode in ("sequential", "batched"):
            row["requests_per_sec"] = num_requests / timings[mode]
        else:
            row["rows_per_sec"] = 256 * forward_iterations / timings[mode]
        results.append(row)

    return {
        "benchmark": "serve",
        "workload": {
            "architecture": "hps",
            "in_features": IN_FEATURES,
            "hidden": HIDDEN,
            "tasks": len(TASKS),
            "requests": num_requests,
            "rows_per_request": 1,
            "max_batch_size": MAX_BATCH,
            "max_wait_ms": MAX_WAIT_MS,
            "forward_batch": 256,
            "forward_iterations": forward_iterations,
            "repeats": repeats,
        },
        **provenance(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if batched serving is slower "
        "than sequential or inference_mode is slower than the graph forward",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
        help="output JSON path (default: <repo root>/BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    num_requests = 512 if args.smoke else 2048
    forward_iterations = 30 if args.smoke else 100
    repeats = 3 if args.smoke else 5
    report = run(num_requests, forward_iterations, repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'mode':>12} {'seconds':>9} {'throughput':>12} {'speedup':>9}")
    for row in report["results"]:
        throughput = row.get("requests_per_sec", row.get("rows_per_sec"))
        print(
            f"{row['mode']:>12} {row['seconds']:>9.3f} "
            f"{throughput:>12.0f} {row['speedup']:>8.2f}x"
        )
    print(f"wrote {args.out}")

    if args.smoke:
        speedups = {row["mode"]: row["speedup"] for row in report["results"]}
        failures = [
            f"{mode}: {speedups[mode]:.2f}x < 1.0x"
            for mode in ("batched", "no_grad")
            if speedups[mode] < 1.0
        ]
        if failures:
            print("SMOKE GATE FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
