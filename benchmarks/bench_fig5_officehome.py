"""Fig. 5 — per-domain accuracy on Office-Home (11 methods + STL)."""

from repro.experiments import fig5_officehome as experiment


def test_fig5_officehome(benchmark, emit, preset):
    result = benchmark.pedantic(
        lambda: experiment.run(preset=preset), rounds=1, iterations=1
    )
    emit("fig5", experiment.format_result(result))
    num_classes = experiment.PRESETS[preset]["num_classes"]
    chance = 1.0 / num_classes
    for method, avg in result["avg_accuracy"].items():
        assert avg > chance, (method, avg)
