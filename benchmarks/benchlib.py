"""Shared helpers for the perf benchmark scripts.

Every ``BENCH_*.json`` report carries the same provenance block so
``benchmarks/trend.py`` can key speedup history by commit:

- ``schema`` — report schema version (bumped when the result layout
  changes incompatibly);
- ``git_sha`` — the commit the numbers were measured at (``"unknown"``
  outside a git checkout);
- ``platform`` / ``python`` / ``numpy`` — the environment fingerprint.
"""

from __future__ import annotations

import platform
import subprocess
from pathlib import Path

import numpy as np

#: Version of the BENCH_*.json report layout (shared by all benchmarks).
BENCH_SCHEMA = 2

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_sha(short: bool = True) -> str:
    """Current commit SHA, or ``"unknown"`` when git is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short" if short else "HEAD", "HEAD"]
            if short
            else ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance() -> dict:
    """The provenance block every benchmark report embeds."""
    return {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
