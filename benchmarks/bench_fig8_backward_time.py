"""Fig. 8 — backward time per optimization step, by method.

Regenerates the per-method timing bars on the AliExpress stack.  Paper
shape asserted: Nash-MTL is the slowest (inner equilibrium solve each
step); MoCoGrad is comparable to the projection-style methods (PCGrad,
GradVac) — i.e. cheap enough for practice.
"""

from repro.analysis import backward_time_study
from repro.experiments import METHODS, format_table

SETTINGS = {
    "quick": {"num_records": 1200, "steps": 20},
    "full": {"num_records": 4000, "steps": 60},
}


def test_fig8_backward_time(benchmark, emit, preset):
    params = SETTINGS[preset]
    result = benchmark.pedantic(
        lambda: backward_time_study(
            methods=METHODS,
            num_records=params["num_records"],
            steps=params["steps"],
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    times = result["seconds_per_step"]
    rows = [[m, t * 1000.0] for m, t in sorted(times.items(), key=lambda kv: kv[1])]
    emit(
        "fig8",
        format_table(
            ["Method", "ms / step"],
            rows,
            title="Fig. 8 — backward time per step on AliExpress-sim",
            float_digits=3,
        ),
    )
    projection_like = max(times["pcgrad"], times["gradvac"], times["mocograd"])
    assert times["nashmtl"] > times["equal"]
    # MoCoGrad stays in the cheap family: within 3× of PCGrad/GradVac
    # (median-of-steps timing; margin absorbs scheduler noise).
    assert times["mocograd"] <= 3.0 * max(times["pcgrad"], times["gradvac"])
    assert projection_like < times["nashmtl"] * 5  # sanity on scale
