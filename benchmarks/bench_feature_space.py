"""Feature-space balancing microbenchmark: O(K·d) → O(K·d_feat).

Measures the ``step/balance`` telemetry span (the balancer's own work —
no forward, backward, or optimizer time) of ``MTLTrainer`` under both
gradient spaces on a single-input hard-parameter-sharing problem whose
shared-parameter count ``d`` grows with the trunk width while the
representation stays fixed at ``batch × feat``, and writes
``BENCH_feature_space.json`` at the repository root.

This is the paper's §VI-C argument made concrete: MoCoGrad's momentum
update, calibration, and Gram work all scale with the matrix width, so
balancing ``(K, d_feat)`` feature gradients decouples that cost from
model size.  At the widest trunk ``d ≈ 190 × d_feat`` and the balance
span must be faster in feature space; whole-step time also improves
because K trunk backprops collapse into one.

Usage::

    PYTHONPATH=src python benchmarks/bench_feature_space.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if feature-space
balancing is not faster (balance_speedup < 1.0) at the largest trunk.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np
from benchlib import provenance

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.core.balancer import create_balancer
from repro.data import TaskSpec
from repro.nn.functional import mse_loss
from repro.obs import Telemetry
from repro.training import MTLTrainer

NUM_TASKS = 6
BATCH = 64
IN_DIM = 64
FEAT = 32
HIDDEN_WIDTHS = (64, 1024, 4096)


def build_trainer(hidden: int, grad_space: str) -> MTLTrainer:
    names = [f"t{k}" for k in range(NUM_TASKS)]
    tasks = [TaskSpec(name, mse_loss, {}, {}) for name in names]
    model = HardParameterSharing(
        MLPEncoder(IN_DIM, [hidden, FEAT], np.random.default_rng(1)),
        {name: LinearHead(FEAT, 1, np.random.default_rng(2)) for name in names},
    )
    return MTLTrainer(
        model,
        tasks,
        create_balancer("mocograd", seed=0),
        grad_space=grad_space,
        seed=0,
        telemetry=Telemetry(),
    )


def median_span_seconds(hidden: int, grad_space: str, steps: int, warmup: int) -> dict:
    """Median ``step`` and ``step/balance`` span durations over ``steps``."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(BATCH, IN_DIM))
    targets = {f"t{k}": rng.normal(size=BATCH) for k in range(NUM_TASKS)}
    trainer = build_trainer(hidden, grad_space)
    for _ in range(warmup + steps):
        trainer.train_step_single(x, targets)
    telemetry = trainer.telemetry
    return {
        "step": float(np.median(telemetry.durations("step")[warmup:])),
        "balance": float(np.median(telemetry.durations("step/balance")[warmup:])),
        "dim": sum(p.size for p in trainer.model.shared_parameters()),
    }


def run(steps: int, warmup: int) -> dict:
    results = []
    for hidden in HIDDEN_WIDTHS:
        params = median_span_seconds(hidden, "parameters", steps, warmup)
        features = median_span_seconds(hidden, "features", steps, warmup)
        results.append(
            {
                "hidden": hidden,
                "dim_shared": params["dim"],
                "dim_feature": BATCH * FEAT,
                "param_balance_seconds": params["balance"],
                "feature_balance_seconds": features["balance"],
                "param_step_seconds": params["step"],
                "feature_step_seconds": features["step"],
                "balance_speedup": params["balance"] / features["balance"],
                "step_speedup": params["step"] / features["step"],
            }
        )
    return {
        "benchmark": "feature_space",
        "workload": {
            "num_tasks": NUM_TASKS,
            "batch": BATCH,
            "in_dim": IN_DIM,
            "feat": FEAT,
            "hidden_widths": list(HIDDEN_WIDTHS),
            "balancer": "mocograd",
            "steps": steps,
            "warmup": warmup,
        },
        **provenance(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if feature-space balancing is "
        "slower than parameter-space at the largest trunk",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_feature_space.json",
        help="output JSON path (default: <repo root>/BENCH_feature_space.json)",
    )
    args = parser.parse_args(argv)

    steps, warmup = (10, 3) if args.smoke else (30, 8)
    report = run(steps, warmup)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"{'d':>8} {'d_feat':>7} {'param bal (ms)':>15} {'feat bal (ms)':>14} "
        f"{'bal speedup':>12} {'step speedup':>13}"
    )
    for row in report["results"]:
        print(
            f"{row['dim_shared']:>8} {row['dim_feature']:>7} "
            f"{row['param_balance_seconds'] * 1e3:>15.3f} "
            f"{row['feature_balance_seconds'] * 1e3:>14.3f} "
            f"{row['balance_speedup']:>11.2f}x {row['step_speedup']:>12.2f}x"
        )
    print(f"wrote {args.out}")

    if args.smoke:
        largest = report["results"][-1]
        if largest["balance_speedup"] < 1.0:
            print(
                "FAIL: feature-space balancing slower than parameter-space "
                f"at d = {largest['dim_shared']} "
                f"({largest['balance_speedup']:.2f}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
