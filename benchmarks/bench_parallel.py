"""Data-parallel training benchmark: shared-memory workers vs sequential.

Times whole ``MTLTrainer`` steps (dispatch → shard compute → reduce →
balance → fused optimizer step) for worker counts {1, 2, 4} against the
single-process sequential baseline, at K ∈ {4, 8} tasks over a trunk with
d ≥ 1e5 shared parameters, and writes ``BENCH_parallel.json`` at the
repository root.

Parallel speedup is hardware-bound: a W-worker run cannot beat sequential
on fewer than W cores, so the report records ``cpu_count`` (the CPUs this
process may actually use) and both the smoke gate here and
``benchmarks/trend.py`` only hold a configuration to its bar when the host
has at least as many cores as workers.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI (K=4, workers {1, 2}) and exits
non-zero if the 2-worker run is slower than sequential on a ≥ 2-core host.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from functools import partial
from pathlib import Path

import numpy as np
from benchlib import provenance

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.core.balancer import create_balancer
from repro.data import ArrayDataset, TaskSpec
from repro.nn.functional import mse_loss
from repro.obs import Telemetry
from repro.training import MTLTrainer

IN_FEATURES = 64
HIDDEN = [320, 256]  # shared trunk d ≈ 1.03e5
BATCH = 256
NUM_SAMPLES = 4096


def cpu_count() -> int:
    """CPUs this process may schedule onto (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def make_model(num_tasks: int):
    rng = np.random.default_rng(1)
    return HardParameterSharing(
        MLPEncoder(IN_FEATURES, HIDDEN, rng),
        {f"task{k}": LinearHead(HIDDEN[-1], 1, rng) for k in range(num_tasks)},
    )


def make_dataset(num_tasks: int) -> ArrayDataset:
    rng = np.random.default_rng(2)
    inputs = rng.normal(size=(NUM_SAMPLES, IN_FEATURES))
    targets = {f"task{k}": rng.normal(size=NUM_SAMPLES) for k in range(num_tasks)}
    return ArrayDataset(inputs, targets)


def make_tasks(num_tasks: int) -> list[TaskSpec]:
    return [TaskSpec(f"task{k}", mse_loss, {}, {}) for k in range(num_tasks)]


def median_step_seconds(num_tasks: int, workers: int, steps: int, warmup: int) -> float:
    """Median whole-step seconds; ``workers=0`` is the sequential baseline.

    The warmup steps absorb worker start-up (process fork, shm attach,
    replica build) so the medians compare steady-state throughput.
    """
    factory = partial(make_model, num_tasks)
    telemetry = Telemetry()
    kwargs = {}
    if workers:
        kwargs.update(parallel=workers, model_factory=factory)
    trainer = MTLTrainer(
        factory(),
        make_tasks(num_tasks),
        create_balancer("mocograd", seed=0),
        seed=0,
        optimizer="sgd",
        telemetry=telemetry,
        **kwargs,
    )
    try:
        trainer.fit(
            make_dataset(num_tasks),
            epochs=1,
            batch_size=BATCH,
            max_steps_per_epoch=warmup + steps,
        )
    finally:
        trainer.close()
    return float(np.median(telemetry.durations("step")[warmup:]))


def run(worker_counts: list[int], task_counts: list[int], steps: int, warmup: int) -> dict:
    results = []
    for num_tasks in task_counts:
        sequential = median_step_seconds(num_tasks, 0, steps, warmup)
        for workers in worker_counts:
            seconds = median_step_seconds(num_tasks, workers, steps, warmup)
            results.append(
                {
                    "num_tasks": num_tasks,
                    "workers": workers,
                    "seconds_per_step": seconds,
                    "sequential_seconds_per_step": sequential,
                    "throughput_samples_per_second": BATCH / seconds,
                    "speedup": sequential / seconds,
                }
            )
    return {
        "benchmark": "parallel",
        "cpu_count": cpu_count(),
        "workload": {
            "in_features": IN_FEATURES,
            "hidden": HIDDEN,
            "dim_shared": IN_FEATURES * HIDDEN[0]
            + HIDDEN[0]
            + HIDDEN[0] * HIDDEN[1]
            + HIDDEN[1],
            "batch": BATCH,
            "num_samples": NUM_SAMPLES,
            "steps": steps,
            "warmup": warmup,
            "balancer": "mocograd",
        },
        **provenance(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if 2 workers are slower than "
        "sequential on a host with ≥ 2 cores",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
        help="output JSON path (default: <repo root>/BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        worker_counts, task_counts, steps, warmup = [1, 2], [4], 5, 2
    else:
        worker_counts, task_counts, steps, warmup = [1, 2, 4], [4, 8], 10, 3

    started = time.perf_counter()
    report = run(worker_counts, task_counts, steps, warmup)
    report["wall_seconds"] = time.perf_counter() - started
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    cores = report["cpu_count"]
    print(f"cpu_count={cores}  (speedup bars apply only when cores ≥ workers)")
    print(f"{'K':>3} {'workers':>7} {'ms/step':>9} {'samples/s':>10} {'speedup':>8}")
    for row in report["results"]:
        print(
            f"{row['num_tasks']:>3} {row['workers']:>7} "
            f"{row['seconds_per_step'] * 1e3:>9.2f} "
            f"{row['throughput_samples_per_second']:>10.0f} "
            f"{row['speedup']:>8.2f}"
        )
    print(f"wrote {args.out}")

    if args.smoke:
        gated = [
            row
            for row in report["results"]
            if row["workers"] == 2 and cores >= 2 and row["speedup"] < 1.0
        ]
        for row in gated:
            print(
                f"FAIL: K={row['num_tasks']} workers=2 speedup "
                f"{row['speedup']:.2f} < 1.0 on a {cores}-core host"
            )
        if gated:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
