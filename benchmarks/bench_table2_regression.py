"""Table II — QM9 avg MAE (multi-input GCN) and MovieLens avg RMSE (BST).

Regenerates the paper's Table II: per-method across-task average error plus
ΔM against the single-task baseline for both regression suites.
"""

from repro.experiments import table2_regression as experiment


def test_table2_regression(benchmark, emit, preset):
    result = benchmark.pedantic(
        lambda: experiment.run(preset=preset), rounds=1, iterations=1
    )
    emit("table2", experiment.format_result(result))
    # Paper shape on QM9: with little data per property, sharing helps —
    # the best MTL method clearly beats STL (ΔM > 0).
    mtl_deltas = [
        values["delta_m"] for method, values in result["qm9"].items() if method != "stl"
    ]
    assert max(mtl_deltas) > 0.0
    for dataset in ("qm9", "movielens"):
        for method, values in result[dataset].items():
            assert values["avg"] > 0.0, (dataset, method)
