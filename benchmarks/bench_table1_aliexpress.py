"""Table I — AliExpress AUC (2 × 4 tasks, 11 methods + STL + ΔM).

Regenerates the paper's Table I rows on the synthetic AliExpress scenarios.
Run with ``-s`` to see the table inline; it is also written to
``benchmarks/results/table1.txt``.
"""

from repro.experiments import table1_aliexpress as experiment


def test_table1_aliexpress(benchmark, emit, preset):
    result = benchmark.pedantic(
        lambda: experiment.run(preset=preset), rounds=1, iterations=1
    )
    emit("table1", experiment.format_result(result))
    # Sanity on the regenerated rows: AUCs are meaningful (> chance) for
    # every method — the table is measuring trained models, not noise.
    for method, aucs in result["auc"].items():
        assert all(0.5 < value <= 1.0 for value in aucs.values()), method
