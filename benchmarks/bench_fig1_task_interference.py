"""Fig. 1 — task A's RMSE vs the number of jointly trained tasks.

Regenerates both panels: (a) HPS architecture, (b) MMoE architecture.
The paper's qualitative finding — performance of task A fluctuates and
degrades as unrelated tasks join — is asserted on the HPS panel.
"""

import numpy as np

from repro.analysis import task_interference_curve
from repro.experiments import format_table

SETTINGS = {
    "quick": {"records_per_genre": 250, "epochs": 5},
    "full": {"records_per_genre": 500, "epochs": 10},
}


def _run(preset):
    params = SETTINGS[preset]
    curves = {}
    for architecture in ("hps", "mmoe"):
        curves[architecture] = task_interference_curve(
            architecture=architecture,
            records_per_genre=params["records_per_genre"],
            relatedness=0.05,
            epochs=params["epochs"],
            seed=0,
        )
    return curves


def test_fig1_task_interference(benchmark, emit, preset):
    curves = benchmark.pedantic(lambda: _run(preset), rounds=1, iterations=1)
    rows = []
    for arch, curve in curves.items():
        for task_set, rmse in zip(curve["task_sets"], curve["rmse"]):
            rows.append([arch, task_set, rmse])
    emit(
        "fig1",
        format_table(
            ["Arch", "Task set", "Task-A RMSE"],
            rows,
            title="Fig. 1 — task interference on MovieLens-sim",
        ),
    )
    hps = curves["hps"]["rmse"]
    # Paper shape: joint training with conflicting genres degrades task A.
    assert max(hps[1:]) > hps[0]
