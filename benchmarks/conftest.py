"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
experiment index), prints the rows, and writes them to
``benchmarks/results/<id>.txt``.

Preset selection: set ``REPRO_BENCH_PRESET=full`` for the larger
configurations (minutes per table); the default ``quick`` preset keeps the
whole harness in the ten-minute range while preserving the qualitative
shape of every result.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "quick")


@pytest.fixture(scope="session")
def emit(results_dir):
    """Fixture returning a writer that prints a result and persists it."""

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
