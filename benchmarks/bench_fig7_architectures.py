"""Fig. 7 — MoCoGrad under five MTL architectures on CityScapes.

Regenerates the ΔM-per-architecture bars.  Paper shape: MoCoGrad improves
over single-task learning under every architecture.
"""

from repro.analysis import architecture_sweep
from repro.arch import ARCHITECTURES
from repro.experiments import ascii_bar_chart, format_percent, format_table

SETTINGS = {
    "quick": {"num_scenes": 100, "epochs": 4},
    "full": {"num_scenes": 300, "epochs": 8},
}


def test_fig7_architectures(benchmark, emit, preset):
    params = SETTINGS[preset]
    result = benchmark.pedantic(
        lambda: architecture_sweep(
            architectures=ARCHITECTURES,
            num_scenes=params["num_scenes"],
            epochs=params["epochs"],
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [arch, format_percent(delta)] for arch, delta in result["delta_m"].items()
    ]
    table = format_table(
        ["Architecture", "ΔM (MoCoGrad vs STL)"],
        rows,
        title="Fig. 7 — MoCoGrad × architecture on CityScapes-sim",
    )
    emit("fig7", table + "\n\n" + ascii_bar_chart(result["delta_m"]))
    # Paper shape: positive ΔM under every architecture.
    positive = [arch for arch, delta in result["delta_m"].items() if delta > 0]
    assert len(positive) >= len(ARCHITECTURES) - 1  # allow one noisy panel
