"""Ablation — conflict-stress test: MoCoGrad vs baselines under heavy conflict.

The paper attributes MoCoGrad's gains to noisy-gradient robustness under
task conflict.  This bench constructs the regime directly: a MovieLens
instance with near-zero inter-genre relatedness (strong conflicts) and
small batches (noisy gradients), seed-averaged.  Expected shape: MoCoGrad's
across-task RMSE beats plain joint training and the current-gradient-only
surgery methods (PCGrad, CAGrad) — the paper's core claim in its cleanest
setting.
"""

import numpy as np

from repro import MTLTrainer, create_balancer
from repro.data import make_movielens
from repro.data.movielens import GENRES
from repro.experiments import format_table

SETTINGS = {
    "quick": {"records_per_genre": 300, "epochs": 6, "seeds": 3},
    "full": {"records_per_genre": 600, "epochs": 10, "seeds": 5},
}

# gradnorm is the repo's extension baseline (paper ref. [44]); included to
# position it against the compared methods under heavy conflict.
METHODS = ("equal", "pcgrad", "cagrad", "gradnorm", "mocograd")


def _run(preset):
    params = SETTINGS[preset]
    benchmark = make_movielens(
        genres=GENRES[:4],
        records_per_genre=params["records_per_genre"],
        relatedness=0.05,
        seed=0,
    )
    averages = {}
    for method in METHODS:
        values = []
        for seed in range(params["seeds"]):
            model = benchmark.build_model("hps", np.random.default_rng(seed))
            trainer = MTLTrainer(
                model,
                benchmark.tasks,
                create_balancer(method, seed=seed),
                mode=benchmark.mode,
                lr=3e-3,
                seed=seed,
            )
            trainer.fit(benchmark.train, params["epochs"], 24)
            metrics = trainer.evaluate(benchmark.test)
            values.append(np.mean([m["rmse"] for m in metrics.values()]))
        averages[method] = (float(np.mean(values)), float(np.std(values)))
    return averages


def test_ablation_conflict_stress(benchmark, emit, preset):
    averages = benchmark.pedantic(lambda: _run(preset), rounds=1, iterations=1)
    rows = [[m, avg, std] for m, (avg, std) in sorted(averages.items(), key=lambda kv: kv[1][0])]
    emit(
        "ablation_conflict_stress",
        format_table(
            ["Method", "Avg RMSE ↓", "std"],
            rows,
            title="Ablation — conflict-stress MovieLens (relatedness 0.05)",
        ),
    )
    assert averages["mocograd"][0] < averages["equal"][0]
    assert averages["mocograd"][0] < averages["pcgrad"][0]
