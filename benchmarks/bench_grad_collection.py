"""Gradient-collection microbenchmark: per-task vs multi-root backward.

Measures the backward phase (the ``step/backward`` telemetry span, i.e.
gradient collection only — no forward, balancing, or optimizer time) of
``MTLTrainer`` under both ``backward_mode`` settings on a single-input
hard-parameter-sharing problem at K ∈ {2, 4, 8} tasks, and writes
``BENCH_grad_collection.json`` at the repository root.

The workload is a deep narrow trunk (8 × 48-unit layers, batch 32): the
regime the paper's Fig. 8 identifies as the per-task bottleneck, where K
separate walks repeat graph traversal and numpy dispatch per task.  The
multi-root kernel amortizes both; at K = 8 it must hold ≥ 1.5×.

Usage::

    PYTHONPATH=src python benchmarks/bench_grad_collection.py [--smoke] [--out PATH]

``--smoke`` shrinks the run for CI and exits non-zero if multi-root is
slower than per-task (speedup < 1.0) at any K.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np
from benchlib import provenance

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.data import TaskSpec
from repro.nn.functional import mse_loss
from repro.obs import Telemetry
from repro.training import MTLTrainer

TASK_COUNTS = (2, 4, 8)
BATCH = 32
IN_DIM = 16
HIDDEN = [48] * 8


def median_backward_seconds(
    num_tasks: int, mode: str, steps: int, warmup: int
) -> float:
    """Median duration of the ``step/backward`` span over ``steps`` steps."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(BATCH, IN_DIM))
    names = [f"t{k}" for k in range(num_tasks)]
    targets = {name: rng.normal(size=BATCH) for name in names}
    tasks = [TaskSpec(name, mse_loss, {}, {}) for name in names]
    model = HardParameterSharing(
        MLPEncoder(IN_DIM, HIDDEN, np.random.default_rng(1)),
        {name: LinearHead(HIDDEN[-1], 1, np.random.default_rng(2)) for name in names},
    )
    telemetry = Telemetry()
    trainer = MTLTrainer(
        model,
        tasks,
        EqualWeighting(),
        seed=0,
        backward_mode=mode,
        telemetry=telemetry,
    )
    for _ in range(warmup + steps):
        trainer.train_step_single(x, targets)
    return float(np.median(telemetry.durations("step/backward")[warmup:]))


def run(steps: int, warmup: int) -> dict:
    results = []
    for num_tasks in TASK_COUNTS:
        per_task = median_backward_seconds(num_tasks, "per_task", steps, warmup)
        multi_root = median_backward_seconds(num_tasks, "multi_root", steps, warmup)
        results.append(
            {
                "num_tasks": num_tasks,
                "per_task_seconds": per_task,
                "multi_root_seconds": multi_root,
                "speedup": per_task / multi_root,
            }
        )
    return {
        "benchmark": "grad_collection",
        "workload": {
            "batch": BATCH,
            "in_dim": IN_DIM,
            "hidden": HIDDEN,
            "steps": steps,
            "warmup": warmup,
        },
        **provenance(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run; fail (exit 1) if multi-root is slower than per-task",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_grad_collection.json",
        help="output JSON path (default: <repo root>/BENCH_grad_collection.json)",
    )
    args = parser.parse_args(argv)

    steps, warmup = (15, 5) if args.smoke else (40, 8)
    report = run(steps, warmup)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'K':>3} {'per_task (ms)':>14} {'multi_root (ms)':>16} {'speedup':>8}")
    for row in report["results"]:
        print(
            f"{row['num_tasks']:>3} {row['per_task_seconds'] * 1e3:>14.3f} "
            f"{row['multi_root_seconds'] * 1e3:>16.3f} {row['speedup']:>7.2f}x"
        )
    print(f"wrote {args.out}")

    if args.smoke:
        slow = [r for r in report["results"] if r["speedup"] < 1.0]
        if slow:
            ks = ", ".join(str(r["num_tasks"]) for r in slow)
            print(f"FAIL: multi_root slower than per_task at K = {ks}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
