"""Fig. 2 — correlation between Task Conflict Intensity and Gradient
Conflict Degree across conflict levels.

The paper's central empirical claim: larger GCD ↔ larger TCI (gradient
conflict drives task conflict).  Reproduced on the instrumented
shared-output workload (see `repro.analysis.conflict_experiment` and
DESIGN.md for the substitution rationale), asserting a strong positive
Pearson correlation over the ground-truth task-angle sweep.
"""

from repro.analysis import tci_gcd_correlation
from repro.experiments import ascii_scatter, format_table

SETTINGS = {
    "quick": {"num_samples": 300, "epochs": 15, "seeds": 3},
    "full": {"num_samples": 600, "epochs": 25, "seeds": 5},
}


def test_fig2_tci_gcd_correlation(benchmark, emit, preset):
    params = SETTINGS[preset]
    result = benchmark.pedantic(
        lambda: tci_gcd_correlation(
            num_samples=params["num_samples"],
            epochs=params["epochs"],
            seeds=params["seeds"],
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [cosine, gcd, tci]
        for cosine, gcd, tci in zip(result["cosine"], result["gcd"], result["tci"])
    ]
    rows.append(["pearson_r", result["pearson_r"], ""])
    table = format_table(
        ["True task cosine", "mean GCD", "TCI"],
        rows,
        title="Fig. 2 — TCI vs GCD (instrumented conflict dial)",
    )
    scatter = ascii_scatter(result["gcd"], result["tci"], x_label="GCD", y_label="TCI")
    emit("fig2", table + "\n\n" + scatter)
    # Paper shape: strong positive correlation between gradient conflict
    # and task-performance degradation.
    assert result["pearson_r"] > 0.5
    # And monotone endpoints: max-conflict GCD exceeds min-conflict GCD.
    assert result["gcd"][-1] > result["gcd"][0]
    assert result["tci"][-1] > result["tci"][0]
