"""Shim for legacy editable installs (no ``wheel`` package in this env)."""

from setuptools import setup

setup()
