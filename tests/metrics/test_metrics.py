"""Tests for every evaluation metric, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    abs_error,
    accuracy,
    angular_distances,
    binary_accuracy,
    confusion_matrix,
    delta_m,
    delta_m_from_results,
    mae,
    mean_iou,
    normal_metrics,
    pixel_accuracy,
    rel_error,
    rmse,
    roc_auc,
)


def brute_force_auc(scores, labels):
    """O(n²) AUC for cross-checking the rank-based implementation."""
    pos = scores[labels > 0.5]
    neg = scores[labels <= 0.5]
    total = 0.0
    for p in pos:
        for n in neg:
            if p > n:
                total += 1.0
            elif p == n:
                total += 0.5
    return total / (len(pos) * len(neg))


class TestAUC:
    def test_perfect_ranking(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [0, 0, 1, 1]) == 0.0

    def test_random_is_half(self):
        assert roc_auc([0.5, 0.5, 0.5, 0.5], [0, 1, 0, 1]) == pytest.approx(0.5)

    def test_single_class_degenerate(self):
        assert roc_auc([0.1, 0.9], [1, 1]) == 0.5
        assert roc_auc([0.1, 0.9], [0, 0]) == 0.5

    def test_matches_brute_force(self, rng):
        for _ in range(10):
            scores = rng.normal(size=30)
            labels = (rng.random(30) > 0.6).astype(float)
            if labels.sum() in (0, 30):
                continue
            assert roc_auc(scores, labels) == pytest.approx(
                brute_force_auc(scores, labels)
            )

    def test_ties_handled(self):
        scores = np.array([0.5, 0.5, 0.5, 0.9])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == pytest.approx(
            brute_force_auc(scores, labels)
        )

    def test_monotone_transform_invariance(self, rng):
        scores = rng.normal(size=40)
        labels = (rng.random(40) > 0.5).astype(float)
        original = roc_auc(scores, labels)
        transformed = roc_auc(np.exp(scores), labels)
        assert original == pytest.approx(transformed)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc([0.1], [0, 1])

    @given(st.integers(5, 40), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_in_unit_interval(self, n, seed):
        local = np.random.default_rng(seed)
        scores = local.normal(size=n)
        labels = (local.random(n) > 0.5).astype(float)
        assert 0.0 <= roc_auc(scores, labels) <= 1.0


class TestAccuracy:
    def test_basic(self):
        assert accuracy([0, 1, 2], [0, 1, 1]) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([0], [0, 1])

    def test_binary_accuracy_threshold(self):
        assert binary_accuracy([0.4, 0.6], [0, 1]) == 1.0
        assert binary_accuracy([0.4, 0.6], [1, 0]) == 0.0


class TestRegressionMetrics:
    def test_mae_value(self):
        assert mae([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_rmse_value(self):
        assert rmse([3.0, 4.0], [0.0, 0.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self, rng):
        for _ in range(10):
            p, t = rng.normal(size=20), rng.normal(size=20)
            assert rmse(p, t) >= mae(p, t) - 1e-12

    def test_perfect_prediction_zero(self, rng):
        x = rng.normal(size=10)
        assert mae(x, x) == 0.0
        assert rmse(x, x) == 0.0

    def test_abs_error_is_mae(self, rng):
        p, t = rng.normal(size=15), rng.normal(size=15)
        assert abs_error(p, t) == mae(p, t)

    def test_rel_error_scale(self):
        assert rel_error([11.0], [10.0]) == pytest.approx(0.1)

    def test_rel_error_guards_zero_target(self):
        assert np.isfinite(rel_error([1.0], [0.0]))

    def test_shape_broadcast_flattening(self, rng):
        p = rng.normal(size=(2, 1, 4))
        t = rng.normal(size=(2, 4))
        assert mae(p, t) >= 0  # sizes match after flatten

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mae([], [])


class TestSegmentationMetrics:
    def test_confusion_matrix_counts(self):
        pred = np.array([0, 0, 1, 1])
        true = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(pred, true, 2)
        np.testing.assert_array_equal(matrix, [[1, 0], [1, 2]])

    def test_perfect_miou(self):
        labels = np.array([[0, 1], [2, 0]])
        assert mean_iou(labels, labels, 3) == 1.0

    def test_miou_half_overlap(self):
        pred = np.array([0, 0, 1, 1])
        true = np.array([0, 1, 0, 1])
        # class 0: inter 1, union 3; class 1: inter 1, union 3
        assert mean_iou(pred, true, 2) == pytest.approx(1 / 3)

    def test_miou_ignores_absent_classes(self):
        pred = np.array([0, 0])
        true = np.array([0, 0])
        assert mean_iou(pred, true, 5) == 1.0

    def test_miou_invalid_labels_skipped(self):
        pred = np.array([0, 1])
        true = np.array([0, -1])
        assert mean_iou(pred, true, 2) == 1.0

    def test_pixel_accuracy(self):
        assert pixel_accuracy([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)

    def test_pixel_accuracy_empty(self):
        with pytest.raises(ValueError):
            pixel_accuracy([], [])


class TestNormalMetrics:
    def test_identical_normals_zero_angle(self, rng):
        normals = rng.normal(size=(10, 3))
        angles = angular_distances(normals, normals)
        np.testing.assert_allclose(angles, np.zeros(10), atol=1e-5)

    def test_opposite_normals_180(self):
        n = np.array([[0.0, 0.0, 1.0]])
        assert angular_distances(n, -n)[0] == pytest.approx(180.0)

    def test_right_angle(self):
        a = np.array([[1.0, 0.0, 0.0]])
        b = np.array([[0.0, 1.0, 0.0]])
        assert angular_distances(a, b)[0] == pytest.approx(90.0)

    def test_scale_invariance(self, rng):
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            angular_distances(a, b), angular_distances(a * 10, b * 0.1), atol=1e-8
        )

    def test_image_layout(self, rng):
        a = rng.normal(size=(2, 3, 4, 4))
        angles = angular_distances(a, a)
        assert angles.shape == (2 * 4 * 4,)

    def test_metrics_dict(self, rng):
        a, b = rng.normal(size=(100, 3)), rng.normal(size=(100, 3))
        stats = normal_metrics(a, b)
        assert set(stats) == {"mean", "median", "within_11.25", "within_22.5", "within_30"}
        assert stats["within_11.25"] <= stats["within_22.5"] <= stats["within_30"]

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            angular_distances(np.zeros((3, 2)), np.zeros((3, 2)))


class TestDeltaM:
    def test_zero_for_identical(self):
        assert delta_m([1.0, 2.0], [1.0, 2.0], [True, False]) == 0.0

    def test_sign_convention_higher_better(self):
        # metric improved from 0.5 to 0.6 → +20%
        assert delta_m([0.6], [0.5], [True]) == pytest.approx(0.2)

    def test_sign_convention_lower_better(self):
        # error decreased from 1.0 to 0.8 → +20%
        assert delta_m([0.8], [1.0], [False]) == pytest.approx(0.2)

    def test_averages_across_metrics(self):
        value = delta_m([0.6, 0.8], [0.5, 1.0], [True, False])
        assert value == pytest.approx(0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            delta_m([1.0], [0.0], [True])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            delta_m([1.0], [1.0, 2.0], [True, True])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            delta_m([], [], [])

    def test_from_results_nested(self):
        mtl = {"t1": {"auc": 0.6}, "t2": {"rmse": 0.8}}
        stl = {"t1": {"auc": 0.5}, "t2": {"rmse": 1.0}}
        directions = {"t1": {"auc": True}, "t2": {"rmse": False}}
        assert delta_m_from_results(mtl, stl, directions) == pytest.approx(0.2)

    @given(
        st.lists(st.floats(0.1, 10, allow_nan=False), min_size=1, max_size=6),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_antisymmetry(self, baseline, seed):
        """Swapping MTL and STL flips the sign for higher-is-better metrics
        measured relative to the respective baselines."""
        local = np.random.default_rng(seed)
        baseline = np.asarray(baseline)
        improved = baseline * (1 + np.abs(local.normal(size=len(baseline))) * 0.1)
        up = delta_m(improved, baseline, [True] * len(baseline))
        down = delta_m(baseline, baseline, [True] * len(baseline))
        assert up >= down == 0.0
