"""Tests for the Module system and parameter-vector utilities."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    clip_grad_norm,
    grad_vector,
    parameter_vector,
    set_grad_from_vector,
    set_parameters_from_vector,
)


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(3, 4, rng)
        self.fc2 = Linear(4, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestModule:
    def test_named_parameters_deterministic(self, rng):
        model = Toy(rng)
        names = [name for name, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"]

    def test_num_parameters(self, rng):
        model = Toy(rng)
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_zero_grad(self, rng):
        model = Toy(rng)
        model(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        assert all(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        original = model.fc1.weight.data.copy()
        model.fc1.weight.data += 100.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.fc1.weight.data, original)

    def test_state_dict_is_copy(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_load_state_dict_rejects_mismatch(self, rng):
        model = Toy(rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})

    def test_load_state_dict_rejects_wrong_shape(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_module_list_traversal(self, rng):
        ml = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(ml) == 2
        assert len(ml.parameters()) == 4
        assert ml[0] is list(iter(ml))[0]

    def test_module_list_append(self, rng):
        ml = ModuleList()
        ml.append(Linear(2, 2, rng))
        assert len(ml.parameters()) == 2

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList()()

    def test_parameters_in_plain_lists_found(self, rng):
        class WithList(Module):
            def __init__(self):
                super().__init__()
                self.items = [Linear(2, 2, rng), Linear(2, 2, rng)]

        assert len(WithList().parameters()) == 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestParameterVectors:
    def test_grad_vector_concatenates(self, rng):
        params = [Parameter(np.zeros((2, 2))), Parameter(np.zeros(3))]
        params[0].grad = np.arange(4.0).reshape(2, 2)
        params[1].grad = np.array([4.0, 5.0, 6.0])
        np.testing.assert_allclose(grad_vector(params), np.arange(7.0))

    def test_grad_vector_none_is_zero(self):
        params = [Parameter(np.zeros(3))]
        np.testing.assert_allclose(grad_vector(params), np.zeros(3))

    def test_grad_vector_copies(self):
        param = Parameter(np.zeros(2))
        param.grad = np.ones(2)
        vec = grad_vector([param])
        vec[0] = 99.0
        assert param.grad[0] == 1.0

    def test_set_grad_roundtrip(self, rng):
        params = [Parameter(rng.normal(size=(2, 3))), Parameter(rng.normal(size=5))]
        vector = rng.normal(size=11)
        set_grad_from_vector(params, vector)
        np.testing.assert_allclose(grad_vector(params), vector)

    def test_set_grad_wrong_length_raises(self):
        with pytest.raises(ValueError):
            set_grad_from_vector([Parameter(np.zeros(3))], np.zeros(5))

    def test_parameter_vector_roundtrip(self, rng):
        params = [Parameter(rng.normal(size=(2, 2))), Parameter(rng.normal(size=3))]
        vector = parameter_vector(params)
        set_parameters_from_vector(params, vector * 2)
        np.testing.assert_allclose(parameter_vector(params), vector * 2)

    @pytest.mark.parametrize("bad_size", [5, 11])
    def test_set_parameters_wrong_length_no_partial_write(self, rng, bad_size):
        """Regression: a mismatched vector must not mutate ANY weight.

        The length check used to run only after every parameter had been
        written, so a short (or long) vector partially overwrote the model
        before raising.
        """
        params = [Parameter(rng.normal(size=(2, 2))), Parameter(rng.normal(size=3))]
        before = parameter_vector(params)
        with pytest.raises(ValueError, match="does not match"):
            set_parameters_from_vector(params, np.zeros(bad_size))
        np.testing.assert_array_equal(parameter_vector(params), before)

    def test_clip_grad_norm_scales(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 3.0)  # norm 6
        pre = clip_grad_norm([param], max_norm=3.0)
        assert pre == pytest.approx(6.0)
        assert np.linalg.norm(param.grad) == pytest.approx(3.0)

    def test_clip_grad_norm_no_clip_needed(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.3, 0.4])
        pre = clip_grad_norm([param], max_norm=10.0)
        assert pre == pytest.approx(0.5)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])

    def test_clip_grad_norm_empty(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0
