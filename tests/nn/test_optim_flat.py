"""Flat-vs-loop optimizer equivalence and step-mode dispatch tests."""

import numpy as np
import pytest

from repro.nn import Adam, AdaGrad, Parameter, ParameterArena, RMSProp, SGD

OPTIMIZERS = {
    "sgd": (SGD, dict(lr=0.05)),
    "sgd_momentum_wd": (SGD, dict(lr=0.05, momentum=0.9, weight_decay=0.01)),
    "adam": (Adam, dict(lr=0.01)),
    "adam_wd": (Adam, dict(lr=0.01, weight_decay=0.01)),
    "adagrad": (AdaGrad, dict(lr=0.1)),
    "rmsprop": (RMSProp, dict(lr=0.01)),
}

SHAPES = ((5, 3), (7,), (2, 4), (1,))


def make_arena(seed=1):
    rng = np.random.default_rng(seed)
    params = [Parameter(rng.normal(size=shape)) for shape in SHAPES]
    return ParameterArena(params)


class TestFlatLoopEquivalence:
    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_trajectories_bitwise_identical(self, name):
        """Same elementwise op sequence ⇒ bitwise-equal parameters."""
        cls, kwargs = OPTIMIZERS[name]
        arenas = {mode: make_arena() for mode in ("loop", "flat")}
        optimizers = {
            mode: cls(arena, step_mode=mode, **kwargs) for mode, arena in arenas.items()
        }
        grad_rng = np.random.default_rng(7)
        for _ in range(25):
            grad = grad_rng.normal(size=arenas["loop"].size)
            for arena in arenas.values():
                arena.grad[:] = grad
            for optimizer in optimizers.values():
                optimizer.step()
        np.testing.assert_array_equal(arenas["flat"].data, arenas["loop"].data)

    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_flat_matches_unpacked_loop(self, name):
        """The arena fast path reproduces the plain-parameter optimizer."""
        cls, kwargs = OPTIMIZERS[name]
        rng = np.random.default_rng(3)
        plain = [Parameter(rng.normal(size=shape)) for shape in SHAPES]
        rng = np.random.default_rng(3)
        packed = [Parameter(rng.normal(size=shape)) for shape in SHAPES]
        arena = ParameterArena(packed)
        opt_plain = cls(plain, **kwargs)
        opt_flat = cls(arena, **kwargs)
        assert opt_plain.step_mode == "loop"
        assert opt_flat.step_mode == "flat"
        grad_rng = np.random.default_rng(9)
        for _ in range(10):
            for p_plain, p_packed in zip(plain, packed):
                grad = grad_rng.normal(size=p_plain.data.shape)
                p_plain.grad = grad.copy()
                p_packed.grad[...] = grad
            opt_plain.step()
            opt_flat.step()
        for p_plain, p_packed in zip(plain, packed):
            np.testing.assert_array_equal(p_packed.data, p_plain.data)

    def test_flat_state_is_single_vector(self):
        arena = make_arena()
        opt = Adam(arena, lr=0.01)
        assert opt._m_flat.shape == (arena.size,)
        assert opt._v_flat.shape == (arena.size,)


class TestAdamBiasFold:
    def test_matches_textbook_bias_correction(self):
        """Folded scalar step size ≡ m_hat/v_hat form within 1e-12."""
        arena = make_arena(seed=5)
        opt = Adam(arena, lr=0.01, betas=(0.9, 0.999), eps=1e-8)
        reference = arena.data.copy()
        m = np.zeros(arena.size)
        v = np.zeros(arena.size)
        grad_rng = np.random.default_rng(11)
        for t in range(1, 30):
            grad = grad_rng.normal(size=arena.size)
            arena.grad[:] = grad
            opt.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad**2
            m_hat = m / (1.0 - 0.9**t)
            v_hat = v / (1.0 - 0.999**t)
            reference -= 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(arena.data, reference, rtol=1e-12, atol=0)


class TestStepModeDispatch:
    def test_auto_is_loop_without_arena(self):
        opt = SGD([Parameter(np.zeros(3))], lr=0.1)
        assert opt.step_mode == "loop"

    def test_auto_is_flat_with_arena(self):
        assert SGD(make_arena(), lr=0.1).step_mode == "flat"

    def test_auto_is_flat_for_packed_parameter_list(self):
        arena = make_arena()
        opt = SGD(arena.parameters, lr=0.1)
        assert opt.step_mode == "flat"

    def test_flat_on_arena_segment(self):
        """A contiguous sub-list of an arena gets its own flat window."""
        arena = make_arena()
        subset = arena.parameters[:2]
        opt = SGD(subset, lr=0.1, step_mode="flat")
        dim = sum(p.size for p in subset)
        assert opt._flat_data.shape == (dim,)
        arena.grad[:] = 1.0
        tail_before = arena.data[dim:].copy()
        opt.step()
        np.testing.assert_array_equal(arena.data[dim:], tail_before)
        np.testing.assert_allclose(arena.data[:dim] - (-0.1), make_arena().data[:dim])

    def test_flat_without_arena_rejected(self):
        with pytest.raises(ValueError, match="flat"):
            SGD([Parameter(np.zeros(3))], lr=0.1, step_mode="flat")

    def test_invalid_step_mode_rejected(self):
        with pytest.raises(ValueError, match="step_mode"):
            SGD(make_arena(), lr=0.1, step_mode="fused")

    def test_loop_mode_forced_on_arena(self):
        opt = SGD(make_arena(), lr=0.1, step_mode="loop")
        assert opt.step_mode == "loop"

    def test_zero_grad_single_fill_keeps_views(self):
        arena = make_arena()
        opt = SGD(arena, lr=0.1)
        arena.grad[:] = 2.0
        opt.zero_grad()
        assert not arena.grad.any()
        for param in arena.parameters:
            assert np.shares_memory(param.grad, arena.grad)


class TestFlatStepAllocations:
    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_no_d_length_allocations_after_warmup(self, name):
        """The fused step must not allocate gradient-sized temporaries."""
        import tracemalloc

        cls, kwargs = OPTIMIZERS[name]
        rng = np.random.default_rng(0)
        arena = ParameterArena([Parameter(rng.normal(size=(256, 64)))])
        opt = cls(arena, step_mode="flat", **kwargs)
        arena.grad[:] = rng.normal(size=arena.size)
        for _ in range(3):  # warm up scratch/state
            opt.step()
        d_bytes = arena.size * 8
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        for _ in range(5):
            opt.step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - baseline < d_bytes // 4, (
            f"flat step allocated {peak - baseline} bytes (d-length is {d_bytes})"
        )
