"""Tests for the contiguous parameter arena (packing, views, fast paths)."""

import numpy as np
import pytest

from repro.nn import Parameter, ParameterArena, packed_segment
from repro.nn.utils import (
    grad_vector,
    parameter_vector,
    set_grad_from_vector,
    set_parameters_from_vector,
)


def make_params(rng, shapes=((3, 2), (4,), (2, 2, 2))):
    return [Parameter(rng.normal(size=shape)) for shape in shapes]


class TestPacking:
    def test_values_preserved(self, rng):
        params = make_params(rng)
        before = [p.data.copy() for p in params]
        ParameterArena(params)
        for param, value in zip(params, before):
            np.testing.assert_array_equal(param.data, value)

    def test_existing_grads_preserved(self, rng):
        params = make_params(rng)
        params[1].grad = np.full(4, 2.5)
        arena = ParameterArena(params)
        np.testing.assert_array_equal(params[1].grad, np.full(4, 2.5))
        np.testing.assert_array_equal(arena.grad[6:10], np.full(4, 2.5))

    def test_data_and_grad_are_views(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        for param in params:
            assert np.shares_memory(param.data, arena.data)
            assert np.shares_memory(param.grad, arena.grad)
            assert param.grad is not None
            assert param.data.shape == param.grad.shape

    def test_offsets_and_size(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        assert arena.offsets == [0, 6, 10]
        assert arena.size == 18
        assert len(arena) == 3

    def test_writes_go_both_ways(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        params[0].data[...] = 7.0
        np.testing.assert_array_equal(arena.data[:6], np.full(6, 7.0))
        arena.data[6:10] = -1.0
        np.testing.assert_array_equal(params[1].data, np.full(4, -1.0))

    def test_duplicates_collapse(self, rng):
        param = Parameter(rng.normal(size=3))
        arena = ParameterArena([param, param])
        assert len(arena) == 1
        assert arena.size == 3

    def test_double_pack_rejected(self, rng):
        params = make_params(rng)
        ParameterArena(params)
        with pytest.raises(ValueError, match="already packed"):
            ParameterArena(params)

    def test_non_parameter_rejected(self, rng):
        with pytest.raises(TypeError):
            ParameterArena([np.zeros(3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ParameterArena([])

    def test_unpack_restores_standalone_arrays(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        params[0].data[...] = 5.0
        arena.unpack()
        for param in params:
            assert param._arena is None
            assert not np.shares_memory(param.data, arena.data)
        np.testing.assert_array_equal(params[0].data, np.full((3, 2), 5.0))
        # Unpacked parameters may be packed again.
        ParameterArena(params)


class TestZeroGrad:
    def test_arena_zero_grad_is_single_fill(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        arena.grad[:] = 3.0
        arena.zero_grad()
        assert not arena.grad.any()

    def test_packed_param_zero_grad_keeps_view(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        params[0].grad[...] = 1.0
        params[0].zero_grad()
        assert params[0].grad is not None
        assert np.shares_memory(params[0].grad, arena.grad)
        assert not params[0].grad.any()

    def test_unpacked_param_zero_grad_still_drops_array(self, rng):
        param = Parameter(rng.normal(size=3))
        param.grad = np.ones(3)
        param.zero_grad()
        assert param.grad is None


class TestSegments:
    def test_full_segment(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        assert arena.segment(params) == slice(0, 18)

    def test_prefix_segment(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        assert arena.segment(params[:2]) == slice(0, 10)
        assert arena.segment(params[1:]) == slice(6, 18)

    def test_non_contiguous_returns_none(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        assert arena.segment([params[0], params[2]]) is None
        assert arena.segment([params[1], params[0]]) is None

    def test_foreign_parameters_return_none(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        assert arena.segment([Parameter(np.zeros(2))]) is None
        assert packed_segment([Parameter(np.zeros(2))]) is None
        other = ParameterArena([Parameter(np.zeros(2))])
        assert arena.segment(other.parameters) is None

    def test_data_and_grad_segment_views(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        data_seg = arena.data_segment(params[:2])
        grad_seg = arena.grad_segment(params[:2])
        assert np.shares_memory(data_seg, arena.data)
        assert np.shares_memory(grad_seg, arena.grad)
        assert data_seg.shape == grad_seg.shape == (10,)


class TestVectorFastPaths:
    def test_grad_vector_returns_zero_copy_view(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        arena.grad[:] = np.arange(18.0)
        vec = grad_vector(params)
        assert np.shares_memory(vec, arena.grad)
        np.testing.assert_array_equal(vec, np.arange(18.0))

    def test_grad_vector_bulk_copies_into_out(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        arena.grad[:] = np.arange(18.0)
        out = np.empty(18)
        result = grad_vector(params, out=out)
        assert result is out
        assert not np.shares_memory(out, arena.grad)
        np.testing.assert_array_equal(out, np.arange(18.0))

    def test_grad_vector_out_shape_validated(self, rng):
        params = make_params(rng)
        ParameterArena(params)
        with pytest.raises(ValueError):
            grad_vector(params, out=np.empty(5))

    def test_set_grad_from_vector_bulk_write(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        set_grad_from_vector(params, np.arange(18.0))
        np.testing.assert_array_equal(arena.grad, np.arange(18.0))
        for param in params:
            assert np.shares_memory(param.grad, arena.grad)

    def test_set_grad_from_vector_noncontiguous_keeps_binding(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        # Reversed order defeats the segment fast path but must still write
        # through the arena views rather than rebinding .grad.
        set_grad_from_vector(list(reversed(params)), np.arange(18.0))
        for param in params:
            assert np.shares_memory(param.grad, arena.grad)
        np.testing.assert_array_equal(arena.grad[10:18], np.arange(8.0))

    def test_parameter_vector_is_copy(self, rng):
        params = make_params(rng)
        arena = ParameterArena(params)
        vec = parameter_vector(params)
        assert not np.shares_memory(vec, arena.data)
        np.testing.assert_array_equal(vec, arena.data)

    def test_set_parameters_from_vector_keeps_binding(self, rng):
        """Regression: arena views must survive a flat-vector restore."""
        params = make_params(rng)
        arena = ParameterArena(params)
        set_parameters_from_vector(params, np.arange(18.0))
        np.testing.assert_array_equal(arena.data, np.arange(18.0))
        for param in params:
            assert param._arena is arena
            assert np.shares_memory(param.data, arena.data)


class TestSerializationRoundTrip:
    def test_checkpoint_round_trip_survives_packing(self, rng, tmp_path):
        from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
        from repro.nn import load_checkpoint, save_checkpoint

        model = HardParameterSharing(
            MLPEncoder(4, [6], rng),
            {"a": LinearHead(6, 1, rng), "b": LinearHead(6, 1, rng)},
        )
        arena = ParameterArena(model.parameters())
        before = arena.data.copy()
        path = save_checkpoint(model, tmp_path / "model.npz", {"note": "packed"})
        arena.data[:] = 0.0
        metadata = load_checkpoint(model, path)
        assert metadata == {"note": "packed"}
        np.testing.assert_array_equal(arena.data, before)
        for param in model.parameters():
            assert np.shares_memory(param.data, arena.data)


class TestExternalBuffers:
    def test_pack_into_external_buffers_copies_values(self, rng):
        params = make_params(rng)
        before = [p.data.copy() for p in params]
        data, grad = np.zeros(18), np.zeros(18)
        arena = ParameterArena(params, data=data, grad=grad)
        assert arena.data is data and arena.grad is grad
        for param, value in zip(params, before):
            np.testing.assert_array_equal(param.data, value)
            assert np.shares_memory(param.data, data)
            assert np.shares_memory(param.grad, grad)

    def test_pack_into_external_buffers_copies_existing_grads(self, rng):
        params = make_params(rng)
        params[1].grad = np.full(4, 2.5)
        grad = np.full(18, -1.0)  # stale external contents must be replaced
        arena = ParameterArena(params, data=np.zeros(18), grad=grad)
        np.testing.assert_array_equal(arena.grad[6:10], np.full(4, 2.5))
        np.testing.assert_array_equal(arena.grad[:6], np.zeros(6))

    def test_load_adopts_external_contents(self, rng):
        params = make_params(rng)
        data = np.arange(18, dtype=np.float64)
        grad = np.arange(18, dtype=np.float64) * 10.0
        ParameterArena(params, data=data, grad=grad, load=True)
        np.testing.assert_array_equal(params[0].data, np.arange(6.0).reshape(3, 2))
        np.testing.assert_array_equal(params[1].grad, np.arange(6.0, 10.0) * 10.0)

    def test_external_writes_are_visible_both_ways(self, rng):
        params = make_params(rng)
        data = np.zeros(18)
        ParameterArena(params, data=data, grad=np.zeros(18))
        data[:6] = 7.0  # e.g. another process publishing through shm
        np.testing.assert_array_equal(params[0].data, np.full((3, 2), 7.0))
        params[1].data[...] = 3.0
        np.testing.assert_array_equal(data[6:10], np.full(4, 3.0))

    def test_requires_both_buffers_or_neither(self, rng):
        with pytest.raises(ValueError, match="both"):
            ParameterArena(make_params(rng), data=np.zeros(18))
        with pytest.raises(ValueError, match="both"):
            ParameterArena(make_params(rng), grad=np.zeros(18))

    def test_load_requires_external_buffers(self, rng):
        with pytest.raises(ValueError, match="load"):
            ParameterArena(make_params(rng), load=True)

    def test_rejects_wrong_length(self, rng):
        with pytest.raises(ValueError, match="length"):
            ParameterArena(make_params(rng), data=np.zeros(17), grad=np.zeros(17))

    def test_rejects_wrong_dtype(self, rng):
        bad = np.zeros(18, dtype=np.float32)
        with pytest.raises(ValueError, match="float64"):
            ParameterArena(make_params(rng), data=bad, grad=np.zeros(18))

    def test_rejects_noncontiguous_buffer(self, rng):
        bad = np.zeros(36)[::2]
        with pytest.raises(ValueError, match="contiguous"):
            ParameterArena(make_params(rng), data=bad, grad=np.zeros(18))

    def test_rejects_non_ndarray(self, rng):
        with pytest.raises(TypeError, match="ndarray"):
            ParameterArena(make_params(rng), data=[0.0] * 18, grad=np.zeros(18))
