"""Tests for the autograd engine: op semantics, gradients, graph behaviour."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack, where
from repro.nn.tensor import unbroadcast

from ..conftest import assert_gradcheck


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_scalar_item(self):
        assert Tensor(2.5).item() == 2.5

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(3.0)
        assert isinstance(t, Tensor)
        assert t.item() == 3.0

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        assert y.is_leaf

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_numpy_shares_data(self):
        t = Tensor([1.0, 2.0])
        t.numpy()[0] = 9.0
        assert t.data[0] == 9.0


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_with_scalar(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_broadcast(self):
        out = Tensor(np.ones((2, 3))) * Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div_and_rdiv(self):
        np.testing.assert_allclose((Tensor([6.0]) / 2.0).data, [3.0])
        np.testing.assert_allclose((6.0 / Tensor([2.0])).data, [3.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_rmatmul_ndarray_left(self):
        a = np.ones((2, 3))
        out = a @ Tensor(np.ones((3, 2)), requires_grad=True)
        assert out.shape == (2, 2)
        assert out.requires_grad

    def test_comparisons_return_masks(self):
        mask = Tensor([1.0, -1.0]) > 0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [True, False])


class TestGradients:
    def test_add_grad(self, rng):
        assert_gradcheck(lambda x: (x + 2.0).sum(), rng.normal(size=(3, 2)))

    def test_mul_grad(self, rng):
        c = Tensor(rng.normal(size=(3, 2)))
        assert_gradcheck(lambda x: (x * c).sum(), rng.normal(size=(3, 2)))

    def test_div_grad_numerator(self, rng):
        c = Tensor(rng.normal(size=(3,)) + 3.0)
        assert_gradcheck(lambda x: (x / c).sum(), rng.normal(size=(3,)))

    def test_div_grad_denominator(self, rng):
        c = Tensor(rng.normal(size=(3,)))
        assert_gradcheck(lambda x: (c / x).sum(), rng.normal(size=(3,)) + 2.0)

    def test_pow_grad(self, rng):
        assert_gradcheck(lambda x: (x**3).sum(), rng.normal(size=(4,)))

    def test_matmul_grad_left(self, rng):
        b = Tensor(rng.normal(size=(3, 2)))
        assert_gradcheck(lambda x: ((x @ b) ** 2).sum(), rng.normal(size=(4, 3)), tol=1e-5)

    def test_matmul_grad_right(self, rng):
        a = Tensor(rng.normal(size=(4, 3)))
        assert_gradcheck(lambda x: ((a @ x) ** 2).sum(), rng.normal(size=(3, 2)), tol=1e-5)

    def test_matmul_grad_batched(self, rng):
        b = Tensor(rng.normal(size=(2, 3, 4)))
        assert_gradcheck(lambda x: ((x @ b) ** 2).sum(), rng.normal(size=(2, 5, 3)), tol=1e-4)

    def test_matmul_grad_broadcast_left(self, rng):
        # (2D) @ (3D batched): left operand broadcasts over the batch.
        b = Tensor(rng.normal(size=(3, 4, 5)))
        assert_gradcheck(lambda x: ((x @ b) ** 2).sum(), rng.normal(size=(2, 4)), tol=1e-4)

    def test_matmul_vector_right(self, rng):
        v = Tensor(rng.normal(size=(3,)))
        assert_gradcheck(lambda x: ((x @ v) ** 2).sum(), rng.normal(size=(4, 3)), tol=1e-5)

    def test_exp_grad(self, rng):
        assert_gradcheck(lambda x: x.exp().sum(), rng.normal(size=(3,)))

    def test_log_grad(self, rng):
        assert_gradcheck(lambda x: x.log().sum(), rng.random(3) + 0.5)

    def test_sqrt_grad(self, rng):
        assert_gradcheck(lambda x: x.sqrt().sum(), rng.random(3) + 0.5)

    def test_tanh_grad(self, rng):
        assert_gradcheck(lambda x: x.tanh().sum(), rng.normal(size=(3,)))

    def test_sigmoid_grad(self, rng):
        assert_gradcheck(lambda x: x.sigmoid().sum(), rng.normal(size=(3,)))

    def test_relu_grad(self, rng):
        x0 = rng.normal(size=(5,))
        x0[np.abs(x0) < 0.1] = 0.5  # avoid the kink
        assert_gradcheck(lambda x: x.relu().sum(), x0)

    def test_leaky_relu_grad(self, rng):
        x0 = rng.normal(size=(5,))
        x0[np.abs(x0) < 0.1] = 0.5
        assert_gradcheck(lambda x: x.leaky_relu(0.1).sum(), x0)

    def test_abs_grad(self, rng):
        x0 = rng.normal(size=(5,))
        x0[np.abs(x0) < 0.1] = 0.5
        assert_gradcheck(lambda x: x.abs().sum(), x0)

    def test_clip_grad(self, rng):
        assert_gradcheck(lambda x: x.clip(-0.5, 0.5).sum(), rng.normal(size=(6,)) * 2)

    def test_sum_axis_grad(self, rng):
        assert_gradcheck(lambda x: (x.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims_grad(self, rng):
        assert_gradcheck(
            lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), rng.normal(size=(3, 4))
        )

    def test_mean_grad(self, rng):
        assert_gradcheck(lambda x: (x.mean(axis=(0, 2)) ** 2).sum(), rng.normal(size=(2, 3, 4)))

    def test_max_grad(self, rng):
        x0 = rng.normal(size=(3, 4))
        assert_gradcheck(lambda x: x.max(axis=1).sum(), x0)

    def test_max_splits_ties(self):
        x = Tensor([[1.0, 1.0, 0.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_min_grad(self, rng):
        assert_gradcheck(lambda x: x.min(axis=0).sum(), rng.normal(size=(3, 4)))

    def test_reshape_grad(self, rng):
        assert_gradcheck(lambda x: (x.reshape(6) ** 2).sum(), rng.normal(size=(2, 3)))

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.flatten(1).shape == (2, 12)
        assert x.flatten().shape == (24,)

    def test_transpose_grad(self, rng):
        assert_gradcheck(
            lambda x: (x.transpose(1, 0, 2) ** 2).sum(), rng.normal(size=(2, 3, 4))
        )

    def test_T_property(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        assert x.T.shape == (3, 2)

    def test_getitem_grad(self, rng):
        assert_gradcheck(lambda x: (x[1] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_getitem_fancy_grad(self, rng):
        idx = np.array([0, 2, 2])
        assert_gradcheck(lambda x: (x[idx] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        x[np.array([0, 0])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0])

    def test_broadcast_add_grad_shapes(self, rng):
        a = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 1)
        assert b.grad.shape == (1, 4)
        np.testing.assert_allclose(a.grad, np.full((3, 1), 4.0))
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))


class TestFreeFunctions:
    def test_concat_values_and_grad(self, rng):
        a0, b0 = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        out = concat([a, b], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a0, b0]))
        (out**2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a0)
        np.testing.assert_allclose(b.grad, 2 * b0)

    def test_concat_axis1(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 1)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_stack_values_and_grad(self, rng):
        a0, b0 = rng.normal(size=(3,)), rng.normal(size=(3,))
        a, b = Tensor(a0, requires_grad=True), Tensor(b0, requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a0)

    def test_where_grad(self, rng):
        cond = np.array([True, False, True])
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestGraphBehaviour:
    def test_multiple_backward_no_double_count(self, rng):
        w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        x = Tensor(rng.normal(size=(5, 4)))
        z = (x @ w).relu()
        loss1 = (z * z).sum()
        loss2 = z.sum()
        loss1.backward()
        first = w.grad.copy()
        w.zero_grad()
        loss2.backward()
        w.zero_grad()
        # Re-running loss1 backward must reproduce the original gradient.
        loss1_fresh = ((x @ w).relu() ** 2).sum()
        loss1_fresh.backward()
        np.testing.assert_allclose(first, w.grad)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_intermediate_nodes_keep_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        (y * 3).sum().backward()
        assert y.grad is None

    def test_retain_grad_on_intermediate(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).retain_grad()
        (y**2).sum().backward()
        np.testing.assert_allclose(y.grad, 2 * y.data)

    def test_diamond_graph_grad(self):
        # f = (x*2) + (x*3); df/dx = 5
        x = Tensor([1.0], requires_grad=True)
        ((x * 2) + (x * 3)).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(3))

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_non_scalar_backward_with_explicit_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        y = x * 2
        upstream = rng.normal(size=(2, 3))
        y.backward(upstream)
        np.testing.assert_allclose(x.grad, 2 * upstream)


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_axis_sum(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_keepdim_axis_sum(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, ()), 6.0)
