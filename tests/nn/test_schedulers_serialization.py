"""Tests for LR schedulers and checkpoint serialization."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealing,
    InversePower,
    InverseSqrt,
    Linear,
    Parameter,
    SGD,
    StepDecay,
    load_checkpoint,
    load_state,
    save_checkpoint,
)
from repro.nn.layers import Sequential


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepDecay:
    def test_decays_at_period(self):
        opt = make_opt()
        sched = StepDecay(opt, period=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), period=0)
        with pytest.raises(ValueError):
            StepDecay(make_opt(), period=1, gamma=0.0)


class TestCosineAnnealing:
    def test_endpoints(self):
        opt = make_opt()
        sched = CosineAnnealing(opt, total_steps=10, min_lr=0.1)
        first = sched.step()
        assert first < 1.0
        for _ in range(9):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        opt = make_opt()
        sched = CosineAnnealing(opt, total_steps=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamped_after_total(self):
        opt = make_opt()
        sched = CosineAnnealing(opt, total_steps=3, min_lr=0.2)
        for _ in range(5):
            last = sched.step()
        assert last == pytest.approx(0.2)


class TestInversePower:
    def test_corollary1_schedule(self):
        """lr_t = base/√t — the Corollary 1 schedule at p = 1/2."""
        opt = make_opt(lr=0.3)
        sched = InverseSqrt(opt)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, 0.3 / np.sqrt([1, 2, 3, 4]))

    def test_general_power(self):
        opt = make_opt(lr=1.0)
        sched = InversePower(opt, power=1.0)
        lrs = [sched.step() for _ in range(3)]
        np.testing.assert_allclose(lrs, [1.0, 0.5, 1 / 3])

    def test_mutates_optimizer(self):
        opt = make_opt()
        InverseSqrt(opt).step()
        assert opt.lr == pytest.approx(1.0)
        sched = InverseSqrt(opt)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(1.0 / np.sqrt(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            InversePower(make_opt(), power=0.0)


class TestBuiltinFloatContract:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda opt: StepDecay(opt, period=2, gamma=0.5),
            lambda opt: CosineAnnealing(opt, total_steps=5, min_lr=0.1),
            lambda opt: InversePower(opt, power=0.7),
            lambda opt: InverseSqrt(opt),
        ],
        ids=["step_decay", "cosine", "inverse_power", "inverse_sqrt"],
    )
    def test_lr_is_builtin_float_after_stepping(self, factory):
        # np.float64 leaking into optimizer.lr ends up in telemetry JSONL,
        # where it is not JSON-serializable.
        opt = make_opt()
        sched = factory(opt)
        for _ in range(3):
            returned = sched.step()
            assert type(returned) is float
            assert type(opt.lr) is float


class TestMoCoGradCalibrationDecay:
    def test_lambda_decays_per_corollary1(self):
        from repro.core import MoCoGrad

        balancer = MoCoGrad(calibration=0.4, calibration_decay=0.5, seed=0)
        balancer.reset(2)
        assert balancer.current_calibration() == pytest.approx(0.4)
        grads = np.array([[1.0, 0.0], [-1.0, 0.1]])
        balancer.balance(grads, np.ones(2))
        assert balancer.current_calibration() == pytest.approx(0.4 / np.sqrt(2))

    def test_constant_by_default(self):
        from repro.core import MoCoGrad

        balancer = MoCoGrad(calibration=0.4, seed=0)
        balancer.reset(2)
        balancer.balance(np.ones((2, 3)), np.ones(2))
        assert balancer.current_calibration() == pytest.approx(0.4)

    def test_validation(self):
        from repro.core import MoCoGrad

        with pytest.raises(ValueError):
            MoCoGrad(calibration_decay=0.0)


class TestSerialization:
    def _model(self, rng):
        return Sequential(Linear(3, 4, rng), Linear(4, 2, rng))

    def test_roundtrip(self, rng, tmp_path):
        model = self._model(rng)
        path = save_checkpoint(model, tmp_path / "model.npz", {"epoch": 7})
        original = {k: v.copy() for k, v in model.state_dict().items()}
        for param in model.parameters():
            param.data += 9.0
        metadata = load_checkpoint(model, path)
        assert metadata == {"epoch": 7}
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, original[name])

    def test_suffix_added(self, rng, tmp_path):
        path = save_checkpoint(self._model(rng), tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_state_without_model(self, rng, tmp_path):
        model = self._model(rng)
        path = save_checkpoint(model, tmp_path / "m.npz")
        state, metadata = load_state(path)
        assert metadata == {}
        assert set(state) == set(model.state_dict())

    def test_incompatible_model_rejected(self, rng, tmp_path):
        path = save_checkpoint(self._model(rng), tmp_path / "m.npz")
        other = Sequential(Linear(5, 5, rng))
        with pytest.raises(KeyError):
            load_checkpoint(other, path)

    def test_metadata_roundtrip_types(self, rng, tmp_path):
        metadata = {"lr": 0.001, "tags": ["a", "b"], "nested": {"x": 1}}
        path = save_checkpoint(self._model(rng), tmp_path / "m.npz", metadata)
        _, loaded = load_state(path)
        assert loaded == metadata


class TestAtomicCheckpoint:
    """``save_checkpoint`` must never tear the file under its final name."""

    def _model(self, rng):
        return Sequential(Linear(3, 4, rng), Linear(4, 2, rng))

    def test_interrupted_overwrite_keeps_previous_checkpoint(
        self, rng, tmp_path, monkeypatch
    ):
        model = self._model(rng)
        path = save_checkpoint(model, tmp_path / "m.npz", {"epoch": 1})
        good = {k: v.copy() for k, v in model.state_dict().items()}

        # Simulate a crash mid-write: the archiver emits a plausible
        # prefix into its destination stream, then dies.
        def torn_savez(fh, **payload):
            fh.write(b"PK\x03\x04 half a zip archive")
            raise KeyboardInterrupt

        import repro.nn.serialization as serialization

        monkeypatch.setattr(serialization.np, "savez_compressed", torn_savez)
        for param in model.parameters():
            param.data += 1.0
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(model, path, {"epoch": 2})

        # The previous checkpoint is intact and no temp litter remains.
        monkeypatch.undo()
        state, metadata = load_state(path)
        assert metadata == {"epoch": 1}
        for name, value in state.items():
            np.testing.assert_array_equal(value, good[name])
        assert list(tmp_path.iterdir()) == [path]

    def test_interrupted_first_write_leaves_nothing(self, rng, tmp_path, monkeypatch):
        def torn_savez(fh, **payload):
            raise OSError("disk full")

        import repro.nn.serialization as serialization

        monkeypatch.setattr(serialization.np, "savez_compressed", torn_savez)
        with pytest.raises(OSError):
            save_checkpoint(self._model(rng), tmp_path / "fresh.npz")
        assert list(tmp_path.iterdir()) == []

    def test_tmp_file_written_in_destination_directory(self, rng, tmp_path, monkeypatch):
        # Atomicity of os.replace requires same-filesystem temp files.
        seen = {}
        real_replace = os.replace

        def spying_replace(src, dst):
            seen["src"] = src
            return real_replace(src, dst)

        import repro.nn.serialization as serialization

        monkeypatch.setattr(serialization.os, "replace", spying_replace)
        path = save_checkpoint(self._model(rng), tmp_path / "m.npz")
        assert Path(seen["src"]).parent == path.parent
