"""Hypothesis property tests on tensor algebra and autograd identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, concat, stack

finite = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
small_arrays = arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=finite)


class TestAlgebraicIdentities:
    @given(small_arrays, small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_addition_commutative(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, a):
        np.testing.assert_allclose(Tensor(a).T.T.data, a)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert Tensor(a).sum().item() == pytest.approx(a.sum(), rel=1e-12, abs=1e-9)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_mean_is_sum_over_size(self, a):
        t = Tensor(a)
        assert t.mean().item() == pytest.approx(t.sum().item() / a.size, rel=1e-12, abs=1e-9)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_reshape_preserves_sum(self, a):
        t = Tensor(a)
        assert t.reshape(-1).sum().item() == pytest.approx(t.sum().item(), rel=1e-12, abs=1e-9)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_concat_then_split_roundtrip(self, a):
        t = Tensor(a)
        joined = concat([t, t], axis=0)
        np.testing.assert_allclose(joined.data[: a.shape[0]], a)
        np.testing.assert_allclose(joined.data[a.shape[0] :], a)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_stack_shape(self, a):
        out = stack([Tensor(a), Tensor(a), Tensor(a)], axis=0)
        assert out.shape == (3,) + a.shape


class TestAutogradLinearity:
    @given(small_arrays, st.floats(-5.0, 5.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_gradient_scales_linearly(self, a, c):
        """d(c·f)/dx = c · df/dx for any scalar c."""
        x1 = Tensor(a.copy(), requires_grad=True)
        (x1 * x1).sum().backward()
        base = x1.grad.copy()
        x2 = Tensor(a.copy(), requires_grad=True)
        (c * (x2 * x2)).sum().backward()
        np.testing.assert_allclose(x2.grad, c * base, rtol=1e-9, atol=1e-9)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_gradient_of_sum_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_grad_additive_over_losses(self, a):
        """backward(f) then backward(g) accumulates to grad of f+g."""
        x1 = Tensor(a.copy(), requires_grad=True)
        (x1 * 2).sum().backward()
        (x1 * 3).sum().backward()
        x2 = Tensor(a.copy(), requires_grad=True)
        (x2 * 5).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_detach_blocks_gradient(self, a):
        x = Tensor(a, requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    @given(small_arrays)
    @settings(max_examples=20, deadline=None)
    def test_chain_rule_through_exp_log(self, a):
        """d/dx log(exp(x)) = 1 wherever defined."""
        clipped = np.clip(a, -10, 10)
        x = Tensor(clipped, requires_grad=True)
        x.exp().log().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(clipped), rtol=1e-9)
