"""The serving fast path: ``inference_mode`` vs ``no_grad`` vs training."""

import threading

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, Tensor, no_grad
from repro.nn.tensor import inference_mode, is_grad_enabled, is_inference_mode


@pytest.fixture
def model(rng):
    return Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))


class TestSemantics:
    def test_flag_toggles_and_restores(self):
        assert not is_inference_mode()
        with inference_mode():
            assert is_inference_mode()
            with inference_mode():  # nesting is fine
                assert is_inference_mode()
            assert is_inference_mode()
        assert not is_inference_mode()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert not is_inference_mode()

    def test_outputs_carry_no_graph(self, model, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        with inference_mode():
            out = model.forward(x)
        assert out.requires_grad is False
        assert out._grad_fn is None
        assert out._prev == ()
        assert out._ctx is None
        assert out.grad is None

    def test_matches_no_grad_bitwise(self, model, rng):
        x = rng.standard_normal((5, 4))
        with no_grad():
            expected = model.forward(Tensor(x)).data
        with inference_mode():
            actual = model.forward(Tensor(x)).data
        np.testing.assert_array_equal(actual, expected)

    def test_matches_training_forward_bitwise(self, model, rng):
        x = rng.standard_normal((5, 4))
        graph_out = model.forward(Tensor(x, requires_grad=True))
        assert graph_out.requires_grad  # the training forward does build a graph
        with inference_mode():
            fast = model.forward(Tensor(x)).data
        np.testing.assert_array_equal(fast, graph_out.data)

    def test_training_unaffected_after_exit(self, model, rng):
        with inference_mode():
            model.forward(Tensor(rng.standard_normal((2, 4))))
        x = Tensor(rng.standard_normal((2, 4)))
        out = model.forward(x)
        out.sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_requires_grad_inputs_detached(self, rng):
        w = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        with inference_mode():
            out = x @ w
        assert out.requires_grad is False
        assert out._prev == ()

    def test_fast_path_casts_non_float64_intermediates(self):
        # An op yielding a non-float64 array (e.g. int/float32 intermediates
        # from integer tabular inputs) must still get __init__'s float64
        # cast on the fast path, so serving dtype matches the graph path.
        t = Tensor(np.zeros((2, 3)))
        with inference_mode():
            out = t._make_child(np.ones((2, 3), dtype=np.float32), (t,), "test")
        assert out.data.dtype == np.float64


class TestThreadLocality:
    def test_flags_are_per_thread(self, model, rng):
        # A serving worker inside inference_mode must not flip the switches
        # for other threads of the same process.
        entered = threading.Event()
        release = threading.Event()
        errors = []

        def worker():
            try:
                with inference_mode():
                    entered.set()
                    assert release.wait(timeout=10)
                    assert is_inference_mode()
                    assert not is_grad_enabled()
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            # The caller thread still builds graphs mid-context.
            assert not is_inference_mode()
            assert is_grad_enabled()
            x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
            assert model.forward(x).requires_grad
        finally:
            release.set()
            thread.join(timeout=10)
        assert not errors

    def test_overlapping_contexts_on_two_threads_restore_cleanly(self):
        # Regression: with process-global flags, interleaved enter/exit from
        # two threads restored a stale snapshot and wedged the process in
        # inference mode.  Thread-local state makes the order irrelevant.
        barrier = threading.Barrier(2, timeout=10)
        errors = []

        def worker(hold: threading.Event, advance: threading.Event):
            try:
                barrier.wait()
                with inference_mode():
                    hold.set()
                    assert advance.wait(timeout=10)
                assert not is_inference_mode()
                assert is_grad_enabled()
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        a_in, a_go = threading.Event(), threading.Event()
        b_in, b_go = threading.Event(), threading.Event()
        a = threading.Thread(target=worker, args=(a_in, a_go))
        b = threading.Thread(target=worker, args=(b_in, b_go))
        a.start(), b.start()
        # Both enter, then A exits while B is still inside, then B exits.
        assert a_in.wait(timeout=10) and b_in.wait(timeout=10)
        a_go.set()
        a.join(timeout=10)
        b_go.set()
        b.join(timeout=10)
        assert not errors
        assert not is_inference_mode()
        assert is_grad_enabled()


class TestPerformance:
    def test_forward_not_slower_than_graph_forward(self, rng):
        # A smoke-level latency check (the real measurement lives in
        # benchmarks/bench_serve.py): median fast-path forward must not be
        # slower than the graph-building forward on a deep narrow model,
        # where per-op bookkeeping dominates BLAS time.
        import time

        model = Sequential(
            *[layer for _ in range(12) for layer in (Linear(16, 16, rng), ReLU())]
        )
        x = Tensor(rng.standard_normal((8, 16)))

        def median_seconds(fn, repeats=30):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return sorted(times)[len(times) // 2]

        def graph_forward():
            model.forward(Tensor(x.data, requires_grad=True))

        def fast_forward():
            with inference_mode():
                model.forward(x)

        graph_forward(), fast_forward()  # warm-up
        assert median_seconds(fast_forward) <= median_seconds(graph_forward) * 1.10
