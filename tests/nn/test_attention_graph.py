"""Tests for attention blocks and graph layers."""

import numpy as np
import pytest

from repro.nn import (
    GraphConv,
    GraphReadout,
    MultiHeadSelfAttention,
    Tensor,
    TransformerBlock,
    normalize_adjacency,
)

from ..conftest import assert_gradcheck


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        assert attn(Tensor(rng.normal(size=(3, 5, 8)))).shape == (3, 5, 8)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng)

    def test_gradcheck(self, rng):
        attn = MultiHeadSelfAttention(4, 2, rng)
        assert_gradcheck(
            lambda x: (attn(x) ** 2).sum(), rng.normal(size=(1, 3, 4)), tol=1e-4
        )

    def test_permutation_equivariance(self, rng):
        """Self-attention without positions commutes with sequence permutation."""
        attn = MultiHeadSelfAttention(6, 2, rng)
        x = rng.normal(size=(1, 4, 6))
        perm = np.array([2, 0, 3, 1])
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)

    def test_transformer_block_shape_and_grad(self, rng):
        block = TransformerBlock(8, 2, rng)
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        out = block(x)
        assert out.shape == (2, 4, 8)
        (out**2).sum().backward()
        assert x.grad is not None

    def test_transformer_block_gradcheck(self, rng):
        block = TransformerBlock(4, 2, rng)
        block.eval()
        assert_gradcheck(
            lambda x: (block(x) ** 2).sum(), rng.normal(size=(1, 3, 4)), tol=1e-4
        )


class TestNormalizeAdjacency:
    def test_single_matrix(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        norm = normalize_adjacency(adj)
        assert norm.shape == (2, 2)
        # With self loops the 2-node path has D = 2I.
        np.testing.assert_allclose(norm, np.full((2, 2), 0.5))

    def test_batch(self):
        adj = np.zeros((2, 3, 3))
        adj[0, 0, 1] = adj[0, 1, 0] = 1.0
        norm = normalize_adjacency(adj)
        assert norm.shape == (2, 3, 3)

    def test_padding_rows_stay_zero(self):
        adj = np.zeros((1, 3, 3))
        adj[0, 0, 1] = adj[0, 1, 0] = 1.0  # node 2 is padding
        norm = normalize_adjacency(adj)
        np.testing.assert_allclose(norm[0, 2], np.zeros(3))
        np.testing.assert_allclose(norm[0, :, 2], np.zeros(3))

    def test_no_self_loops_option(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        norm = normalize_adjacency(adj, add_self_loops=False)
        np.testing.assert_allclose(np.diag(norm), np.zeros(2))

    def test_row_normalization_bounded(self, rng):
        adj = (rng.random((1, 6, 6)) > 0.5).astype(float)
        adj = np.triu(adj, 1)
        adj = adj + adj.transpose(0, 2, 1)
        norm = normalize_adjacency(adj)
        eigs = np.linalg.eigvalsh(norm[0])
        assert eigs.max() <= 1.0 + 1e-9


class TestGraphConv:
    def test_shape(self, rng):
        conv = GraphConv(4, 6, rng)
        adj = normalize_adjacency(np.ones((2, 3, 3)) - np.eye(3))
        out = conv(Tensor(rng.normal(size=(2, 3, 4))), adj)
        assert out.shape == (2, 3, 6)

    def test_isolated_node_self_only(self, rng):
        """With self loops, an isolated node's output is a function of itself."""
        conv = GraphConv(2, 2, rng)
        adj = np.zeros((1, 2, 2))
        adj[0, 0, 1] = adj[0, 1, 0] = 0.0
        adj[0, 0, 0] = 1.0  # give node 0 a degree so it is "real"
        norm = normalize_adjacency(adj)
        x = np.zeros((1, 2, 2))
        x[0, 1] = [1.0, 1.0]  # only node 1 has features
        out = conv(Tensor(x), norm).data
        # Node 1 has no connectivity at all (padding): its row of Â is zero.
        np.testing.assert_allclose(out[0, 1], conv.linear.bias.data)

    def test_gradcheck(self, rng):
        conv = GraphConv(3, 2, rng)
        adj = normalize_adjacency(np.ones((1, 3, 3)) - np.eye(3))
        assert_gradcheck(
            lambda x: (conv(x, adj) ** 2).sum(), rng.normal(size=(1, 3, 3)), tol=1e-5
        )


class TestGraphReadout:
    def test_masked_mean(self, rng):
        readout = GraphReadout()
        x = np.zeros((1, 3, 2))
        x[0, 0] = [2.0, 4.0]
        x[0, 1] = [4.0, 0.0]
        x[0, 2] = [100.0, 100.0]  # padding
        mask = np.array([[1.0, 1.0, 0.0]])
        out = readout(Tensor(x), mask)
        np.testing.assert_allclose(out.data, [[3.0, 2.0]])

    def test_empty_graph_guard(self):
        readout = GraphReadout()
        out = readout(Tensor(np.ones((1, 2, 3))), np.zeros((1, 2)))
        np.testing.assert_allclose(out.data, np.zeros((1, 3)))

    def test_grad_flows_only_through_real_nodes(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
        mask = np.array([[1.0, 1.0, 0.0]])
        GraphReadout()(x, mask).sum().backward()
        np.testing.assert_allclose(x.grad[0, 2], np.zeros(2))
        assert np.all(x.grad[0, 0] != 0)
