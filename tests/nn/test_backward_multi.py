"""Tests for the multi-root backward kernel (`repro.nn.backward_multi`)."""

import numpy as np
import pytest

from repro.nn import Tensor, backward_multi, concat, pad2d, stack, where
from repro.nn.tensor import unbroadcast_lead
from repro.nn.utils import grad_vector, grad_vector_from_slots, set_grad_from_vector

from ..conftest import numerical_gradient


def build_graph(x_data, w_data):
    """A three-root graph exercising most primitive ops."""
    x = Tensor(x_data.copy(), requires_grad=True)
    w = Tensor(w_data.copy(), requires_grad=True)
    h = (x @ w).tanh()
    h = h.leaky_relu(0.1) + h.sigmoid() * 0.3 - (h.abs() + 1.0).log()
    h = h.clip(-2.0, 2.0)
    a = h.sum(axis=1)
    b = h.max(axis=0)
    c = h.reshape(-1)[::2].sum()
    l1 = (a * a).mean() + h.exp().sum() * 1e-3
    l2 = (b**2).sum() + c
    l3 = h.transpose().sum() / 7.0 + (h / (h.abs() + 1.5)).sum()
    return x, w, [l1, l2, l3]


class TestEquivalenceWithSequentialBackward:
    def test_per_root_slots_match_sequential(self, rng):
        x_data = rng.normal(size=(5, 4))
        w_data = rng.normal(size=(4, 6))
        reference = []
        for k in range(3):
            x, w, losses = build_graph(x_data, w_data)
            losses[k].backward()
            reference.append((x.grad.copy(), w.grad.copy()))

        x, w, losses = build_graph(x_data, w_data)
        slots = backward_multi(losses, per_root=[x, w])
        for k in range(3):
            for i in range(2):
                np.testing.assert_allclose(slots[i][k], reference[k][i], atol=1e-12, rtol=0)

    def test_leaf_grad_accumulates_sum_over_roots(self, rng):
        x_data = rng.normal(size=(5, 4))
        w_data = rng.normal(size=(4, 6))
        reference = []
        for k in range(3):
            x, w, losses = build_graph(x_data, w_data)
            losses[k].backward()
            reference.append((x.grad.copy(), w.grad.copy()))

        x, w, losses = build_graph(x_data, w_data)
        backward_multi(losses)
        np.testing.assert_allclose(x.grad, sum(r[0] for r in reference), atol=1e-12, rtol=0)
        np.testing.assert_allclose(w.grad, sum(r[1] for r in reference), atol=1e-12, rtol=0)

    def test_collection_ops(self, rng):
        def build():
            gen = np.random.default_rng(7)
            a = Tensor(gen.normal(size=(3, 4)), requires_grad=True)
            b = Tensor(gen.normal(size=(3, 4)), requires_grad=True)
            cat = concat([a, b], axis=1)
            st = stack([a.sum(axis=1), b.sum(axis=1)], axis=0)
            wh = where(a.data > 0, a, b)
            gathered = cat[:, np.array([0, 2, 1, 0])]
            l1 = (cat * cat).sum() + st.sum()
            l2 = wh.sum() * 2.0 + gathered.sum()
            return a, b, [l1, l2]

        reference = []
        for k in range(2):
            a, b, losses = build()
            losses[k].backward()
            reference.append((a.grad.copy(), b.grad.copy()))
        a, b, losses = build()
        slots = backward_multi(losses, per_root=[a, b])
        for k in range(2):
            for i in range(2):
                np.testing.assert_allclose(slots[i][k], reference[k][i], atol=1e-12, rtol=0)

    def test_pad2d_batched_adjoint(self, rng):
        def build():
            gen = np.random.default_rng(11)
            img = Tensor(gen.normal(size=(2, 3, 4, 4)), requires_grad=True)
            padded = pad2d(img, 1)
            l1 = (padded * padded).sum()
            l2 = padded.sum() * 0.5
            return img, [l1, l2]

        reference = []
        for k in range(2):
            img, losses = build()
            losses[k].backward()
            reference.append(img.grad.copy())
        img, losses = build()
        slots = backward_multi(losses, per_root=[img])
        for k in range(2):
            np.testing.assert_allclose(slots[0][k], reference[k], atol=1e-12, rtol=0)

    def test_seed_gradients(self, rng):
        x_data = rng.normal(size=(4, 3))
        x = Tensor(x_data.copy(), requires_grad=True)
        l1 = (x * x).sum()
        l2 = x.sum()
        slots = backward_multi([l1, l2], grads=[np.array(2.0), np.array(-1.0)], per_root=[x])
        np.testing.assert_allclose(slots[0][0], 2.0 * 2.0 * x_data, atol=1e-12, rtol=0)
        np.testing.assert_allclose(slots[0][1], -np.ones_like(x_data), atol=1e-12, rtol=0)

    def test_aliasing_safe_self_add(self, rng):
        # x + x routes the SAME upstream buffer to both parents; the walk
        # must not corrupt it via in-place accumulation.
        x_data = rng.normal(size=(3, 3))
        x = Tensor(x_data.copy(), requires_grad=True)
        y = x + x
        l1 = (y * y).sum()
        l2 = y.sum()
        slots = backward_multi([l1, l2], per_root=[x])
        np.testing.assert_allclose(slots[0][0], 8.0 * x_data, atol=1e-12, rtol=0)
        np.testing.assert_allclose(slots[0][1], 2.0 * np.ones_like(x_data), atol=1e-12, rtol=0)


class TestFiniteDifference:
    def test_multi_root_matches_numerical_gradient(self, rng):
        x0 = rng.normal(size=(3, 4))

        def f1(t):
            return (t.tanh() * t).sum()

        def f2(t):
            return (t @ t.T).sum() * 0.1

        x = Tensor(x0.copy(), requires_grad=True)
        slots = backward_multi([f1(x), f2(x)], per_root=[x])
        np.testing.assert_allclose(slots[0][0], numerical_gradient(f1, x0), atol=1e-5, rtol=0)
        np.testing.assert_allclose(slots[0][1], numerical_gradient(f2, x0), atol=1e-5, rtol=0)


class TestPerRootSparsity:
    def test_unreached_root_slot_is_none(self, rng):
        # Two disjoint subgraphs: each root reaches only its own leaf.
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        la = (a * a).sum()
        lb = b.sum()
        slots = backward_multi([la, lb], per_root=[a, b])
        assert slots[0][1] is None
        assert slots[1][0] is None
        np.testing.assert_allclose(slots[0][0], 2.0 * a.data, atol=1e-12, rtol=0)
        np.testing.assert_allclose(slots[1][1], np.ones(3), atol=1e-12, rtol=0)

    def test_per_root_tensors_keep_grad_untouched(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        losses = [(x * x).sum(), x.sum()]
        backward_multi(losses, per_root=[x])
        assert x.grad is None


class TestErrors:
    def test_empty_roots_rejected(self):
        with pytest.raises(ValueError, match="at least one root"):
            backward_multi([])

    def test_non_grad_root_rejected(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError, match="does not require grad"):
            backward_multi([x])

    def test_seed_count_mismatch_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = x.sum()
        with pytest.raises(ValueError, match="seed grads"):
            backward_multi([loss], grads=[None, None])

    def test_seed_shape_mismatch_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = x.sum()
        with pytest.raises(ValueError, match="grad shape"):
            backward_multi([loss], grads=[np.ones(2)])


class TestUnbroadcastLead:
    def test_reduces_broadcast_axes_preserving_root_axis(self, rng):
        grad = rng.normal(size=(4, 2, 3, 5))
        reduced = unbroadcast_lead(grad, (3, 5))
        np.testing.assert_allclose(reduced, grad.sum(axis=1), atol=1e-12, rtol=0)
        kept = unbroadcast_lead(grad, (1, 3, 5))
        np.testing.assert_allclose(kept, grad.sum(axis=1, keepdims=True), atol=1e-12, rtol=0)

    def test_noop_when_shapes_match(self, rng):
        grad = rng.normal(size=(2, 3))
        assert unbroadcast_lead(grad, (3,)) is grad


class TestVectorUtilities:
    def _params(self, rng):
        from repro.nn import Parameter

        return [Parameter(rng.normal(size=(2, 3))), Parameter(rng.normal(size=4))]

    def test_grad_vector_out_validates_shape(self, rng):
        params = self._params(rng)
        with pytest.raises(ValueError, match="expected"):
            grad_vector(params, out=np.empty(5))

    def test_grad_vector_from_slots_writes_zeros_for_none(self, rng):
        params = self._params(rng)
        slots = [[rng.normal(size=(2, 3))], [None]]
        vec = grad_vector_from_slots(params, slots, 0)
        np.testing.assert_allclose(vec[:6], slots[0][0].reshape(-1), atol=0, rtol=0)
        np.testing.assert_allclose(vec[6:], 0.0, atol=0, rtol=0)

    @pytest.mark.parametrize("bad_size", [9, 11])
    def test_set_grad_from_vector_no_partial_mutation(self, rng, bad_size):
        # Total size is 10; both a short and a long vector must fail
        # BEFORE any grad is written.
        params = self._params(rng)
        params[0].grad = np.full((2, 3), 7.0)
        params[1].grad = None
        with pytest.raises(ValueError, match="does not match"):
            set_grad_from_vector(params, np.zeros(bad_size))
        np.testing.assert_allclose(params[0].grad, 7.0, atol=0, rtol=0)
        assert params[1].grad is None
