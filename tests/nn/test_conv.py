"""Tests for convolution / pooling / upsampling layers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    GlobalAvgPool2d,
    MaxPool2d,
    Tensor,
    UpsampleNearest,
    pad2d,
)

from ..conftest import assert_gradcheck


class TestPad2d:
    def test_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 3, 3)))
        assert pad2d(x, 2).shape == (1, 2, 7, 7)

    def test_zero_padding_noop(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3)))
        assert pad2d(x, 0) is x

    def test_grad(self, rng):
        assert_gradcheck(lambda x: (pad2d(x, 1) ** 2).sum(), rng.normal(size=(1, 1, 3, 3)))


class TestConv2d:
    def test_output_shape_with_padding(self, rng):
        conv = Conv2d(3, 5, 3, rng, padding=1)
        assert conv(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 5, 8, 8)

    def test_output_shape_stride(self, rng):
        conv = Conv2d(1, 2, 3, rng, stride=2)
        assert conv(Tensor(rng.normal(size=(1, 1, 7, 7)))).shape == (1, 2, 3, 3)

    def test_matches_manual_convolution(self, rng):
        conv = Conv2d(1, 1, 3, rng, bias=False)
        x = rng.normal(size=(1, 1, 5, 5))
        out = conv(Tensor(x)).data[0, 0]
        kernel = conv.weight.data[0, 0]
        for i in range(3):
            for j in range(3):
                expected = (x[0, 0, i : i + 3, j : j + 3] * kernel).sum()
                assert out[i, j] == pytest.approx(expected)

    def test_bias_added_per_channel(self, rng):
        conv = Conv2d(1, 2, 1, rng)
        conv.weight.data[:] = 0.0
        conv.bias.data[:] = [1.0, -1.0]
        out = conv(Tensor(np.zeros((1, 1, 2, 2)))).data
        np.testing.assert_allclose(out[0, 0], np.ones((2, 2)))
        np.testing.assert_allclose(out[0, 1], -np.ones((2, 2)))

    def test_input_gradcheck(self, rng):
        conv = Conv2d(2, 3, 3, rng, padding=1)
        assert_gradcheck(
            lambda x: (conv(x) ** 2).sum(), rng.normal(size=(1, 2, 4, 4)), tol=1e-4
        )

    def test_weight_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        conv = Conv2d(1, 1, 3, rng)

        def fn(w):
            conv.weight.data = w.data
            conv.weight.grad = None
            out = (conv(x) ** 2).sum()
            return out

        w0 = conv.weight.data.copy()
        loss = (conv(x) ** 2).sum()
        loss.backward()
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(w0)
        for idx in np.ndindex(*w0.shape):
            wp, wm = w0.copy(), w0.copy()
            wp[idx] += eps
            wm[idx] -= eps
            conv.weight.data = wp
            up = (conv(x) ** 2).sum().item()
            conv.weight.data = wm
            down = (conv(x) ** 2).sum().item()
            numeric[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_wrong_channels_raises(self, rng):
        conv = Conv2d(3, 2, 3, rng, padding=1)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 2, 4, 4))))

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, rng)(Tensor(np.zeros((4, 4))))

    def test_accepts_ndarray(self, rng):
        conv = Conv2d(1, 1, 3, rng, padding=1)
        assert conv(rng.normal(size=(1, 1, 4, 4))).shape == (1, 1, 4, 4)


class TestPooling:
    def test_maxpool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_flows_to_max_only(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_maxpool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(3)(Tensor(rng.normal(size=(1, 1, 4, 4))))

    def test_avgpool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_grad(self, rng):
        assert_gradcheck(
            lambda x: (AvgPool2d(2)(x) ** 2).sum(), rng.normal(size=(1, 2, 4, 4))
        )

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(3, 5, 4, 4)))
        out = GlobalAvgPool2d()(x)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))


class TestUpsample:
    def test_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = UpsampleNearest(2)(x)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out.data[0, 0, :2, :2], np.ones((2, 2)))
        np.testing.assert_allclose(out.data[0, 0, 2:, 2:], np.full((2, 2), 4.0))

    def test_grad_sums_over_replicas(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        UpsampleNearest(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 4.0))

    def test_gradcheck(self, rng):
        assert_gradcheck(
            lambda x: (UpsampleNearest(2)(x) ** 2).sum(), rng.normal(size=(1, 1, 3, 3))
        )
