"""Tests for core layers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    BatchNorm1d,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)

from ..conftest import assert_gradcheck


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        assert layer(Tensor(rng.normal(size=(7, 5)))).shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_weight_grad(self, rng):
        layer = Linear(3, 2, rng)
        (layer(Tensor(rng.normal(size=(4, 3)))) ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_higher_rank_input(self, rng):
        layer = Linear(4, 2, rng)
        assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_grad_accumulates_on_repeats(self, rng):
        emb = Embedding(5, 3, rng)
        emb(np.array([2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_2d_indices(self, rng):
        emb = Embedding(10, 4, rng)
        assert emb(np.zeros((2, 6), dtype=int)).shape == (2, 6, 4)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_mode_masks_and_rescales(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        kept = out != 0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(out[kept], 2.0)

    def test_zero_probability_identity(self, rng):
        drop = Dropout(0.0, rng)
        x = Tensor(rng.normal(size=(3,)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestNormalization:
    def test_layernorm_zero_mean_unit_var(self, rng):
        ln = LayerNorm(8)
        out = ln(Tensor(rng.normal(size=(4, 8)) * 5 + 3)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_layernorm_grad(self, rng):
        ln = LayerNorm(4)
        assert_gradcheck(lambda x: (ln(x) ** 2).sum(), rng.normal(size=(2, 4)), tol=1e-4)

    def test_batchnorm_normalizes_in_train(self, rng):
        bn = BatchNorm1d(5)
        out = bn(Tensor(rng.normal(size=(64, 5)) * 3 + 1)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(5), atol=1e-6)

    def test_batchnorm_running_stats_update(self, rng):
        bn = BatchNorm1d(3, momentum=0.5)
        bn(Tensor(rng.normal(size=(32, 3)) + 10.0))
        assert np.all(bn.running_mean > 1.0)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3)
        for _ in range(50):
            bn(Tensor(rng.normal(size=(64, 3)) + 2.0))
        bn.eval()
        out = bn(Tensor(np.full((4, 3), 2.0))).data
        np.testing.assert_allclose(out, np.zeros((4, 3)), atol=0.3)


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        assert seq(Tensor(rng.normal(size=(5, 3)))).shape == (5, 2)
        assert len(seq) == 3

    def test_sequential_parameters_collected(self, rng):
        seq = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        assert len(seq.parameters()) == 4

    def test_activation_modules(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        np.testing.assert_allclose(Tanh()(x).data, np.tanh(x.data))
        np.testing.assert_allclose(Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))
        np.testing.assert_allclose(Identity()(x).data, x.data)

    def test_mlp_shapes_and_depth(self, rng):
        mlp = MLP(6, [8, 4], 2, rng)
        assert mlp(Tensor(rng.normal(size=(3, 6)))).shape == (3, 2)
        # 3 linear layers → 6 parameters
        assert len(mlp.parameters()) == 6

    def test_mlp_no_hidden(self, rng):
        mlp = MLP(6, [], 2, rng)
        assert len(mlp.parameters()) == 2

    def test_mlp_with_dropout_trains(self, rng):
        mlp = MLP(4, [8], 1, rng, dropout=0.3)
        out = mlp(Tensor(rng.normal(size=(10, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
