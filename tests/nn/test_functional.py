"""Tests for functional ops and losses (values + gradients + stability)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from ..conftest import assert_gradcheck


class TestActivations:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_log_softmax_grad(self, rng):
        assert_gradcheck(lambda x: (F.log_softmax(x) ** 2).sum(), rng.normal(size=(2, 4)))

    def test_softmax_grad(self, rng):
        assert_gradcheck(lambda x: (F.softmax(x) ** 2).sum(), rng.normal(size=(2, 4)))

    def test_gelu_values(self):
        out = F.gelu(Tensor([0.0, 100.0]))
        np.testing.assert_allclose(out.data[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(out.data[1], 100.0, rtol=1e-6)

    def test_gelu_grad(self, rng):
        assert_gradcheck(lambda x: F.gelu(x).sum(), rng.normal(size=(4,)))

    def test_elementwise_wrappers(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        np.testing.assert_allclose(F.relu(x).data, np.maximum(x.data, 0))
        np.testing.assert_allclose(F.tanh(x).data, np.tanh(x.data))
        np.testing.assert_allclose(F.sigmoid(x).data, 1 / (1 + np.exp(-x.data)))
        np.testing.assert_allclose(
            F.leaky_relu(x, 0.2).data, np.where(x.data > 0, x.data, 0.2 * x.data)
        )

    def test_cosine_similarity_unit_vectors(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[0.0, 1.0]])
        np.testing.assert_allclose(F.cosine_similarity(a, b).data, [0.0], atol=1e-6)
        np.testing.assert_allclose(F.cosine_similarity(a, a).data, [1.0], rtol=1e-6)


class TestLosses:
    def test_mse_value(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mse_grad(self, rng):
        t = rng.normal(size=(4,))
        assert_gradcheck(lambda x: F.mse_loss(x, t), rng.normal(size=(4,)))

    def test_l1_value(self):
        loss = F.l1_loss(Tensor([1.0, -2.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_huber_quadratic_region(self):
        loss = F.huber_loss(Tensor([0.5]), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        loss = F.huber_loss(Tensor([3.0]), np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)

    def test_huber_grad(self, rng):
        t = np.zeros(4)
        x0 = np.array([0.3, -0.4, 2.0, -3.0])
        assert_gradcheck(lambda x: F.huber_loss(x, t), x0)

    def test_bce_matches_naive_formula(self, rng):
        logits = rng.normal(size=(10,))
        labels = (rng.random(10) > 0.5).astype(float)
        probs = 1 / (1 + np.exp(-logits))
        naive = -np.mean(labels * np.log(probs) + (1 - labels) * np.log(1 - probs))
        loss = F.bce_with_logits(Tensor(logits), labels)
        assert loss.item() == pytest.approx(naive, rel=1e-9)

    def test_bce_stable_for_extreme_logits(self):
        loss = F.bce_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_bce_grad(self, rng):
        labels = (rng.random(5) > 0.5).astype(float)
        assert_gradcheck(lambda x: F.bce_with_logits(x, labels), rng.normal(size=(5,)))

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        manual = -np.mean(log_probs[np.arange(6), labels])
        loss = F.cross_entropy(Tensor(logits), labels)
        assert loss.item() == pytest.approx(manual, rel=1e-9)

    def test_cross_entropy_grad(self, rng):
        labels = rng.integers(0, 3, size=4)
        assert_gradcheck(lambda x: F.cross_entropy(x, labels), rng.normal(size=(4, 3)))

    def test_cross_entropy_dense_prediction_shape(self, rng):
        logits = Tensor(rng.normal(size=(2, 4, 4, 3)), requires_grad=True)
        labels = rng.integers(0, 3, size=(2, 4, 4))
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        assert logits.grad.shape == (2, 4, 4, 3)

    def test_cross_entropy_rejects_wrong_axis(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(rng.normal(size=(2, 3, 4))), np.zeros((2, 4)), axis=1)

    def test_nll_loss_matches_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)))
        labels = rng.integers(0, 3, size=5)
        ce = F.cross_entropy(logits, labels)
        nll = F.nll_loss(F.log_softmax(logits), labels)
        assert nll.item() == pytest.approx(ce.item(), rel=1e-12)
