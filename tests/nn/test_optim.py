"""Tests for the optimizers (semantics + convergence on quadratics)."""

import numpy as np
import pytest

from repro.nn import Adam, AdaGrad, Parameter, RMSProp, SGD


def quadratic_step(optimizer_cls, steps=200, **kwargs):
    """Minimize f(θ) = ||θ − 3||² from 0; return the final parameter."""
    param = Parameter(np.zeros(4))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        param.grad = 2.0 * (param.data - 3.0)
        optimizer.step()
    return param.data


class TestSGD:
    def test_single_step_formula(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        param.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(param.data, [0.8])

    def test_converges_on_quadratic(self):
        final = quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-6)

    def test_momentum_accelerates(self):
        plain = quadratic_step(SGD, steps=10, lr=0.01)
        momentum = quadratic_step(SGD, steps=10, lr=0.01, momentum=0.9)
        assert np.abs(momentum - 3.0).max() < np.abs(plain - 3.0).max()

    def test_momentum_matches_manual_recursion(self):
        param = Parameter(np.array([0.0]))
        opt = SGD([param], lr=0.1, momentum=0.5)
        velocity, theta = 0.0, 0.0
        for grad in (1.0, 2.0, -1.0):
            param.grad = np.array([grad])
            opt.step()
            velocity = 0.5 * velocity + grad
            theta -= 0.1 * velocity
            np.testing.assert_allclose(param.data, [theta])

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(param.data, [9.0])

    def test_none_grad_skipped(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        opt.step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_zero_grad_clears(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([5.0])
        SGD([param], lr=0.1).zero_grad()
        assert param.grad is None

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first step has magnitude ≈ lr."""
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.1)
        param.grad = np.array([1000.0])
        opt.step()
        np.testing.assert_allclose(param.data, [-0.1], rtol=1e-6)

    def test_converges_on_quadratic(self):
        final = quadratic_step(Adam, steps=600, lr=0.05)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-3)

    def test_matches_reference_implementation(self):
        param = Parameter(np.array([0.5]))
        opt = Adam([param], lr=0.01, betas=(0.9, 0.999), eps=1e-8)
        m = v = 0.0
        theta = 0.5
        rng = np.random.default_rng(0)
        for t in range(1, 6):
            grad = float(rng.normal())
            param.grad = np.array([grad])
            opt.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad**2
            m_hat = m / (1 - 0.9**t)
            v_hat = v / (1 - 0.999**t)
            theta -= 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(param.data, [theta], rtol=1e-12)

    def test_weight_decay(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        opt.step()
        assert param.data[0] < 1.0


class TestAdaGrad:
    def test_step_shrinks_with_accumulation(self):
        param = Parameter(np.array([0.0]))
        opt = AdaGrad([param], lr=1.0)
        param.grad = np.array([1.0])
        opt.step()
        first = abs(param.data[0])
        previous = param.data.copy()
        param.grad = np.array([1.0])
        opt.step()
        second = abs(param.data[0] - previous[0])
        assert second < first

    def test_converges_on_quadratic(self):
        final = quadratic_step(AdaGrad, steps=800, lr=1.0)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-2)


class TestRMSProp:
    def test_normalizes_gradient_scale(self):
        """Step size should be roughly lr regardless of gradient magnitude."""
        big = Parameter(np.array([0.0]))
        small = Parameter(np.array([0.0]))
        opt_big = RMSProp([big], lr=0.01, alpha=0.0)
        opt_small = RMSProp([small], lr=0.01, alpha=0.0)
        big.grad = np.array([1000.0])
        small.grad = np.array([0.001])
        opt_big.step()
        opt_small.step()
        np.testing.assert_allclose(abs(big.data[0]), abs(small.data[0]), rtol=1e-4)

    def test_converges_on_quadratic(self):
        final = quadratic_step(RMSProp, steps=800, lr=0.01)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=1e-2)


class TestStepCounting:
    def test_step_count_increments(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], lr=0.1)
        for expected in range(1, 4):
            param.grad = np.ones(1)
            opt.step()
            assert opt.step_count == expected
