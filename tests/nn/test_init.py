"""Tests for parameter initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_xavier_uniform_bound_linear(self, rng):
        w = init.xavier_uniform((40, 60), rng)
        bound = np.sqrt(6.0 / (40 + 60))
        assert np.abs(w).max() <= bound
        assert w.shape == (40, 60)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((200, 300), rng)
        expected_std = np.sqrt(2.0 / 500)
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((30, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 30)

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((500, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.1)

    def test_conv_kernel_fan(self, rng):
        # (out, in, kh, kw): fan_in = in * kh * kw
        w = init.kaiming_uniform((8, 4, 3, 3), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / (4 * 9))

    def test_vector_shape(self, rng):
        w = init.xavier_uniform((10,), rng)
        assert w.shape == (10,)

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 3)), np.zeros((3, 3)))

    def test_normal_std_param(self):
        rng = np.random.default_rng(0)
        w = init.normal((1000,), rng, std=0.5)
        assert w.std() == pytest.approx(0.5, rel=0.1)

    def test_deterministic_under_seed(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(7))
        b = init.xavier_uniform((5, 5), np.random.default_rng(7))
        np.testing.assert_allclose(a, b)
