"""Equation-level fidelity tests: every numbered equation of the paper.

Each test states which equation of the paper it verifies, so reviewers can
audit the implementation against the text directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancers import gradvac_coefficient, project_conflicting
from repro.core import (
    MoCoGrad,
    calibrated_gradient_bound,
    corollary1_rate_exponent,
    gradient_conflict_degree,
)
from repro.metrics import delta_m


def unit(rng, d=6):
    v = rng.normal(size=d)
    return v / np.linalg.norm(v)


class TestEq4GCD:
    """Eq. (4): GCD(g_i, g_j) = 1 − cos φ_ij; conflict iff GCD > 1."""

    def test_definition_on_known_angles(self):
        g = np.array([1.0, 0.0])
        for angle_deg in (0, 45, 90, 135, 180):
            angle = np.radians(angle_deg)
            h = np.array([np.cos(angle), np.sin(angle)])
            assert gradient_conflict_degree(g, h) == pytest.approx(1 - np.cos(angle), abs=1e-12)

    @given(st.floats(-1.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_conflict_threshold_is_cos_zero(self, cosine):
        if abs(cosine) < 1e-9:
            return  # knife-edge: GCD == 1 exactly, neither side
        g = np.array([1.0, 0.0])
        h = np.array([cosine, np.sqrt(max(1 - cosine**2, 0.0))])
        gcd = gradient_conflict_degree(g, h)
        assert (gcd > 1.0) == (cosine < 0.0)


class TestEq5PCGrad:
    """Eq. (5): g_i' = g_i − (g_i·g_j/‖g_j‖²) g_j for conflicting pairs."""

    def test_formula_exact(self, rng):
        for _ in range(10):
            g_i, g_j = rng.normal(size=5), rng.normal(size=5)
            if g_i @ g_j >= 0:
                g_i = -g_i  # force conflict
                if g_i @ g_j >= 0:
                    continue
            expected = g_i - (g_i @ g_j) / (g_j @ g_j) * g_j
            np.testing.assert_allclose(project_conflicting(g_i, g_j), expected)

    def test_result_orthogonal_to_partner(self, rng):
        g_i = np.array([1.0, -2.0, 0.5])
        g_j = np.array([-1.0, 1.0, 0.0])
        assert g_i @ g_j < 0
        projected = project_conflicting(g_i, g_j)
        assert abs(projected @ g_j) < 1e-12


class TestEq6Eq7GradVac:
    """Eq. (6)/(7): g_i' = g_i + α g_j with the Law-of-Sines α."""

    @given(st.floats(-0.9, 0.3), st.floats(0.35, 0.95), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_alpha_achieves_target_angle(self, cos_current, cos_target, seed):
        if cos_current >= cos_target:
            return
        rng = np.random.default_rng(seed)
        g_j = unit(rng)
        # Build g_i at the requested current angle to g_j.
        ortho = unit(rng)
        ortho -= (ortho @ g_j) * g_j
        ortho /= np.linalg.norm(ortho)
        magnitude = float(rng.uniform(0.5, 3.0))
        g_i = magnitude * (cos_current * g_j + np.sqrt(1 - cos_current**2) * ortho)
        alpha = gradvac_coefficient(
            np.linalg.norm(g_i), np.linalg.norm(g_j), cos_current, cos_target
        )
        adjusted = g_i + alpha * g_j
        achieved = adjusted @ g_j / (np.linalg.norm(adjusted) * np.linalg.norm(g_j))
        assert achieved == pytest.approx(cos_target, abs=1e-8)


class TestEq8Eq9MoCoGrad:
    """Eq. (8): ĝ_i = g_i + λ(‖g_j‖/‖m_j‖)m_j; Eq. (9): EMA momentum."""

    def test_eq8_added_term_norm(self):
        """The calibration term has norm exactly λ‖g_j‖ regardless of ‖m_j‖."""
        balancer = MoCoGrad(calibration=0.25, beta1=0.5, seed=0)
        balancer.reset(2)
        grads = np.array([[2.0, 0.0], [-3.0, 0.4]])
        balancer.balance(grads, np.ones(2))  # momentum warm-up
        calibrated = balancer.calibrate(grads)
        added = calibrated[0] - grads[0]
        assert np.linalg.norm(added) == pytest.approx(0.25 * np.linalg.norm(grads[1]))

    def test_eq8_direction_is_momentum(self):
        balancer = MoCoGrad(calibration=0.5, seed=0)
        balancer.reset(2)
        grads = np.array([[2.0, 0.0], [-3.0, 0.4]])
        balancer.balance(grads, np.ones(2))
        momentum = balancer.momentum[1].copy()
        calibrated = balancer.calibrate(grads)
        added = calibrated[0] - grads[0]
        cosine = added @ momentum / (np.linalg.norm(added) * np.linalg.norm(momentum))
        assert cosine == pytest.approx(1.0)

    def test_eq9_momentum_recursion(self):
        beta = 0.7
        balancer = MoCoGrad(beta1=beta, seed=0)
        balancer.reset(2)
        g1 = np.array([[1.0, 0.0], [0.0, 1.0]])
        g2 = np.array([[0.5, 0.5], [0.2, -0.2]])
        balancer.balance(g1, np.ones(2))
        balancer.balance(g2, np.ones(2))
        expected = beta * ((1 - beta) * g1) + (1 - beta) * g2
        np.testing.assert_allclose(balancer.momentum, expected)


class TestTheorem1Inequality:
    """Theorem 1's chain: ‖ĝ‖ ≤ Σ‖g_i‖ + λΣ‖g_j‖ ≤ K(1+λ)G < 2KG."""

    @given(
        st.integers(2, 5),
        st.floats(0.05, 1.0),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_chain(self, num_tasks, lam, grad_bound):
        bound = calibrated_gradient_bound(num_tasks, lam, grad_bound)
        assert bound == pytest.approx(num_tasks * (1 + lam) * grad_bound)
        assert bound <= 2 * num_tasks * grad_bound + 1e-12


class TestCorollary1Exponent:
    """Corollary 1: R(T) = O(T^max(p, 1−p, 1−3p)); sublinear for p ∈ (0, 1)."""

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_sublinear_in_open_interval(self, p):
        assert corollary1_rate_exponent(p) < 1.0

    def test_stated_value_at_half(self):
        assert corollary1_rate_exponent(0.5) == pytest.approx(0.5)


class TestEq27DeltaM:
    """Eq. (27): Δ_M = (1/K) Σ (−1)^{s_k} (M_m − M_b)/M_b."""

    def test_hand_computed_example(self):
        # Two metrics: AUC (higher better) 0.70→0.77 (+10%);
        # RMSE (lower better) 2.0→1.6 (+20%).  ΔM = 15%.
        value = delta_m([0.77, 1.6], [0.70, 2.0], [True, False])
        assert value == pytest.approx(0.15)

    @given(
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=5),
        st.floats(0.5, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_uniform_scaling_of_all_metrics(self, baseline, factor):
        """Scaling every lower-is-better metric by c gives ΔM = 1 − c."""
        baseline = np.asarray(baseline)
        value = delta_m(baseline * factor, baseline, [False] * len(baseline))
        assert value == pytest.approx(1.0 - factor, rel=1e-9)
