"""Tests for the PLE (progressive layered extraction) architecture."""

import numpy as np
import pytest

from repro.arch import PLE, LinearHead, MLPEncoder
from repro.nn import Tensor


def make_ple(rng, levels=2):
    factories = [lambda: MLPEncoder(6, [8], rng)] + [
        lambda: MLPEncoder(8, [8], rng) for _ in range(levels - 1)
    ]
    gate_in = [6] + [8] * (levels - 1)
    return PLE(
        factories[:levels],
        num_shared_experts=2,
        num_task_experts=1,
        heads={"a": LinearHead(8, 1, rng), "b": LinearHead(8, 1, rng)},
        gate_in_features=gate_in[:levels],
        rng=rng,
    )


class TestPLE:
    def test_forward_shapes(self, rng):
        model = make_ple(rng)
        outputs = model.forward_all(Tensor(rng.normal(size=(4, 6))))
        assert all(out.shape == (4,) for out in outputs.values())

    def test_single_level_runs(self, rng):
        model = make_ple(rng, levels=1)
        assert model.num_levels == 1
        out = model.forward(Tensor(rng.normal(size=(3, 6))), "a")
        assert out.shape == (3,)

    def test_parameter_partition(self, rng):
        model = make_ple(rng)
        shared = {id(p) for p in model.shared_parameters()}
        task_a = {id(p) for p in model.task_specific_parameters("a")}
        task_b = {id(p) for p in model.task_specific_parameters("b")}
        everything = {id(p) for p in model.parameters()}
        assert shared.isdisjoint(task_a) and shared.isdisjoint(task_b)
        assert task_a.isdisjoint(task_b)
        assert shared | task_a | task_b == everything

    def test_shared_experts_receive_both_tasks_gradients(self, rng):
        model = make_ple(rng)
        x = Tensor(rng.normal(size=(4, 6)))
        for task in ("a", "b"):
            model.zero_grad()
            (model.forward(x, task) ** 2).sum().backward()
            grads = [p.grad for p in model.shared_parameters()]
            assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_final_level_private_experts_isolated(self, rng):
        """Only the final level's private experts are task-exclusive: lower
        levels feed every task through the shared gates (real PLE wiring)."""
        model = make_ple(rng)
        x = Tensor(rng.normal(size=(4, 6)))
        model.zero_grad()
        (model.forward(x, "a") ** 2).sum().backward()
        for param in model.task_experts["b"][-1].parameters():
            assert param.grad is None
        # Lower-level private experts of b DO receive a's gradient.
        lower = [p.grad for p in model.task_experts["b"][0].parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in lower)

    def test_no_shared_gate_at_final_level(self, rng):
        model = make_ple(rng, levels=2)
        assert len(model.shared_gates) == 1
        single = make_ple(rng, levels=1)
        assert len(single.shared_gates) == 0

    def test_trains_end_to_end(self, rng):
        from repro.balancers import EqualWeighting
        from repro.data import ArrayDataset, TaskSpec
        from repro.nn.functional import mse_loss
        from repro.training import MTLTrainer

        x = rng.normal(size=(40, 6))
        w = rng.normal(size=6)
        dataset = ArrayDataset(x, {"a": x @ w, "b": x @ -w})
        tasks = [TaskSpec("a", mse_loss, {}, {}), TaskSpec("b", mse_loss, {}, {})]
        model = make_ple(rng)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), lr=1e-2, seed=0)
        history = trainer.fit(dataset, epochs=8, batch_size=16)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PLE([], 1, 1, {"a": LinearHead(8, 1, rng)}, [], rng)
        with pytest.raises(ValueError):
            make_ple(rng, levels=2).__class__(
                [lambda: MLPEncoder(6, [8], rng)],
                0,
                1,
                {"a": LinearHead(8, 1, rng)},
                [6],
                rng,
            )
        with pytest.raises(ValueError):
            PLE(
                [lambda: MLPEncoder(6, [8], rng)],
                1,
                1,
                {"a": LinearHead(8, 1, rng)},
                [6, 8],
                rng,
            )
