"""Tests for encoders and heads."""

import numpy as np
import pytest

from repro.arch import (
    BSTEncoder,
    ConvEncoder,
    DenseHead,
    GCNEncoder,
    LinearHead,
    MLPEncoder,
    MLPHead,
    TabularEncoder,
)
from repro.nn import Tensor, normalize_adjacency


class TestMLPEncoder:
    def test_shape(self, rng):
        encoder = MLPEncoder(5, [10, 7], rng)
        assert encoder(Tensor(rng.normal(size=(3, 5)))).shape == (3, 7)
        assert encoder.out_features == 7

    def test_accepts_ndarray(self, rng):
        encoder = MLPEncoder(5, [4], rng)
        assert encoder(rng.normal(size=(2, 5))).shape == (2, 4)

    def test_stages_exposed(self, rng):
        encoder = MLPEncoder(5, [10, 7], rng)
        assert len(encoder.stages) == 2

    def test_empty_widths_rejected(self, rng):
        with pytest.raises(ValueError):
            MLPEncoder(5, [], rng)


class TestTabularEncoder:
    def test_shape(self, rng):
        encoder = TabularEncoder([10, 20, 5], 4, [16, 8], rng)
        fields = rng.integers(0, 5, size=(6, 3))
        assert encoder(fields).shape == (6, 8)

    def test_rejects_wrong_field_count(self, rng):
        encoder = TabularEncoder([10, 20], 4, [8], rng)
        with pytest.raises(ValueError):
            encoder(np.zeros((3, 3), dtype=int))

    def test_embeddings_differ_per_field(self, rng):
        encoder = TabularEncoder([5, 5], 4, [8], rng)
        assert not np.allclose(
            encoder.embeddings[0].weight.data, encoder.embeddings[1].weight.data
        )


class TestConvEncoder:
    def test_downsampling(self, rng):
        encoder = ConvEncoder(3, [8, 16], rng)
        out = encoder(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 16, 4, 4)
        assert encoder.downsample_factor == 4

    def test_selective_pooling(self, rng):
        encoder = ConvEncoder(3, [8, 16], rng, pools=[True, False])
        out = encoder(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 16, 4, 4)
        assert encoder.downsample_factor == 2

    def test_pools_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ConvEncoder(3, [8, 16], rng, pools=[True])


class TestGCNEncoder:
    def test_graph_embedding_shape(self, rng):
        encoder = GCNEncoder(5, [8, 6], rng)
        nodes = rng.normal(size=(3, 4, 5))
        adjacency = normalize_adjacency(np.ones((3, 4, 4)) - np.eye(4))
        mask = np.ones((3, 4))
        out = encoder((nodes, adjacency, mask))
        assert out.shape == (3, 6)

    def test_padding_invariance(self, rng):
        """Adding padded nodes must not change the graph embedding."""
        encoder = GCNEncoder(2, [4], rng)
        nodes = rng.normal(size=(1, 2, 2))
        adj = np.zeros((1, 2, 2))
        adj[0, 0, 1] = adj[0, 1, 0] = 1.0
        out_small = encoder((nodes, normalize_adjacency(adj), np.ones((1, 2))))
        padded_nodes = np.concatenate([nodes, np.zeros((1, 2, 2))], axis=1)
        padded_adj = np.zeros((1, 4, 4))
        padded_adj[0, :2, :2] = adj[0]
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        out_padded = encoder((padded_nodes, normalize_adjacency(padded_adj), mask))
        np.testing.assert_allclose(out_small.data, out_padded.data, atol=1e-10)

    def test_empty_hidden_rejected(self, rng):
        with pytest.raises(ValueError):
            GCNEncoder(5, [], rng)


class TestBSTEncoder:
    def test_shape(self, rng):
        encoder = BSTEncoder(num_users=10, num_items=20, seq_len=4, dim=8, out_features=6, rng=rng)
        x = np.zeros((3, 6), dtype=int)
        assert encoder(x).shape == (3, 6)

    def test_rejects_wrong_width(self, rng):
        encoder = BSTEncoder(10, 20, 4, 8, 6, rng)
        with pytest.raises(ValueError):
            encoder(np.zeros((3, 5), dtype=int))

    def test_user_embedding_matters(self, rng):
        encoder = BSTEncoder(10, 20, 2, 8, 6, rng)
        a = np.array([[0, 1, 2, 3]])
        b = np.array([[5, 1, 2, 3]])  # same items, different user
        assert not np.allclose(encoder(a).data, encoder(b).data)

    def test_history_order_matters_via_positions(self, rng):
        encoder = BSTEncoder(10, 20, 2, 8, 6, rng)
        encoder.position.data[:] = rng.normal(size=encoder.position.data.shape)
        a = np.array([[0, 1, 2, 3]])
        b = np.array([[0, 1, 3, 2]])  # swapped history
        assert not np.allclose(encoder(a).data, encoder(b).data)


class TestHeads:
    def test_linear_head_squeezes_single_output(self, rng):
        head = LinearHead(6, 1, rng)
        assert head(Tensor(rng.normal(size=(4, 6)))).shape == (4,)

    def test_linear_head_keeps_multi_output(self, rng):
        head = LinearHead(6, 3, rng)
        assert head(Tensor(rng.normal(size=(4, 6)))).shape == (4, 3)

    def test_mlp_head(self, rng):
        head = MLPHead(6, [8], 2, rng)
        assert head(Tensor(rng.normal(size=(4, 6)))).shape == (4, 2)
        head1 = MLPHead(6, [8], 1, rng)
        assert head1(Tensor(rng.normal(size=(4, 6)))).shape == (4,)

    def test_dense_head_upsamples(self, rng):
        head = DenseHead(8, 4, 3, scale=4, rng=rng)
        out = head(Tensor(rng.normal(size=(2, 8, 4, 4))))
        assert out.shape == (2, 3, 16, 16)

    def test_dense_head_no_upsample(self, rng):
        head = DenseHead(8, 4, 1, scale=1, rng=rng)
        assert head(Tensor(rng.normal(size=(2, 8, 4, 4)))).shape == (2, 1, 4, 4)
