"""Tests for the five MTL architectures: forward, parameter split, gradients."""

import numpy as np
import pytest

from repro.arch import (
    CGC,
    CrossStitch,
    HardParameterSharing,
    LinearHead,
    MLPEncoder,
    MMoE,
    MTAN,
    VectorAttention,
)
from repro.nn import Linear, ReLU, Sequential, Tensor


def make_hps(rng, tasks=("a", "b")):
    encoder = MLPEncoder(6, [10, 8], rng)
    heads = {t: LinearHead(8, 1, rng) for t in tasks}
    return HardParameterSharing(encoder, heads)


def make_mmoe(rng, tasks=("a", "b")):
    return MMoE(
        lambda: MLPEncoder(6, [10, 8], rng),
        num_experts=3,
        heads={t: LinearHead(8, 1, rng) for t in tasks},
        gate_in_features=6,
        rng=rng,
    )


def make_cross_stitch(rng, tasks=("a", "b")):
    return CrossStitch(
        [
            lambda: Sequential(Linear(6, 10, rng), ReLU()),
            lambda: Sequential(Linear(10, 8, rng), ReLU()),
        ],
        {t: LinearHead(8, 1, rng) for t in tasks},
    )


def make_mtan(rng, tasks=("a", "b")):
    stages = [
        Sequential(Linear(6, 10, rng), ReLU()),
        Sequential(Linear(10, 8, rng), ReLU()),
    ]
    factories = [
        lambda: VectorAttention(10, rng),
        lambda: VectorAttention(8, rng, previous_dim=10),
    ]
    return MTAN(stages, factories, {t: LinearHead(8, 1, rng) for t in tasks})


def make_cgc(rng, tasks=("a", "b")):
    return CGC(
        lambda: MLPEncoder(6, [10, 8], rng),
        num_shared_experts=2,
        num_task_experts=1,
        heads={t: LinearHead(8, 1, rng) for t in tasks},
        gate_in_features=6,
        rng=rng,
    )


FACTORIES = {
    "hps": make_hps,
    "mmoe": make_mmoe,
    "cross_stitch": make_cross_stitch,
    "mtan": make_mtan,
    "cgc": make_cgc,
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestCommonBehaviour:
    def test_forward_all_shapes(self, name, rng):
        model = FACTORIES[name](rng)
        outputs = model.forward_all(Tensor(rng.normal(size=(5, 6))))
        assert set(outputs) == {"a", "b"}
        assert all(out.shape == (5,) for out in outputs.values())

    def test_forward_single_matches_forward_all(self, name, rng):
        model = FACTORIES[name](rng)
        x = Tensor(rng.normal(size=(4, 6)))
        all_outputs = model.forward_all(x)
        single = model.forward(x, "a")
        np.testing.assert_allclose(single.data, all_outputs["a"].data)

    def test_unknown_task_raises(self, name, rng):
        model = FACTORIES[name](rng)
        with pytest.raises(KeyError):
            model.forward(Tensor(rng.normal(size=(2, 6))), "missing")

    def test_parameter_partition_is_disjoint_and_complete(self, name, rng):
        model = FACTORIES[name](rng)
        shared = {id(p) for p in model.shared_parameters()}
        task_a = {id(p) for p in model.task_specific_parameters("a")}
        task_b = {id(p) for p in model.task_specific_parameters("b")}
        every = {id(p) for p in model.parameters()}
        assert shared.isdisjoint(task_a)
        assert shared.isdisjoint(task_b)
        assert task_a.isdisjoint(task_b)
        assert shared | task_a | task_b == every

    def test_shared_parameters_receive_gradient_from_each_task(self, name, rng):
        model = FACTORIES[name](rng)
        x = Tensor(rng.normal(size=(4, 6)))
        for task in ("a", "b"):
            model.zero_grad()
            (model.forward(x, task) ** 2).sum().backward()
            grads = [p.grad for p in model.shared_parameters()]
            assert any(g is not None and np.abs(g).sum() > 0 for g in grads), (name, task)

    def test_other_tasks_parameters_untouched(self, name, rng):
        model = FACTORIES[name](rng)
        x = Tensor(rng.normal(size=(4, 6)))
        model.zero_grad()
        (model.forward(x, "a") ** 2).sum().backward()
        for param in model.task_specific_parameters("b"):
            assert param.grad is None

    def test_state_dict_roundtrip(self, name, rng):
        model = FACTORIES[name](rng)
        state = model.state_dict()
        x = Tensor(rng.normal(size=(3, 6)))
        before = model.forward(x, "a").data.copy()
        for param in model.parameters():
            param.data = param.data + 1.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.forward(x, "a").data, before)

    def test_duplicate_task_names_rejected(self, name, rng):
        from repro.arch.base import MTLModel

        with pytest.raises(ValueError):
            MTLModel(["a", "a"])


SHARED_FEATURE_ARCHS = ("hps", "mmoe", "cross_stitch", "cgc")


class TestSharedFeatureCut:
    """Contract backing ``MTLTrainer(grad_space="features")``: the cut must
    reconstruct forward_all exactly and every shared parameter must lie
    strictly upstream of it."""

    @pytest.mark.parametrize("name", SHARED_FEATURE_ARCHS)
    def test_forward_heads_matches_forward_all(self, name, rng):
        model = FACTORIES[name](rng)
        x = Tensor(rng.normal(size=(4, 6)))
        outputs = model.forward_heads(model.shared_features(x), x)
        reference = model.forward_all(x)
        for task in ("a", "b"):
            np.testing.assert_allclose(outputs[task].data, reference[task].data)

    @pytest.mark.parametrize("name", SHARED_FEATURE_ARCHS)
    def test_every_shared_parameter_upstream_of_cut(self, name, rng):
        model = FACTORIES[name](rng)
        x = Tensor(rng.normal(size=(4, 6)))
        model.zero_grad()
        features = model.shared_features(x)
        features.backward(np.ones(features.shape))
        for param in model.shared_parameters():
            assert param.grad is not None and np.abs(param.grad).sum() > 0

    def test_mtan_has_no_single_cut(self, rng):
        model = make_mtan(rng)
        with pytest.raises(NotImplementedError):
            model.shared_features(Tensor(rng.normal(size=(2, 6))))
        with pytest.raises(NotImplementedError):
            model.forward_heads(Tensor(rng.normal(size=(2, 8))))

    @pytest.mark.parametrize("name", ("mmoe", "cgc"))
    def test_gated_archs_need_raw_input_for_heads(self, name, rng):
        model = FACTORIES[name](rng)
        features = model.shared_features(Tensor(rng.normal(size=(3, 6))))
        with pytest.raises(ValueError, match="raw input"):
            model.forward_heads(features)


class TestHPSSpecific:
    def test_shared_features_exposed(self, rng):
        model = make_hps(rng)
        features = model.shared_features(Tensor(rng.normal(size=(3, 6))))
        assert features.shape == (3, 8)

    def test_forward_heads_on_detached_features(self, rng):
        model = make_hps(rng)
        x = Tensor(rng.normal(size=(3, 6)))
        features = model.shared_features(x)
        outputs = model.forward_heads(Tensor(features.data))
        reference = model.forward_all(x)
        np.testing.assert_allclose(outputs["a"].data, reference["a"].data)

    def test_encoder_is_exactly_shared(self, rng):
        model = make_hps(rng)
        assert len(model.shared_parameters()) == len(model.encoder.parameters())


class TestMMoESpecific:
    def test_gate_mixes_experts(self, rng):
        """Zeroing a gate's logits yields the uniform expert mixture."""
        model = make_mmoe(rng)
        x = Tensor(rng.normal(size=(4, 6)))
        gate = model.gates["a"]
        gate.weight.data[:] = 0.0
        gate.bias.data[:] = 0.0
        expert_outputs = [expert(x) for expert in model.experts]
        mixed = model._mix(x, "a", expert_outputs)
        uniform = sum(e.data for e in expert_outputs) / len(expert_outputs)
        np.testing.assert_allclose(mixed.data, uniform)

    def test_expert_count(self, rng):
        model = make_mmoe(rng)
        assert len(model.experts) == 3

    def test_invalid_expert_count(self, rng):
        with pytest.raises(ValueError):
            MMoE(lambda: MLPEncoder(6, [8], rng), 0, {"a": LinearHead(8, 1, rng)}, 6, rng)


class TestCrossStitchSpecific:
    def test_identity_stitch_decouples_columns(self, rng):
        """With identity stitch matrices each task only sees its own column."""
        model = CrossStitch(
            [lambda: Sequential(Linear(6, 8, rng), ReLU())],
            {t: LinearHead(8, 1, rng) for t in ("a", "b")},
            stitch_self_weight=1.0,
        )
        for stitch in model.stitches:
            stitch.data[:] = np.eye(2)
        x = Tensor(rng.normal(size=(3, 6)))
        column_out = model.columns["a"][0](x)
        full = model._trunk(x)["a"]
        np.testing.assert_allclose(full.data, column_out.data)

    def test_stitch_initialization(self, rng):
        model = make_cross_stitch(rng)
        stitch = model.stitches[0].data
        np.testing.assert_allclose(np.diag(stitch), [0.9, 0.9])
        np.testing.assert_allclose(stitch.sum(axis=1), [1.0, 1.0])

    def test_columns_coupled_through_stitch(self, rng):
        """Task b's loss reaches task a's column parameters."""
        model = make_cross_stitch(rng)
        x = Tensor(rng.normal(size=(3, 6)))
        model.zero_grad()
        (model.forward(x, "b") ** 2).sum().backward()
        a_column_grads = [p.grad for p in model.columns["a"].parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in a_column_grads)

    def test_invalid_stitch_weight(self, rng):
        with pytest.raises(ValueError):
            CrossStitch([lambda: Linear(2, 2, rng)], {"a": LinearHead(2, 1, rng)}, 0.0)


class TestMTANSpecific:
    def test_attention_masks_bounded(self, rng):
        attention = VectorAttention(4, rng)
        stage_out = Tensor(rng.normal(size=(3, 4)))
        attended = attention(stage_out, stage_out)
        ratio = attended.data / np.where(stage_out.data == 0, 1.0, stage_out.data)
        assert np.all(ratio >= -1e-9) and np.all(ratio <= 1.0 + 1e-9)

    def test_mismatched_factories_rejected(self, rng):
        with pytest.raises(ValueError):
            MTAN(
                [Sequential(Linear(6, 8, rng))],
                [],
                {"a": LinearHead(8, 1, rng)},
            )

    def test_backbone_is_exactly_shared(self, rng):
        model = make_mtan(rng)
        assert len(model.shared_parameters()) == len(model.backbone.parameters())


class TestCGCSpecific:
    def test_private_experts_isolated(self, rng):
        """Task a's loss never reaches task b's private experts."""
        model = make_cgc(rng)
        x = Tensor(rng.normal(size=(4, 6)))
        model.zero_grad()
        (model.forward(x, "a") ** 2).sum().backward()
        for param in model.task_experts["b"].parameters():
            assert param.grad is None

    def test_shared_experts_reached_by_both(self, rng):
        model = make_cgc(rng)
        x = Tensor(rng.normal(size=(4, 6)))
        for task in ("a", "b"):
            model.zero_grad()
            (model.forward(x, task) ** 2).sum().backward()
            grads = [p.grad for p in model.shared_experts.parameters()]
            assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_invalid_expert_counts(self, rng):
        with pytest.raises(ValueError):
            CGC(lambda: MLPEncoder(6, [8], rng), 0, 1, {"a": LinearHead(8, 1, rng)}, 6, rng)
