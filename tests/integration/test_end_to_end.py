"""End-to-end integration tests across the full stack.

These exercise the public API exactly as the examples and benchmark harness
do: build a benchmark, train under a balancer, evaluate, and check the
qualitative properties the paper's evaluation depends on.
"""

import numpy as np
import pytest

from repro import MoCoGrad, MTLTrainer, create_balancer, train_stl_all
from repro.balancers import EqualWeighting
from repro.data import (
    make_aliexpress,
    make_cityscapes,
    make_movielens,
    make_officehome,
    make_qm9,
)
from repro.data.movielens import GENRES
from repro.data.qm9 import PROPERTIES
from repro.metrics import delta_m_from_results


class TestAliExpressEndToEnd:
    @pytest.fixture(scope="class")
    def trained(self):
        bench = make_aliexpress("ES", num_records=2000, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model, bench.tasks, MoCoGrad(seed=0), mode=bench.mode, lr=2e-3, seed=0
        )
        trainer.fit(bench.train, epochs=6, batch_size=128)
        return bench, trainer

    def test_learns_beyond_chance(self, trained):
        bench, trainer = trained
        metrics = trainer.evaluate(bench.test)
        assert metrics["CTR"]["auc"] > 0.58
        assert metrics["CTCVR"]["auc"] > 0.55

    def test_loss_decreased(self, trained):
        _, trainer = trained
        curve = trainer.history.average_loss_curve()
        assert curve[-1] < curve[0]


class TestMoCoGradBeatsPlainJointTrainingUnderConflict:
    def test_conflict_heavy_movielens(self):
        """On a low-relatedness (conflict-heavy) MovieLens instance,
        MoCoGrad's test RMSE should not be worse than plain joint training
        by any meaningful margin — and typically better."""
        bench = make_movielens(
            genres=GENRES[:3], records_per_genre=250, relatedness=0.05, seed=3
        )
        results = {}
        for name in ("equal", "mocograd"):
            model = bench.build_model("hps", np.random.default_rng(1))
            trainer = MTLTrainer(
                model,
                bench.tasks,
                create_balancer(name, seed=0),
                mode=bench.mode,
                lr=3e-3,
                seed=1,
            )
            trainer.fit(bench.train, epochs=5, batch_size=48)
            metrics = trainer.evaluate(bench.test)
            results[name] = np.mean([m["rmse"] for m in metrics.values()])
        assert results["mocograd"] <= results["equal"] * 1.05


class TestQM9EndToEnd:
    def test_multi_input_training_improves(self):
        bench = make_qm9(properties=PROPERTIES[:3], molecules_per_task=100, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model, bench.tasks, MoCoGrad(seed=0), mode=bench.mode, lr=3e-3, seed=0
        )
        before = trainer.evaluate(bench.test)
        trainer.fit(bench.train, epochs=8, batch_size=32)
        after = trainer.evaluate(bench.test)
        before_avg = np.mean([m["mae"] for m in before.values()])
        after_avg = np.mean([m["mae"] for m in after.values()])
        assert after_avg < before_avg


class TestDeltaMPipeline:
    def test_delta_m_computable_from_real_runs(self):
        bench = make_aliexpress("NL", num_records=600, seed=0)
        stl = train_stl_all(bench, epochs=2, batch_size=64, lr=2e-3, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model, bench.tasks, EqualWeighting(), mode=bench.mode, lr=2e-3, seed=0
        )
        trainer.fit(bench.train, epochs=2, batch_size=64)
        mtl = trainer.evaluate(bench.test)
        directions = {t.name: dict(t.higher_is_better) for t in bench.tasks}
        delta = delta_m_from_results(mtl, stl, directions)
        assert np.isfinite(delta)


class TestArchitectureGeneralization:
    @pytest.mark.parametrize("arch", ["hps", "mmoe", "cgc", "cross_stitch", "mtan"])
    def test_mocograd_trains_every_architecture(self, arch):
        bench = make_cityscapes(num_scenes=24, seed=0)
        model = bench.build_model(arch, np.random.default_rng(0))
        trainer = MTLTrainer(
            model, bench.tasks, MoCoGrad(seed=0), mode=bench.mode, lr=3e-3, seed=0
        )
        history = trainer.fit(bench.train, epochs=2, batch_size=8)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0]


class TestAllBalancersOnRealBenchmark:
    @pytest.mark.parametrize(
        "method",
        [
            "equal", "dwa", "mgda", "pcgrad", "graddrop", "gradvac", "cagrad",
            "imtl", "rlw", "nashmtl", "mocograd",
            # extension baselines
            "gradnorm", "uncertainty",
        ],
    )
    def test_method_completes_and_is_finite(self, method):
        bench = make_officehome(num_classes=4, samples_per_domain=40, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model,
            bench.tasks,
            create_balancer(method, seed=0),
            mode=bench.mode,
            lr=3e-3,
            seed=0,
        )
        history = trainer.fit(bench.train, epochs=1, batch_size=16)
        assert np.all(np.isfinite(history.average_loss_curve()))
        metrics = trainer.evaluate(bench.test)
        assert all(0.0 <= m["accuracy"] <= 1.0 for m in metrics.values())
