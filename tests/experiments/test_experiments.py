"""Tests for the experiment runner, reporting, and registry (tiny configs)."""

import numpy as np
import pytest

from repro.data import make_aliexpress
from repro.experiments import (
    METHODS,
    REGISTRY,
    RunConfig,
    format_percent,
    format_table,
    run_method,
    run_methods,
)


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.0048) == "+0.48%"
        assert format_percent(-0.011) == "-1.10%"

    def test_format_table_alignment(self):
        table = format_table(["m", "value"], [["equal", 0.5], ["mocograd", 0.75]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        table = format_table(["a"], [[1.0]], title="Table X")
        assert table.startswith("Table X")

    def test_format_table_float_digits(self):
        table = format_table(["a"], [[0.123456]], float_digits=2)
        assert "0.12" in table


class TestRunner:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_aliexpress("ES", num_records=300, seed=0)

    def test_method_list_matches_paper(self):
        assert METHODS == (
            "equal",
            "dwa",
            "mgda",
            "pcgrad",
            "graddrop",
            "gradvac",
            "cagrad",
            "imtl",
            "rlw",
            "nashmtl",
            "mocograd",
        )

    def test_run_method_returns_metrics(self, bench):
        config = RunConfig(epochs=1, batch_size=64, lr=2e-3, seed=0)
        metrics = run_method(bench, "mocograd", config)
        assert set(metrics) == {"CTR", "CTCVR"}

    def test_run_method_with_trainer(self, bench):
        config = RunConfig(epochs=1, batch_size=64, seed=0)
        metrics, trainer = run_method(bench, "equal", config, return_trainer=True)
        assert trainer.step_count > 0

    def test_run_methods_includes_stl_and_delta(self, bench):
        config = RunConfig(epochs=1, batch_size=64, seed=0)
        results = run_methods(bench, methods=("equal",), config=config)
        assert set(results) == {"stl", "equal"}
        assert results["stl"].delta_m == 0.0
        assert results["equal"].delta_m is not None

    def test_balancer_kwargs_forwarded(self, bench):
        config = RunConfig(
            epochs=1, batch_size=64, seed=0, balancer_kwargs={"calibration": 0.5}
        )
        metrics = run_method(bench, "mocograd", config)
        assert set(metrics) == {"CTR", "CTCVR"}

    def test_stl_metrics_reusable(self, bench):
        config = RunConfig(epochs=1, batch_size=64, seed=0)
        stl = {"CTR": {"auc": 0.6}, "CTCVR": {"auc": 0.7}}
        results = run_methods(bench, methods=("equal",), config=config, stl_metrics=stl)
        assert results["stl"].metrics == stl


class TestRegistry:
    def test_all_tables_and_figures_present(self):
        assert set(REGISTRY) == {"table1", "table2", "table3", "table4", "fig5"}

    def test_registry_modules_have_interface(self):
        for module, _ in REGISTRY.values():
            assert hasattr(module, "run")
            assert hasattr(module, "format_result")
            assert hasattr(module, "PRESETS")
            assert {"quick", "full"} <= set(module.PRESETS)
