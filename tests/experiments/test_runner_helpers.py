"""Tests for the runner's seed-averaging helpers."""

import numpy as np
import pytest

from repro.data import make_synthetic_mtl
from repro.experiments import RunConfig, average_metric_dicts, run_method, run_stl_baseline


class TestAverageMetricDicts:
    def test_single_run_identity(self):
        run = {"t": {"rmse": 1.5, "mae": 1.0}}
        assert average_metric_dicts([run]) == run

    def test_mean_across_runs(self):
        runs = [
            {"t": {"rmse": 1.0}},
            {"t": {"rmse": 3.0}},
        ]
        assert average_metric_dicts(runs)["t"]["rmse"] == pytest.approx(2.0)

    def test_multiple_tasks_and_metrics(self):
        runs = [
            {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 0.0, "y": 0.0}},
            {"a": {"x": 3.0, "y": 4.0}, "b": {"x": 2.0, "y": 2.0}},
        ]
        averaged = average_metric_dicts(runs)
        assert averaged["a"] == {"x": 2.0, "y": 3.0}
        assert averaged["b"] == {"x": 1.0, "y": 1.0}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metric_dicts([])


class TestSeedAveraging:
    @pytest.fixture(scope="class")
    def bench(self):
        return make_synthetic_mtl(num_tasks=2, num_samples=200, seed=0)

    def test_multi_seed_differs_from_single(self, bench):
        single = run_method(bench, "equal", RunConfig(epochs=2, batch_size=32, seed=0, num_seeds=1))
        double = run_method(bench, "equal", RunConfig(epochs=2, batch_size=32, seed=0, num_seeds=2))
        # Averaging a second (different-seed) run must change the numbers.
        assert single["task0"]["rmse"] != double["task0"]["rmse"]

    def test_deterministic_given_seed_and_count(self, bench):
        config = RunConfig(epochs=2, batch_size=32, seed=3, num_seeds=2)
        a = run_method(bench, "equal", config)
        b = run_method(bench, "equal", config)
        assert a == b

    def test_stl_baseline_structure(self, bench):
        config = RunConfig(epochs=1, batch_size=32, seed=0, num_seeds=1)
        stl = run_stl_baseline(bench, config)
        assert set(stl) == {"task0", "task1"}
        assert "rmse" in stl["task0"]


class TestMethodResult:
    def test_history_is_an_instance_field(self):
        """history must be a dataclass field, not a shared class attribute
        (the missing-annotation bug made every instance alias one value)."""
        from dataclasses import fields

        from repro.experiments import MethodResult

        assert "history" in {f.name for f in fields(MethodResult)}
        a = MethodResult("equal", {}, history="h1")
        b = MethodResult("mgda", {})
        assert a.history == "h1"
        assert b.history is None

    def test_run_methods_populates_history_and_telemetry(self):
        from repro.data import make_synthetic_mtl
        from repro.experiments import run_methods
        from repro.training import History

        bench = make_synthetic_mtl(num_tasks=2, num_samples=120, seed=0)
        config = RunConfig(epochs=2, batch_size=32, seed=0, num_seeds=1)
        results = run_methods(bench, methods=("equal",), config=config)
        result = results["equal"]
        assert isinstance(result.history, History)
        assert result.history.num_epochs == 2
        assert "step" in result.telemetry["spans"]
        assert "step/backward" in result.telemetry["spans"]
        counter_names = {m["name"] for m in result.telemetry["metrics"]}
        assert "balancer_conflicts_total" in counter_names
