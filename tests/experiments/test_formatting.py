"""Tests for the per-experiment ``format_result`` functions (pure formatting)."""

import pytest

from repro.experiments import (
    fig5_officehome,
    table1_aliexpress,
    table2_regression,
    table3_nyuv2,
    table4_cityscapes,
)


class TestTable1Formatting:
    def _result(self):
        columns = [f"{c}_{t}" for c in ("ES", "FR", "NL", "US") for t in ("CTR", "CTCVR")]
        return {
            "auc": {
                "stl": {c: 0.75 for c in columns},
                "mocograd": {c: 0.76 for c in columns},
            },
            "delta_m": {"stl": 0.0, "mocograd": 0.0133},
            "preset": "quick",
        }

    def test_layout(self):
        text = table1_aliexpress.format_result(self._result())
        assert "Table I" in text
        assert "ES_CTR" in text and "US_CTCVR" in text
        assert "+1.33%" in text
        assert "mocograd" in text

    def test_row_count(self):
        text = table1_aliexpress.format_result(self._result())
        # title + header + separator + 2 method rows
        assert len(text.splitlines()) == 5


class TestTable2Formatting:
    def test_layout(self):
        result = {
            "preset": "quick",
            "qm9": {"stl": {"avg": 0.8, "delta_m": 0.0}, "equal": {"avg": 0.7, "delta_m": 0.05}},
            "movielens": {"stl": {"avg": 1.0, "delta_m": 0.0}, "equal": {"avg": 0.9, "delta_m": 0.1}},
        }
        text = table2_regression.format_result(result)
        assert "QM9 Avg MAE" in text
        assert "+5.00%" in text and "+10.00%" in text


class TestTable3And4Formatting:
    def test_table3_columns(self):
        metrics = {
            "segmentation": {"miou": 0.5, "pixacc": 0.7},
            "depth": {"abs_err": 0.4, "rel_err": 0.2},
            "normal": {
                "mean": 23.0,
                "median": 17.0,
                "within_11.25": 0.3,
                "within_22.5": 0.5,
                "within_30": 0.7,
            },
        }
        result = {"metrics": {"stl": metrics}, "delta_m": {"stl": 0.0}, "preset": "quick"}
        text = table3_nyuv2.format_result(result)
        assert "nor.within_11.25" in text
        assert "Table III" in text

    def test_table4_columns(self):
        metrics = {
            "segmentation": {"miou": 0.7, "pixacc": 0.9},
            "depth": {"abs_err": 0.01, "rel_err": 20.0},
        }
        result = {"metrics": {"stl": metrics}, "delta_m": {"stl": 0.0}, "preset": "quick"}
        text = table4_cityscapes.format_result(result)
        assert "Table IV" in text
        assert "dep.rel_err" in text


class TestFig5Formatting:
    def test_layout(self):
        domains = ("Art", "Clipart", "Product", "RealWorld")
        result = {
            "accuracy": {"stl": {d: 0.8 for d in domains}},
            "avg_accuracy": {"stl": 0.8},
            "delta_m": {"stl": 0.0},
            "preset": "quick",
        }
        text = fig5_officehome.format_result(result)
        assert "Avg ACC" in text
        for domain in domains:
            assert domain in text


class TestMetricColumnOrders:
    def test_table3_matches_paper_order(self):
        tasks = [task for task, _ in table3_nyuv2.METRIC_COLUMNS]
        assert tasks == (
            ["segmentation"] * 2 + ["depth"] * 2 + ["normal"] * 5
        )

    def test_table4_matches_paper_order(self):
        assert table4_cityscapes.METRIC_COLUMNS[0] == ("segmentation", "miou")
        assert table4_cityscapes.METRIC_COLUMNS[-1] == ("depth", "rel_err")
