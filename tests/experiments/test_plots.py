"""Tests for the ASCII plotting utilities."""

import numpy as np
import pytest

from repro.experiments import ascii_bar_chart, ascii_line_chart, ascii_scatter


class TestScatter:
    def test_dimensions(self):
        chart = ascii_scatter([1, 2, 3], [1, 4, 9], width=30, height=8)
        lines = chart.split("\n")
        assert len(lines) == 10  # grid + separator + footer
        assert all(len(line) == 30 for line in lines[:8])

    def test_points_plotted(self):
        chart = ascii_scatter([0, 1], [0, 1], width=10, height=5)
        assert chart.count("*") == 2

    def test_extremes_at_corners(self):
        chart = ascii_scatter([0, 1], [0, 1], width=10, height=5)
        lines = chart.split("\n")
        assert lines[0][9] == "*"  # max x, max y → top right
        assert lines[4][0] == "*"  # min x, min y → bottom left

    def test_footer_ranges(self):
        chart = ascii_scatter([0.5, 2.5], [1.0, 3.0], x_label="GCD", y_label="TCI")
        assert "GCD: [0.5, 2.5]" in chart
        assert "TCI: [1, 3]" in chart

    def test_constant_values_safe(self):
        chart = ascii_scatter([1, 1, 1], [2, 2, 2])
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_scatter([], [])


class TestLineChart:
    def test_legend_and_markers(self):
        chart = ascii_line_chart({"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*=a" in chart
        assert "o=b" in chart
        assert "*" in chart and "o" in chart

    def test_decreasing_series_slopes_down(self):
        chart = ascii_line_chart({"loss": [10.0, 5.0, 1.0]}, width=12, height=6)
        lines = chart.split("\n")
        assert lines[0][0] == "*"  # highest value at x=0 (top-left)
        assert lines[5][11] == "*"  # lowest value at the end (bottom-right)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1, 2], "b": [1, 2, 3]})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1]})


class TestBarChart:
    def test_sorted_descending(self):
        chart = ascii_bar_chart({"low": 0.01, "high": 0.09})
        lines = chart.split("\n")
        assert lines[0].startswith("high")
        assert lines[1].startswith("low")

    def test_negative_bars_marked(self):
        chart = ascii_bar_chart({"up": 0.05, "down": -0.05})
        down_line = [line for line in chart.split("\n") if line.startswith("down")][0]
        assert "-" in down_line.split("|")[1]

    def test_unsorted_preserves_order(self):
        chart = ascii_bar_chart({"b": 0.1, "a": 0.9}, sort=False)
        assert chart.split("\n")[0].startswith("b")

    def test_custom_format(self):
        chart = ascii_bar_chart({"x": 0.5}, fmt="{:.1f}")
        assert "0.5" in chart

    def test_longest_bar_fills_width(self):
        chart = ascii_bar_chart({"big": 1.0, "small": 0.5}, width=20)
        big_line = chart.split("\n")[0]
        assert big_line.count("#") == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
