"""Tests for the results summarizer."""

from repro.experiments import ARTIFACT_ORDER, missing_results, summarize_results


class TestSummary:
    def test_missing_results_on_empty_dir(self, tmp_path):
        missing = missing_results(tmp_path)
        assert set(missing) == {identifier for identifier, _ in ARTIFACT_ORDER}

    def test_generated_files_detected(self, tmp_path):
        (tmp_path / "table1.txt").write_text("Table I rows\n")
        missing = missing_results(tmp_path)
        assert "table1" not in missing
        assert "table2" in missing

    def test_summary_includes_contents_in_order(self, tmp_path):
        (tmp_path / "fig1.txt").write_text("FIG1 CONTENT\n")
        (tmp_path / "table4.txt").write_text("TABLE4 CONTENT\n")
        report = summarize_results(tmp_path)
        assert "FIG1 CONTENT" in report
        assert "TABLE4 CONTENT" in report
        assert report.index("FIG1 CONTENT") < report.index("TABLE4 CONTENT")

    def test_missing_marker_rendered(self, tmp_path):
        report = summarize_results(tmp_path)
        assert "not generated" in report

    def test_missing_sections_omittable(self, tmp_path):
        report = summarize_results(tmp_path, include_missing=False)
        assert "not generated" not in report

    def test_artifact_order_matches_paper(self):
        identifiers = [identifier for identifier, _ in ARTIFACT_ORDER]
        assert identifiers.index("fig1") < identifiers.index("table1")
        assert identifiers.index("table4") < identifiers.index("fig5")
        assert identifiers.index("fig9") < identifiers.index("ablation_conflict_stress")
