"""Tests for the MoCoGrad algorithm (Algorithm 1, Eq. 8–9, Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import MoCoGrad, check_theorem1, create_balancer


def make_conflicting_grads():
    """Two strongly conflicting gradients in R²."""
    return np.array([[1.0, 0.2], [-1.0, 0.3]])


def make_aligned_grads():
    return np.array([[1.0, 0.2], [0.9, 0.3]])


class TestConstruction:
    def test_registered(self):
        assert isinstance(create_balancer("mocograd"), MoCoGrad)

    def test_default_lambda_is_paper_optimum(self):
        assert MoCoGrad().calibration == pytest.approx(0.12)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            MoCoGrad(calibration=0.0)
        with pytest.raises(ValueError):
            MoCoGrad(calibration=1.5)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            MoCoGrad(beta1=1.0)

    def test_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            MoCoGrad(momentum_update="sometimes")
        with pytest.raises(ValueError):
            MoCoGrad(momentum_source="mixed")

    def test_repr_mentions_hyperparameters(self):
        assert "0.12" in repr(MoCoGrad())


class TestFirstStep:
    def test_first_step_is_plain_sum(self):
        """Zero momentum ⇒ Eq. (8) undefined ⇒ first step falls back to Σg."""
        balancer = MoCoGrad(seed=0)
        grads = make_conflicting_grads()
        combined = balancer.balance(grads, np.ones(2))
        np.testing.assert_allclose(combined, grads.sum(axis=0))

    def test_momentum_initialized_after_first_step(self):
        balancer = MoCoGrad(beta1=0.9, seed=0)
        grads = make_conflicting_grads()
        balancer.balance(grads, np.ones(2))
        np.testing.assert_allclose(balancer.momentum, 0.1 * grads)


class TestCalibration:
    def test_aligned_tasks_untouched(self):
        balancer = MoCoGrad(seed=0)
        grads = make_aligned_grads()
        balancer.balance(grads, np.ones(2))  # builds momentum
        calibrated = balancer.calibrate(grads)
        np.testing.assert_allclose(calibrated, grads)

    def test_conflicting_task_calibrated_by_partner_momentum(self):
        lam = 0.5
        balancer = MoCoGrad(calibration=lam, beta1=0.9, seed=0)
        grads = make_conflicting_grads()
        balancer.balance(grads, np.ones(2))  # momentum ← 0.1 * grads
        momentum = balancer.momentum.copy()
        calibrated = balancer.calibrate(grads)
        # Eq. (8): ĝ_0 = g_0 + λ (‖g_1‖/‖m_1‖) m_1
        expected_0 = grads[0] + lam * (
            np.linalg.norm(grads[1]) / np.linalg.norm(momentum[1])
        ) * momentum[1]
        np.testing.assert_allclose(calibrated[0], expected_0)

    def test_calibration_magnitude_scales_with_partner_grad_norm(self):
        """The added term has norm exactly λ‖g_j‖ (momentum renormalized)."""
        lam = 0.3
        balancer = MoCoGrad(calibration=lam, seed=0)
        grads = make_conflicting_grads()
        balancer.balance(grads, np.ones(2))
        calibrated = balancer.calibrate(grads)
        added = calibrated[0] - grads[0]
        assert np.linalg.norm(added) == pytest.approx(lam * np.linalg.norm(grads[1]))

    def test_zero_partner_gradient_no_calibration(self):
        balancer = MoCoGrad(seed=0)
        grads = np.array([[1.0, 0.0], [0.0, 0.0]])
        balancer.balance(grads, np.ones(2))
        calibrated = balancer.calibrate(grads)
        np.testing.assert_allclose(calibrated, grads)

    def test_calibration_accumulates_over_partners(self):
        """With two conflicting partners, both add calibration terms."""
        lam = 0.2
        balancer = MoCoGrad(calibration=lam, seed=0)
        grads = np.array([[1.0, 0.0, 0.0], [-1.0, 0.2, 0.0], [-1.0, -0.2, 0.0]])
        balancer.balance(grads, np.ones(3))
        momentum = balancer.momentum.copy()
        calibrated = balancer.calibrate(grads)
        expected = grads[0].copy()
        for j in (1, 2):
            expected += lam * (np.linalg.norm(grads[j]) / np.linalg.norm(momentum[j])) * momentum[j]
        np.testing.assert_allclose(calibrated[0], expected)


class TestMomentumModes:
    def test_per_step_updates_once(self):
        balancer = MoCoGrad(momentum_update="per_step", beta1=0.5, seed=0)
        grads = make_aligned_grads()
        balancer.balance(grads, np.ones(2))
        np.testing.assert_allclose(balancer.momentum, 0.5 * grads)

    def test_per_pair_matches_per_step_for_two_tasks_first_update(self):
        """For K=2 each task has exactly one partner, so the literal
        Algorithm 1 updates each momentum once per step too."""
        g = make_conflicting_grads()
        per_step = MoCoGrad(momentum_update="per_step", seed=0)
        per_pair = MoCoGrad(momentum_update="per_pair", seed=0)
        per_step.balance(g, np.ones(2))
        per_pair.balance(g, np.ones(2))
        np.testing.assert_allclose(per_step.momentum, per_pair.momentum)

    def test_per_pair_decays_more_for_three_tasks(self):
        grads = np.ones((3, 4))
        per_step = MoCoGrad(momentum_update="per_step", beta1=0.5, seed=0)
        per_pair = MoCoGrad(momentum_update="per_pair", beta1=0.5, seed=0)
        per_step.balance(grads, np.ones(3))
        per_pair.balance(grads, np.ones(3))
        # per_pair applied the EMA twice per task (K−1 = 2 partners loops).
        assert np.linalg.norm(per_pair.momentum) > np.linalg.norm(per_step.momentum)

    def test_calibrated_momentum_source(self):
        balancer = MoCoGrad(momentum_source="calibrated", beta1=0.0, seed=0)
        grads = make_conflicting_grads()
        balancer.balance(grads, np.ones(2))  # first step: ĝ = g (no momentum)
        balancer.balance(grads, np.ones(2))
        # With beta1=0, momentum equals the latest calibrated gradients,
        # which differ from raw for conflicting tasks.
        assert not np.allclose(balancer.momentum, grads)


class TestStateManagement:
    def test_reset_clears_momentum(self):
        balancer = MoCoGrad(seed=0)
        balancer.balance(make_conflicting_grads(), np.ones(2))
        assert balancer.momentum is not None
        balancer.reset(2)
        assert balancer.momentum is None
        assert balancer.step_count == 0

    def test_task_count_mismatch_raises(self):
        balancer = MoCoGrad(seed=0)
        balancer.reset(2)
        with pytest.raises(ValueError):
            balancer.balance(np.ones((3, 4)), np.ones(3))

    def test_loss_shape_mismatch_raises(self):
        balancer = MoCoGrad(seed=0)
        with pytest.raises(ValueError):
            balancer.balance(np.ones((2, 4)), np.ones(3))

    def test_momentum_shape_mismatch_raises_instead_of_silent_reset(self):
        from repro.obs import Telemetry

        balancer = MoCoGrad(seed=0)
        balancer.telemetry = Telemetry()
        balancer.calibrate(make_conflicting_grads())
        momentum_before = balancer.momentum.copy()
        with pytest.raises(ValueError, match="reset\\(\\)"):
            balancer.calibrate(np.ones((2, 7)))
        # Momentum history survives the rejected call untouched.
        np.testing.assert_allclose(balancer.momentum, momentum_before)
        counter = balancer.telemetry.counter("mocograd_momentum_shape_mismatch_total")
        assert counter.value == 1
        # reset() is the documented recovery path.
        balancer.reset(2)
        balancer.calibrate(np.ones((2, 7)))
        assert balancer.momentum.shape == (2, 7)

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(7)
        grads = [rng.normal(size=(4, 20)) for _ in range(5)]
        results = []
        for _ in range(2):
            balancer = MoCoGrad(seed=13)
            balancer.reset(4)
            out = [balancer.balance(g, np.ones(4)) for g in grads]
            results.append(np.stack(out))
        np.testing.assert_allclose(results[0], results[1])


class TestTheorem1Property:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 5), st.integers(2, 10)),
            elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        ),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_calibrated_gradient_bounded(self, grads, lam):
        """Theorem 1: ‖Σ ĝ_i‖ ≤ K(1+λ)G at every step."""
        balancer = MoCoGrad(calibration=lam, seed=0)
        balancer.reset(grads.shape[0])
        for _ in range(3):
            calibrated = balancer.calibrate(grads)
            assert check_theorem1(calibrated, grads, lam)

    def test_bound_holds_over_long_run(self, rng):
        balancer = MoCoGrad(calibration=0.9, seed=0)
        balancer.reset(3)
        for _ in range(50):
            grads = rng.normal(size=(3, 30))
            calibrated = balancer.calibrate(grads)
            assert check_theorem1(calibrated, grads, 0.9)
