"""Tests for the balancer base class and registry."""

import numpy as np
import pytest

import repro.balancers  # noqa: F401 - triggers registration
from repro.core import (
    GradientBalancer,
    available_balancers,
    create_balancer,
    register_balancer,
)

EXPECTED = {
    "equal",
    "dwa",
    "mgda",
    "pcgrad",
    "graddrop",
    "gradvac",
    "cagrad",
    "imtl",
    "rlw",
    "nashmtl",
    "mocograd",
}


class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert EXPECTED <= set(available_balancers())

    def test_create_by_name(self):
        balancer = create_balancer("pcgrad", seed=3)
        assert balancer.name == "pcgrad"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            create_balancer("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_balancer("equal")
            class Duplicate(GradientBalancer):
                pass

    def test_kwargs_forwarded(self):
        balancer = create_balancer("mocograd", calibration=0.5)
        assert balancer.calibration == 0.5


class TestBaseValidation:
    def test_balance_not_implemented(self):
        with pytest.raises(NotImplementedError):
            GradientBalancer().balance(np.ones((2, 3)), np.ones(2))

    def test_check_inputs_rejects_1d_grads(self):
        balancer = create_balancer("equal")
        with pytest.raises(ValueError):
            balancer.balance(np.ones(5), np.ones(1))

    def test_check_inputs_autoresets(self):
        balancer = create_balancer("equal")
        balancer.balance(np.ones((3, 4)), np.ones(3))
        assert balancer.num_tasks == 3

    def test_reset_reseeds_rng(self):
        balancer = create_balancer("rlw", seed=5)
        balancer.reset(3)
        first = balancer.balance(np.eye(3), np.ones(3)).copy()
        balancer.reset(3)
        second = balancer.balance(np.eye(3), np.ones(3))
        np.testing.assert_allclose(first, second)
