"""Tests for the shared per-step pairwise-geometry cache (GradStats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import GradStats, cosine_similarity, is_conflicting
from repro.core import gradstats as gradstats_module


class TestProducts:
    def test_gram_is_one_gemm(self, rng):
        grads = rng.normal(size=(4, 9))
        stats = GradStats(grads)
        np.testing.assert_allclose(stats.gram, grads @ grads.T)

    def test_norms_match_linalg(self, rng):
        grads = rng.normal(size=(5, 7))
        stats = GradStats(grads)
        np.testing.assert_allclose(stats.norms, np.linalg.norm(grads, axis=1))
        np.testing.assert_allclose(stats.norms_sq, stats.norms**2)

    def test_cosine_matches_pairwise_diagnostic(self, rng):
        grads = rng.normal(size=(4, 6))
        stats = GradStats(grads)
        for i in range(4):
            for j in range(4):
                if i != j:
                    expected = cosine_similarity(grads[i], grads[j])
                    assert stats.cosine[i, j] == pytest.approx(expected)

    def test_cosine_diagonal_is_one_gcd_diagonal_zero(self, rng):
        stats = GradStats(rng.normal(size=(3, 8)))
        np.testing.assert_allclose(np.diag(stats.cosine), np.ones(3))
        np.testing.assert_allclose(np.diag(stats.gcd), np.zeros(3))

    def test_conflict_mask_matches_is_conflicting(self, rng):
        grads = rng.normal(size=(5, 6))
        stats = GradStats(grads)
        for i in range(5):
            for j in range(5):
                if i == j:
                    assert not stats.conflict_mask[i, j]
                else:
                    assert stats.conflict_mask[i, j] == is_conflicting(grads[i], grads[j])

    def test_conflict_counts(self):
        grads = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, -1.0]])
        pairs, conflicts = GradStats(grads).conflict_counts()
        assert pairs == 3
        assert conflicts == 2

    def test_conflict_counts_single_task(self):
        assert GradStats(np.ones((1, 4))).conflict_counts() == (0, 0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            GradStats(np.ones(5))


class TestZeroGradients:
    def test_zero_row_cosine_zero(self):
        grads = np.array([[1.0, 0.0], [0.0, 0.0]])
        stats = GradStats(grads)
        assert stats.cosine[0, 1] == 0.0
        assert stats.cosine[1, 0] == 0.0
        assert stats.gcd[0, 1] == pytest.approx(1.0)

    def test_zero_row_never_conflicts(self):
        grads = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 0.0]])
        mask = GradStats(grads).conflict_mask
        assert mask[0, 1] and mask[1, 0]
        assert not mask[2].any()
        assert not mask[:, 2].any()

    def test_all_zero_matrix(self):
        stats = GradStats(np.zeros((3, 4)))
        assert stats.conflict_counts() == (3, 0)
        np.testing.assert_allclose(np.diag(stats.cosine), np.ones(3))


class TestClamp:
    def test_cosine_clamped_against_gram_drift(self):
        """Floating-point drift in the GEMM can push |cos| past 1; the
        cache clamps so GCD stays inside Definition 3's [0, 2]."""
        stats = GradStats(np.array([[1.0, 0.0], [1.0, 0.0]]))
        drift = 1.0 + 1e-15
        stats._gram = np.array([[1.0, drift], [drift, 1.0]])
        assert stats.cosine[0, 1] == 1.0
        assert stats.gcd[0, 1] == 0.0

    def test_antiparallel_clamped(self):
        stats = GradStats(np.array([[2.0, 0.0], [-3.0, 0.0]]))
        stats._gram = np.array([[4.0, -6.0 * (1.0 + 1e-15)], [-6.0 * (1.0 + 1e-15), 9.0]])
        assert stats.cosine[0, 1] == -1.0
        assert stats.gcd[0, 1] == 2.0

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 8)),
            elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_gcd_always_in_range(self, grads):
        gcd = GradStats(grads).gcd
        assert np.all(gcd >= 0.0)
        assert np.all(gcd <= 2.0)


class TestLaziness:
    def test_construction_computes_nothing(self, monkeypatch):
        calls = []
        original = gradstats_module.gram_matrix
        monkeypatch.setattr(
            gradstats_module, "gram_matrix", lambda g: calls.append(1) or original(g)
        )
        stats = GradStats(np.ones((3, 5)))
        assert calls == []
        stats.gram
        assert calls == [1]

    def test_gram_computed_once(self, monkeypatch):
        calls = []
        original = gradstats_module.gram_matrix
        monkeypatch.setattr(
            gradstats_module, "gram_matrix", lambda g: calls.append(1) or original(g)
        )
        stats = GradStats(np.ones((3, 5)))
        stats.gram
        stats.cosine
        stats.conflict_mask
        stats.gcd
        assert calls == [1]

    def test_norms_do_not_force_gemm(self, monkeypatch):
        calls = []
        original = gradstats_module.gram_matrix
        monkeypatch.setattr(
            gradstats_module, "gram_matrix", lambda g: calls.append(1) or original(g)
        )
        stats = GradStats(np.ones((3, 5)))
        stats.norms
        stats.norms_sq
        stats.nonzero
        assert calls == []

    def test_repr_reports_computed_products(self):
        stats = GradStats(np.ones((2, 3)))
        assert "computed=[]" in repr(stats)
        stats.gram
        assert "gram" in repr(stats)
