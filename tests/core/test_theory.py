"""Tests for the theory module (Theorems 1–3, Corollary 1)."""

import numpy as np
import pytest

from repro.core import (
    MoCoGrad,
    calibrated_gradient_bound,
    corollary1_rate_exponent,
    decaying_schedule,
    regret,
    regret_bound,
    run_convex_descent,
)
from repro.balancers import EqualWeighting, PCGrad


def quadratic_two_task(offset=2.0):
    """Two convex quadratics with conflicting minimizers ±offset."""
    a = np.array([offset, 0.0])
    b = np.array([-offset, 0.5])

    def loss1(theta):
        return 0.5 * float(np.sum((theta - a) ** 2))

    def loss2(theta):
        return 0.5 * float(np.sum((theta - b) ** 2))

    def grad1(theta):
        return theta - a

    def grad2(theta):
        return theta - b

    return [grad1, grad2], [loss1, loss2], (a + b) / 2.0


class TestTheorem1Bound:
    def test_formula(self):
        assert calibrated_gradient_bound(3, 0.5, 2.0) == pytest.approx(9.0)

    def test_strictly_below_2kg(self):
        for lam in (0.1, 0.5, 1.0):
            assert calibrated_gradient_bound(4, lam, 1.0) <= 2 * 4 * 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrated_gradient_bound(0, 0.5, 1.0)
        with pytest.raises(ValueError):
            calibrated_gradient_bound(2, 0.0, 1.0)
        with pytest.raises(ValueError):
            calibrated_gradient_bound(2, 0.5, -1.0)


class TestTheorem2Convergence:
    def test_mocograd_descends_on_convex_problem(self):
        grads, losses, _ = quadratic_two_task()
        result = run_convex_descent(
            grads, losses, MoCoGrad(calibration=0.3, seed=0), np.array([5.0, 5.0]),
            step_size=0.2, steps=100,
        )
        total = result["total_loss"]
        # Early steps may wiggle while the momentum warms up; after that the
        # loss decreases monotonically (Theorem 2's descent property).
        assert np.all(np.diff(total[10:]) <= 1e-9)
        assert total[-1] < total[0] / 10

    def test_mocograd_converges_to_joint_optimum(self):
        grads, losses, optimum = quadratic_two_task()
        result = run_convex_descent(
            grads, losses, MoCoGrad(calibration=0.2, seed=0), np.array([4.0, -3.0]),
            step_size=0.2, steps=500,
        )
        np.testing.assert_allclose(result["final_theta"], optimum, atol=0.05)

    def test_matches_equal_weighting_limit(self):
        """On a conflict-free problem MoCoGrad reduces to plain descent."""
        a = np.array([1.0, 1.0])

        def loss(theta):
            return 0.5 * float(np.sum((theta - a) ** 2))

        def grad(theta):
            return theta - a

        moco = run_convex_descent(
            [grad, grad], [loss, loss], MoCoGrad(seed=0), np.zeros(2), 0.1, 50
        )
        equal = run_convex_descent(
            [grad, grad], [loss, loss], EqualWeighting(), np.zeros(2), 0.1, 50
        )
        np.testing.assert_allclose(moco["final_theta"], equal["final_theta"])

    def test_pcgrad_reaches_low_loss_but_biased_fixed_point(self):
        """PCGrad descends, but on persistently conflicting quadratics its
        fixed point deviates from the joint optimum — the bias MoCoGrad's
        momentum calibration avoids (cf. the paper's motivation)."""
        grads, losses, optimum = quadratic_two_task()
        start = np.array([4.0, -3.0])
        result = run_convex_descent(grads, losses, PCGrad(seed=0), start, 0.2, 500)
        start_loss = sum(fn(start) for fn in losses)
        final_loss = sum(fn(result["final_theta"]) for fn in losses)
        assert final_loss < start_loss / 2
        moco = run_convex_descent(
            grads, losses, MoCoGrad(calibration=0.2, seed=0), start, 0.2, 500
        )
        moco_error = np.linalg.norm(moco["final_theta"] - optimum)
        pcgrad_error = np.linalg.norm(result["final_theta"] - optimum)
        assert moco_error < pcgrad_error

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_convex_descent([lambda t: t], [], EqualWeighting(), np.zeros(2), 0.1, 1)


class TestRegret:
    def test_zero_for_optimal_play(self):
        assert regret([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_accumulates(self):
        assert regret([2.0, 3.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            regret([1.0], [1.0, 2.0])

    def test_empirical_regret_below_theorem3_bound(self):
        """The measured regret of MoCoGrad on a convex problem respects Eq. 17."""
        grads, losses, optimum = quadratic_two_task(offset=1.0)
        theta0 = np.array([2.0, 2.0])
        steps = 100
        step_size = 0.1
        result = run_convex_descent(
            grads, losses, MoCoGrad(calibration=0.2, seed=0), theta0, step_size, steps
        )
        optimal_total = sum(fn(optimum) for fn in losses)
        path_losses = result["total_loss"]
        measured = regret(path_losses, [optimal_total] * steps)
        diameter = float(np.linalg.norm(theta0 - optimum)) * 4
        grad_bound = max(
            np.linalg.norm(np.stack([g(t) for g in grads]), axis=1).max()
            for t in result["trajectory"]
        )
        bound = regret_bound(
            steps, 2, diameter, grad_bound, 2, step_size, 0.2, decay_power=0.5
        )
        assert measured <= bound

    def test_regret_bound_monotone_in_horizon(self):
        small = regret_bound(10, 3, 1.0, 1.0, 2, 0.1, 0.1)
        large = regret_bound(1000, 3, 1.0, 1.0, 2, 0.1, 0.1)
        assert large > small

    def test_regret_bound_sublinear(self):
        """Corollary 1: R(T)/T → 0 for p = 1/2."""
        ratios = [
            regret_bound(t, 2, 1.0, 1.0, 2, 0.1, 0.1, decay_power=0.5) / t
            for t in (100, 1000, 10000)
        ]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_regret_bound_validation(self):
        with pytest.raises(ValueError):
            regret_bound(0, 2, 1.0, 1.0, 2, 0.1, 0.1)


class TestCorollary1:
    def test_exponent_at_half(self):
        assert corollary1_rate_exponent(0.5) == pytest.approx(0.5)

    def test_exponent_shape(self):
        # max(p, 1−p, 1−3p): large for extreme p
        assert corollary1_rate_exponent(0.1) == pytest.approx(0.9)
        assert corollary1_rate_exponent(0.9) == pytest.approx(0.9)

    def test_half_is_optimal(self):
        grid = np.linspace(0.05, 0.95, 50)
        exponents = [corollary1_rate_exponent(p) for p in grid]
        best = grid[int(np.argmin(exponents))]
        assert best == pytest.approx(0.5, abs=0.05)

    def test_schedule_values(self):
        schedule = decaying_schedule(1.0, 4, 0.5)
        np.testing.assert_allclose(schedule, [1.0, 1 / np.sqrt(2), 1 / np.sqrt(3), 0.5])

    def test_schedule_decreasing(self):
        schedule = decaying_schedule(0.3, 100, 0.5)
        assert np.all(np.diff(schedule) < 0)
