"""EMA state tracker and the EMA-based gradient-norm normalizer."""

import numpy as np
import pytest

from repro.core import EMA, EMANormalizer


class TestEMA:
    def test_first_update_copies_value(self):
        ema = EMA(beta=0.9)
        value = np.array([1.0, 2.0])
        shadow = ema.update(value)
        np.testing.assert_array_equal(shadow, value)
        value[0] = 99.0  # the shadow must be a copy, not a view
        np.testing.assert_array_equal(ema.value, [1.0, 2.0])

    def test_update_follows_ema_recurrence(self):
        ema = EMA(beta=0.5)
        ema.update(np.array([4.0]))
        shadow = ema.update(np.array([0.0]))
        np.testing.assert_allclose(shadow, [2.0])  # 0.5*4 + 0.5*0
        shadow = ema.update(np.array([0.0]))
        np.testing.assert_allclose(shadow, [1.0])

    def test_beta_zero_tracks_instantaneously(self):
        ema = EMA(beta=0.0)
        ema.update(np.array([3.0]))
        np.testing.assert_allclose(ema.update(np.array([7.0])), [7.0])

    def test_invalid_beta_rejected(self):
        for beta in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match="beta"):
                EMA(beta=beta)

    def test_shape_mismatch_rejected(self):
        ema = EMA(beta=0.9)
        ema.update(np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            ema.update(np.zeros(4))

    def test_update_counter_and_reset(self):
        ema = EMA(beta=0.9)
        assert ema.updates == 0 and ema.value is None
        ema.update(np.ones(2))
        ema.update(np.ones(2))
        assert ema.updates == 2
        ema.reset()
        assert ema.updates == 0 and ema.value is None
        # After reset the next update copies again.
        np.testing.assert_array_equal(ema.update(np.full(2, 5.0)), [5.0, 5.0])


class TestEMANormalizer:
    def test_equalizes_row_norms_on_first_step(self):
        """First update: shadow == current norms, so every row is rescaled
        to the mean norm exactly."""
        rng = np.random.default_rng(0)
        grads = rng.standard_normal((3, 16))
        grads[1] *= 10.0
        normalizer = EMANormalizer(beta=0.9)
        out = normalizer.normalize(grads)
        assert out is grads  # in place
        norms = np.linalg.norm(grads, axis=1)
        np.testing.assert_allclose(norms, norms.mean() * np.ones(3), rtol=1e-10)

    def test_smoothing_uses_history_not_current_norms(self):
        normalizer = EMANormalizer(beta=0.5)
        normalizer.normalize(np.eye(2) * 2.0)  # seeds the EMA at [2, 2]
        # Second step: row norms are [4, 4]; smoothed = 0.5*2 + 0.5*4 = 3.
        # scale = mean(3)/3 = 1 → the rows must pass through unscaled.
        grads = np.eye(2) * 4.0
        normalizer.normalize(grads)
        np.testing.assert_allclose(np.linalg.norm(grads, axis=1), [4.0, 4.0])

    def test_zero_row_is_safe(self):
        grads = np.vstack([np.zeros(8), np.ones(8)])
        out = EMANormalizer(beta=0.9).normalize(grads)
        assert np.all(np.isfinite(out))
        np.testing.assert_array_equal(out[0], np.zeros(8))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="K, d"):
            EMANormalizer().normalize(np.zeros(5))

    def test_reset_clears_history(self):
        normalizer = EMANormalizer(beta=0.5)
        normalizer.normalize(np.eye(2) * 2.0)
        normalizer.reset()
        assert normalizer.ema.updates == 0
