"""Tests for the GCD / TCI conflict diagnostics (Definitions 2–3)."""

import warnings
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    conflict_fraction,
    cosine_similarity,
    gradient_conflict_degree,
    is_conflicting,
    pairwise_gcd,
    task_conflict_intensity,
    tci_profile,
)

finite_vectors = arrays(
    np.float64,
    st.integers(2, 8),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        assert cosine_similarity([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_zero_vector_returns_zero(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_scale_invariance(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(5 * a, 0.1 * b))

    @given(finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, v):
        assert -1.0 - 1e-9 <= cosine_similarity(v, v[::-1].copy()) <= 1.0 + 1e-9


class TestGCD:
    def test_definition(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert gradient_conflict_degree(a, b) == pytest.approx(1.0 - cosine_similarity(a, b))

    def test_range(self):
        assert gradient_conflict_degree([1.0, 0], [1.0, 0]) == pytest.approx(0.0)
        assert gradient_conflict_degree([1.0, 0], [-1.0, 0]) == pytest.approx(2.0)

    def test_symmetry(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert gradient_conflict_degree(a, b) == pytest.approx(gradient_conflict_degree(b, a))

    def test_conflict_threshold(self):
        assert is_conflicting([1.0, 0.0], [-0.1, 1.0])
        assert not is_conflicting([1.0, 0.0], [0.1, 1.0])

    def test_conflict_iff_negative_dot(self, rng):
        for _ in range(20):
            a, b = rng.normal(size=8), rng.normal(size=8)
            assert is_conflicting(a, b) == (np.dot(a, b) < 0)


class TestPairwiseGCD:
    def test_diagonal_zero(self, rng):
        grads = rng.normal(size=(4, 10))
        np.testing.assert_allclose(np.diag(pairwise_gcd(grads)), np.zeros(4))

    def test_matches_pairwise_calls(self, rng):
        grads = rng.normal(size=(3, 6))
        matrix = pairwise_gcd(grads)
        for i in range(3):
            for j in range(3):
                if i != j:
                    expected = gradient_conflict_degree(grads[i], grads[j])
                    assert matrix[i, j] == pytest.approx(expected)

    def test_symmetric(self, rng):
        matrix = pairwise_gcd(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_zero_row_handled(self):
        grads = np.array([[1.0, 0.0], [0.0, 0.0]])
        matrix = pairwise_gcd(grads)
        assert matrix[0, 1] == pytest.approx(1.0)  # cos treated as 0

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 5), st.integers(2, 6)),
            elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_entries_in_range(self, grads):
        matrix = pairwise_gcd(grads)
        assert np.all(matrix >= -1e-9)
        assert np.all(matrix <= 2.0 + 1e-9)


class TestConflictFraction:
    def test_all_aligned(self):
        grads = np.tile(np.array([1.0, 1.0]), (3, 1))
        assert conflict_fraction(grads) == 0.0

    def test_all_conflicting(self):
        grads = np.array([[1.0, 0.0], [-1.0, 0.1], [-1.0, -0.1]])
        # pairs: (0,1) conflict, (0,2) conflict, (1,2) aligned
        assert conflict_fraction(grads) == pytest.approx(2 / 3)

    def test_single_task(self):
        assert conflict_fraction(np.ones((1, 4))) == 0.0


class TestTCI:
    def test_positive_when_joint_worse(self):
        assert task_conflict_intensity(joint_risk=1.2, single_risk=1.0) == pytest.approx(0.2)

    def test_negative_when_joint_better(self):
        assert task_conflict_intensity(0.8, 1.0) == pytest.approx(-0.2)

    def test_profile_vectorized(self):
        profile = tci_profile([1.0, 2.0], [0.5, 2.5])
        np.testing.assert_allclose(profile, [0.5, -0.5])

    def test_profile_length_mismatch(self):
        with pytest.raises(ValueError):
            tci_profile([1.0], [1.0, 2.0])


@contextmanager
def warnings_none():
    """Context asserting no DeprecationWarning is emitted inside it."""
    with warnings.catch_warnings(record=True) as records:
        warnings.simplefilter("always")
        yield
    deprecations = [r for r in records if issubclass(r.category, DeprecationWarning)]
    assert not deprecations, f"unexpected DeprecationWarning: {deprecations}"


class TestHotPathDeprecation:
    """Per-pair diagnostics are deprecated *inside* balance() only (PR 4)."""

    @pytest.fixture(autouse=True)
    def _reset_one_shot_flag(self, monkeypatch):
        from repro.core import conflict as conflict_module

        monkeypatch.setattr(conflict_module, "_hot_path_warned", False)

    @staticmethod
    def _legacy_balancer():
        from repro.core.balancer import GradientBalancer

        class LegacyBalancer(GradientBalancer):
            name = "legacy"

            def balance(self, grads, losses):
                grads, _ = self._check_inputs(grads, losses)
                if cosine_similarity(grads[0], grads[1]) < 0.0:
                    return grads[0]
                return grads.sum(axis=0)

        return LegacyBalancer()

    def test_per_pair_helper_warns_once_inside_balance(self):
        balancer = self._legacy_balancer()
        grads = np.array([[1.0, 0.0], [-1.0, 0.2]])
        with pytest.warns(DeprecationWarning, match="gradstats"):
            balancer.balance(grads, np.ones(2))
        # One-shot: the second step must not warn again.
        with warnings_none():
            balancer.balance(grads, np.ones(2))

    def test_diagnostic_use_outside_balance_never_warns(self):
        with warnings_none():
            cosine_similarity(np.array([1.0, 0.0]), np.array([-1.0, 0.0]))
            gradient_conflict_degree(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
            is_conflicting(np.array([1.0, 0.0]), np.array([-1.0, 0.0]))

    def test_registry_balancers_never_warn(self):
        """The shipped loop kernels use the private pair helper, so even
        the reference oracle stays warning-free."""
        import repro.balancers  # noqa: F401
        from repro.core import create_balancer

        grads = np.array([[1.0, 0.0], [-1.0, 0.2]])
        for name in ("mocograd", "pcgrad", "gradvac"):
            balancer = create_balancer(name, seed=0, pairwise_mode="loop")
            with warnings_none():
                balancer.balance(grads, np.ones(2))
