"""Trainer ↔ telemetry integration: spans, counters, deprecated views."""

import numpy as np
import pytest

from repro.balancers import EqualWeighting
from repro.core import MoCoGrad
from repro.obs import NULL_TELEMETRY, InMemorySink, Telemetry
from repro.training import MTLTrainer

from .test_trainer import make_model, make_problem


@pytest.fixture()
def fitted(rng):
    dataset, tasks = make_problem(rng)
    model = make_model(rng, tasks)
    sink = InMemorySink()
    trainer = MTLTrainer(
        model,
        tasks,
        EqualWeighting(),
        seed=0,
        telemetry=Telemetry(sinks=[sink]),
    )
    trainer.fit(dataset, epochs=1, batch_size=8)
    return trainer, sink


class TestStepSpans:
    def test_phase_spans_recorded(self, fitted):
        trainer, _ = fitted
        telemetry = trainer.telemetry
        steps = trainer.step_count
        assert steps > 0
        assert len(telemetry.durations("step")) == steps
        assert len(telemetry.durations("step/forward")) == steps
        assert len(telemetry.durations("step/backward")) == steps
        assert len(telemetry.durations("step/balance")) == steps
        assert len(telemetry.durations("step/optimizer_step")) == steps
        # One task_backward per task per step.
        assert len(telemetry.durations("step/backward/task_backward")) == 2 * steps

    def test_step_span_covers_phases(self, fitted):
        trainer, _ = fitted
        telemetry = trainer.telemetry
        total_step = sum(telemetry.durations("step"))
        phases = sum(
            sum(telemetry.durations(f"step/{phase}"))
            for phase in ("forward", "backward", "balance", "optimizer_step")
        )
        assert total_step >= phases

    def test_per_task_backward_spans_labelled(self, fitted):
        trainer, sink = fitted
        task_spans = [
            e for e in sink.of_type("span") if e["name"] == "task_backward"
        ]
        labels = {e["labels"]["task"] for e in task_spans}
        assert labels == {"t0", "t1"}

    def test_step_counters_flushed_to_sink(self, fitted):
        trainer, sink = fitted
        counters = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
            for e in sink.of_type("metric")
            if e["kind"] == "counter"
        }
        key = (
            "train_steps_total",
            (("method", "equal"), ("mode", "single_input")),
        )
        assert counters[key] == trainer.step_count
        assert any(name == "balancer_pairs_total" for name, _ in counters)

    def test_multi_input_mode_traced(self, rng):
        from repro.data import MULTI_INPUT, ArrayDataset

        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        datasets = {
            task.name: ArrayDataset(dataset.inputs, dataset.targets[task.name])
            for task in tasks
        }
        trainer = MTLTrainer(
            model, tasks, EqualWeighting(), mode=MULTI_INPUT, seed=0, telemetry=Telemetry()
        )
        trainer.fit(datasets, epochs=1, batch_size=8)
        telemetry = trainer.telemetry
        steps = trainer.step_count
        assert len(telemetry.durations("step")) == steps
        assert len(telemetry.durations("step/backward/task_backward")) == 2 * steps

    def test_feature_grad_space_traced(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(
            model,
            tasks,
            EqualWeighting(),
            grad_space="features",
            seed=0,
            telemetry=Telemetry(),
        )
        trainer.fit(dataset, epochs=1, batch_size=8)
        telemetry = trainer.telemetry
        steps = trainer.step_count
        assert len(telemetry.durations("step/backward_shared")) == steps
        # backward_seconds folds the trunk backprop in.
        assert len(trainer.backward_seconds) == steps
        assert sum(trainer.backward_seconds) >= sum(telemetry.durations("step/backward"))


class TestTimingViews:
    def test_backward_time_distinct_from_step_time(self, fitted):
        trainer, _ = fitted
        assert 0.0 < trainer.mean_backward_seconds < trainer.mean_step_seconds
        assert 0.0 < trainer.median_backward_seconds <= trainer.median_step_seconds

    def test_deprecated_step_seconds(self, fitted):
        trainer, _ = fitted
        with pytest.deprecated_call():
            values = trainer.step_seconds
        assert values == trainer.telemetry.durations("step")

    def test_deprecated_backward_seconds_total_is_backward_only(self, fitted):
        trainer, _ = fitted
        with pytest.deprecated_call():
            total = trainer.backward_seconds_total
        assert total == pytest.approx(sum(trainer.backward_seconds))
        assert total < sum(trainer.telemetry.durations("step"))

    def test_deprecated_conflict_history_alias(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0, track_conflicts=True)
        trainer.fit(dataset, epochs=1, batch_size=8)
        with pytest.deprecated_call():
            history = trainer.conflict_history
        assert history is trainer.conflict_stats
        assert len(history) == trainer.step_count

    def test_deprecated_accessors_warn_exactly_once_per_access(self, rng):
        import warnings

        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0, track_conflicts=True)
        trainer.fit(dataset, epochs=1, batch_size=8)
        for attribute in ("step_seconds", "backward_seconds_total", "conflict_history"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                getattr(trainer, attribute)
            deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1, attribute
            assert attribute in str(deprecations[0].message)

    def test_disabled_telemetry_trains_identically(self, rng):
        dataset, tasks = make_problem(rng)
        finals = []
        for telemetry in (Telemetry(), NULL_TELEMETRY):
            model = make_model(np.random.default_rng(7), tasks)
            trainer = MTLTrainer(
                model, tasks, MoCoGrad(seed=3), lr=1e-2, seed=3, telemetry=telemetry
            )
            trainer.fit(dataset, epochs=2, batch_size=8)
            from repro.nn.utils import parameter_vector

            finals.append(parameter_vector(model.parameters()))
        np.testing.assert_allclose(finals[0], finals[1])

    def test_disabled_telemetry_has_empty_views(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0, telemetry=NULL_TELEMETRY)
        trainer.fit(dataset, epochs=1, batch_size=8)
        assert trainer.mean_step_seconds == 0.0
        assert trainer.backward_seconds == []
        assert trainer.last_step_seconds == 0.0
