"""Tests for EarlyStopping / BestCheckpoint and trainer conflict tracking."""

import numpy as np
import pytest

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.data import ArrayDataset, TaskSpec
from repro.nn.functional import mse_loss
from repro.training import BestCheckpoint, EarlyStopping, MTLTrainer


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, mode="min")
        assert not stopper.update(1.0)
        assert not stopper.update(1.1)
        assert stopper.update(1.2)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, mode="min")
        stopper.update(1.0)
        stopper.update(1.1)
        assert not stopper.update(0.9)  # improvement resets
        assert not stopper.update(1.0)
        assert stopper.update(1.0)

    def test_max_mode(self):
        stopper = EarlyStopping(patience=1, mode="max")
        stopper.update(0.5)
        assert not stopper.update(0.6)
        assert stopper.update(0.55)

    def test_min_delta_threshold(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, mode="min")
        stopper.update(1.0)
        # 0.95 is within min_delta: not an improvement.
        assert stopper.update(0.95)

    def test_nan_counts_as_stale(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(float("nan"))
        assert stopper.update(float("nan"))

    def test_non_finite_never_becomes_best(self):
        """-inf would otherwise 'improve' forever in min mode (and +inf in
        max mode), disabling early stopping for a diverged run."""
        stopper = EarlyStopping(patience=2, mode="min")
        stopper.update(float("-inf"))
        assert stopper.best is None
        assert stopper.update(float("-inf"))  # second stale epoch ⇒ stop

    def test_positive_inf_in_max_mode_is_stale(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0.5)
        assert not stopper.update(float("inf"))
        assert stopper.best == 0.5
        assert stopper.update(float("inf"))

    def test_recovery_after_non_finite_epoch(self):
        stopper = EarlyStopping(patience=3, mode="min")
        stopper.update(1.0)
        stopper.update(float("nan"))
        assert not stopper.update(0.5)  # finite improvement resets staleness
        assert stopper.best == 0.5
        assert stopper.stale_epochs == 0

    def test_nan_before_any_finite_value(self):
        stopper = EarlyStopping(patience=1, mode="min")
        assert stopper.update(float("nan"))
        assert stopper.best is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="best")


class TestBestCheckpoint:
    def _model(self, rng):
        return HardParameterSharing(
            MLPEncoder(3, [4], rng), {"t": LinearHead(4, 1, rng)}
        )

    def test_snapshots_and_restores(self, rng):
        model = self._model(rng)
        checkpoint = BestCheckpoint(model, mode="min")
        checkpoint.update(1.0)
        best = {k: v.copy() for k, v in model.state_dict().items()}
        for param in model.parameters():
            param.data = param.data + 5.0
        checkpoint.update(2.0)  # worse — must not overwrite the snapshot
        checkpoint.restore()
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, best[name])

    def test_restore_without_snapshot_raises(self, rng):
        with pytest.raises(RuntimeError):
            BestCheckpoint(self._model(rng)).restore()

    def test_max_mode(self, rng):
        model = self._model(rng)
        checkpoint = BestCheckpoint(model, mode="max")
        assert checkpoint.update(0.5)
        assert not checkpoint.update(0.4)
        assert checkpoint.update(0.6)


class TestConflictTracking:
    def test_history_recorded_per_step(self, rng):
        x = rng.normal(size=(32, 3))
        data = ArrayDataset(x, {"a": x @ np.ones(3), "b": -(x @ np.ones(3))})
        tasks = [TaskSpec("a", mse_loss, {}, {}), TaskSpec("b", mse_loss, {}, {})]
        model = HardParameterSharing(
            MLPEncoder(3, [4], rng),
            {"a": LinearHead(4, 1, rng), "b": LinearHead(4, 1, rng)},
        )
        trainer = MTLTrainer(
            model, tasks, EqualWeighting(), seed=0, track_conflicts=True
        )
        trainer.fit(data, epochs=2, batch_size=16)
        assert len(trainer.conflict_stats) == trainer.step_count
        for mean_gcd, fraction in trainer.conflict_stats:
            assert 0.0 <= mean_gcd <= 2.0
            assert 0.0 <= fraction <= 1.0

    def test_opposite_tasks_flagged_conflicting(self, rng):
        """Opposite targets competing for one shared output must conflict."""
        from repro.analysis.conflict_experiment import SharedOutputRegressor

        x = rng.normal(size=(64, 10))
        y = x @ np.ones(10)
        data = ArrayDataset(x, {"a": y, "b": -y})
        tasks = [TaskSpec("a", mse_loss, {}, {}), TaskSpec("b", mse_loss, {}, {})]
        model = SharedOutputRegressor(["a", "b"], 10, rng)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), lr=1e-2, seed=0, track_conflicts=True)
        trainer.fit(data, epochs=6, batch_size=32)
        fractions = [fraction for _, fraction in trainer.conflict_stats[-4:]]
        assert np.mean(fractions) > 0.5

    def test_disabled_by_default(self, rng):
        x = rng.normal(size=(16, 3))
        data = ArrayDataset(x, {"a": x @ np.ones(3)})
        tasks = [TaskSpec("a", mse_loss, {}, {})]
        model = HardParameterSharing(MLPEncoder(3, [4], rng), {"a": LinearHead(4, 1, rng)})
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0)
        trainer.fit(data, epochs=1, batch_size=8)
        assert trainer.conflict_stats == []
