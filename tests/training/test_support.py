"""Tests for History, evaluation, and the STL trainer."""

import numpy as np
import pytest

from repro.data import make_aliexpress, make_movielens
from repro.data.movielens import GENRES
from repro.training import History, evaluate_model, train_stl, train_stl_all
from repro.training.evaluation import collect_outputs


class TestHistory:
    def test_epoch_averaging(self):
        history = History(["a", "b"])
        history.record_step(np.array([1.0, 2.0]))
        history.record_step(np.array([3.0, 4.0]))
        history.close_epoch()
        np.testing.assert_allclose(history.epoch_losses[0], [2.0, 3.0])

    def test_epoch_boundaries_respected(self):
        history = History(["a"])
        history.record_step(np.array([1.0]))
        history.close_epoch()
        history.record_step(np.array([3.0]))
        history.close_epoch()
        np.testing.assert_allclose(history.average_loss_curve(), [1.0, 3.0])

    def test_empty_epoch_is_nan(self):
        history = History(["a"])
        history.close_epoch()
        assert np.isnan(history.epoch_losses[0][0])

    def test_empty_epoch_nan_row_covers_every_task(self):
        history = History(["a", "b", "c"])
        history.close_epoch()
        assert history.epoch_losses[0].shape == (3,)
        assert np.all(np.isnan(history.epoch_losses[0]))

    def test_empty_epoch_after_full_epoch(self):
        """A zero-step epoch must not re-consume the previous epoch's steps."""
        history = History(["a"])
        history.record_step(np.array([2.0]))
        history.close_epoch()
        history.close_epoch()  # no steps recorded in between
        np.testing.assert_allclose(history.epoch_losses[0], [2.0])
        assert np.isnan(history.epoch_losses[1][0])
        # A later epoch with steps resumes normally.
        history.record_step(np.array([4.0]))
        history.close_epoch()
        np.testing.assert_allclose(history.epoch_losses[2], [4.0])

    def test_empty_epoch_curves_and_final_losses(self):
        history = History(["a", "b"])
        history.close_epoch()
        curve = history.average_loss_curve()
        assert curve.shape == (1,) and np.isnan(curve[0])
        finals = history.final_losses()
        assert set(finals) == {"a", "b"}
        assert all(np.isnan(v) for v in finals.values())

    def test_empty_epoch_records_metrics(self):
        history = History(["a"])
        history.close_epoch({"a": {"rmse": 0.25}})
        assert history.epoch_metrics[0]["a"]["rmse"] == 0.25

    def test_task_loss_curve(self):
        history = History(["a", "b"])
        history.record_step(np.array([1.0, 5.0]))
        history.close_epoch()
        np.testing.assert_allclose(history.task_loss_curve("b"), [5.0])

    def test_final_losses(self):
        history = History(["a", "b"])
        history.record_step(np.array([1.0, 2.0]))
        history.close_epoch()
        assert history.final_losses() == {"a": 1.0, "b": 2.0}

    def test_final_losses_empty_raises(self):
        with pytest.raises(RuntimeError):
            History(["a"]).final_losses()

    def test_metrics_attached_to_epoch(self):
        history = History(["a"])
        history.record_step(np.array([1.0]))
        history.close_epoch({"a": {"rmse": 0.5}})
        assert history.epoch_metrics[0]["a"]["rmse"] == 0.5

    def test_num_epochs(self):
        history = History(["a"])
        for _ in range(3):
            history.record_step(np.array([1.0]))
            history.close_epoch()
        assert history.num_epochs == 3


class TestEvaluation:
    def test_collect_outputs_single_input(self, rng):
        bench = make_aliexpress("ES", num_records=200, seed=0)
        model = bench.build_model("hps", rng)
        outputs, targets = collect_outputs(model, bench.test, "CTR", batch_size=32)
        assert outputs.shape == targets.shape

    def test_evaluate_model_structure(self, rng):
        bench = make_aliexpress("ES", num_records=200, seed=0)
        model = bench.build_model("hps", rng)
        results = evaluate_model(model, bench.tasks, bench.test, bench.mode)
        assert set(results) == {"CTR", "CTCVR"}
        assert 0.0 <= results["CTR"]["auc"] <= 1.0

    def test_evaluate_multi_input(self, rng):
        bench = make_movielens(genres=GENRES[:2], records_per_genre=80, seed=0)
        model = bench.build_model("hps", rng)
        results = evaluate_model(model, bench.tasks, bench.test, bench.mode)
        assert set(results) == set(GENRES[:2])
        assert results[GENRES[0]]["rmse"] > 0

    def test_evaluation_does_not_touch_gradients(self, rng):
        bench = make_aliexpress("ES", num_records=150, seed=0)
        model = bench.build_model("hps", rng)
        evaluate_model(model, bench.tasks, bench.test, bench.mode)
        assert all(p.grad is None for p in model.parameters())


class TestSTL:
    def test_single_task_metrics(self):
        bench = make_aliexpress("ES", num_records=400, seed=0)
        metrics = train_stl(bench, "CTR", epochs=2, batch_size=64, lr=2e-3, seed=0)
        assert "auc" in metrics
        assert 0.0 <= metrics["auc"] <= 1.0

    def test_all_tasks(self):
        bench = make_aliexpress("ES", num_records=300, seed=0)
        results = train_stl_all(bench, epochs=1, batch_size=64, seed=0)
        assert set(results) == {"CTR", "CTCVR"}

    def test_multi_input_stl(self):
        bench = make_movielens(genres=GENRES[:2], records_per_genre=80, seed=0)
        metrics = train_stl(bench, GENRES[0], epochs=1, batch_size=32, seed=0)
        assert "rmse" in metrics

    def test_stl_learns(self):
        """STL AUC on the learnable CTR task should beat chance."""
        bench = make_aliexpress("ES", num_records=1500, seed=0)
        metrics = train_stl(bench, "CTR", epochs=6, batch_size=128, lr=2e-3, seed=0)
        assert metrics["auc"] > 0.55
