"""Edge-case tests for the multi-input training loop."""

import numpy as np
import pytest

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.data import MULTI_INPUT, ArrayDataset, TaskSpec
from repro.nn.functional import mse_loss
from repro.training import MTLTrainer


def build(rng, tasks):
    encoder = MLPEncoder(4, [8], rng)
    heads = {t.name: LinearHead(8, 1, rng) for t in tasks}
    return HardParameterSharing(encoder, heads)


def make_tasks():
    return [TaskSpec("big", mse_loss, {}, {}), TaskSpec("small", mse_loss, {}, {})]


class TestUnequalLoaders:
    def test_shorter_loader_cycles(self, rng):
        """With unequal dataset sizes, every step still gets a batch per
        task — the shorter loader restarts (the LibMTL behaviour)."""
        tasks = make_tasks()
        data = {
            "big": ArrayDataset(rng.normal(size=(64, 4)), rng.normal(size=64)),
            "small": ArrayDataset(rng.normal(size=(8, 4)), rng.normal(size=8)),
        }
        model = build(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, seed=0)
        trainer.fit(data, epochs=1, batch_size=8)
        # Steps are driven by the largest loader: 64/8 = 8 steps.
        assert trainer.step_count == 8

    def test_single_sample_task(self, rng):
        tasks = make_tasks()
        data = {
            "big": ArrayDataset(rng.normal(size=(16, 4)), rng.normal(size=16)),
            "small": ArrayDataset(rng.normal(size=(1, 4)), rng.normal(size=1)),
        }
        model = build(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, seed=0)
        losses = trainer.fit(data, epochs=1, batch_size=8)
        assert np.all(np.isfinite(trainer.history.average_loss_curve()))

    def test_loss_history_per_task(self, rng):
        tasks = make_tasks()
        data = {
            "big": ArrayDataset(rng.normal(size=(16, 4)), rng.normal(size=16)),
            "small": ArrayDataset(rng.normal(size=(16, 4)), rng.normal(size=16)),
        }
        model = build(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, seed=0)
        trainer.fit(data, epochs=2, batch_size=8)
        assert len(trainer.history.task_loss_curve("big")) == 2
        assert len(trainer.history.task_loss_curve("small")) == 2

    def test_missing_task_dataset_raises(self, rng):
        tasks = make_tasks()
        data = {"big": ArrayDataset(rng.normal(size=(16, 4)), rng.normal(size=16))}
        model = build(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, seed=0)
        with pytest.raises(KeyError):
            trainer.fit(data, epochs=1, batch_size=8)
