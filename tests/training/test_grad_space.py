"""First-class ``grad_space`` trainer option: the feature-level gradient
space as a peer of the parameter-level one.

Covers the ``grad_source``→``grad_space`` deprecation shim, the
disconnected-head zero-fill fix, feature-vs-parameter equivalence across
every architecture with a shared cut, feature-space gradient
accumulation (the historical ValueError gate is lifted), the per-dim
workspace cache, single-GEMM conflict tracking, and the EMA feature-norm
normalizer.
"""

import tracemalloc
import warnings

import numpy as np
import pytest

import repro.core.gradstats as gradstats_module
import repro.training.trainer as trainer_module
from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.core.balancer import available_balancers, create_balancer
from repro.nn import Module, Tensor
from repro.nn.utils import parameter_vector
from repro.training import MTLTrainer

from ..arch.test_architectures import FACTORIES
from .test_trainer import make_model, make_problem

ALL_METHODS = sorted(available_balancers())
CUT_ARCHS = ("hps", "mmoe", "cross_stitch", "cgc")


def build(model, tasks, *, balancer=None, **kwargs):
    kwargs.setdefault("seed", 0)
    return MTLTrainer(model, tasks, balancer or EqualWeighting(), **kwargs)


# ----------------------------------------------------------------------
# grad_source → grad_space migration
# ----------------------------------------------------------------------
class TestDeprecation:
    def test_legacy_spellings_map_onto_spaces(self, rng):
        dataset, tasks = make_problem(rng)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert build(make_model(rng, tasks), tasks, grad_source="params").grad_space == (
                "parameters"
            )
            assert build(make_model(rng, tasks), tasks, grad_source="features").grad_space == (
                "features"
            )

    def test_legacy_kwarg_warns_exactly_once(self, rng, monkeypatch):
        monkeypatch.setattr(trainer_module, "_grad_source_warned", False)
        dataset, tasks = make_problem(rng)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build(make_model(rng, tasks), tasks, grad_source="features")
            build(make_model(rng, tasks), tasks, grad_source="params")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "grad_space" in str(deprecations[0].message)

    def test_both_spellings_rejected(self, rng):
        dataset, tasks = make_problem(rng)
        with pytest.raises(ValueError, match="not both"):
            build(make_model(rng, tasks), tasks, grad_space="features", grad_source="features")

    def test_invalid_legacy_value_rejected(self, rng):
        dataset, tasks = make_problem(rng)
        with pytest.raises(ValueError, match="grad_source"):
            build(make_model(rng, tasks), tasks, grad_source="parameters")

    def test_deprecated_property_still_reads(self, rng):
        dataset, tasks = make_problem(rng)
        trainer = build(make_model(rng, tasks), tasks, grad_space="features")
        with pytest.warns(DeprecationWarning, match="grad_space"):
            assert trainer.grad_source == "features"

    def test_legacy_and_new_spelling_train_identically(self, rng):
        """The shim is pure aliasing: bitwise-identical trajectories."""
        dataset, tasks = make_problem(rng)
        x, targets = dataset.batch(np.arange(16))
        finals = {}
        for kwargs in ({"grad_source": "features"}, {"grad_space": "features"}):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                trainer = build(make_model(np.random.default_rng(3), tasks), tasks, **kwargs)
            for _ in range(3):
                trainer.train_step_single(x, targets)
            finals[tuple(kwargs)] = parameter_vector(trainer.model.parameters())
        a, b = finals.values()
        np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Disconnected heads (the cut.grad-is-None crash)
# ----------------------------------------------------------------------
class ConstantHead(Module):
    """Predicts a learned constant: its loss never reaches the trunk."""

    def __init__(self, rng):
        super().__init__()
        self.inner = LinearHead(1, 1, rng)

    def __call__(self, features):
        return self.inner(Tensor(np.ones((features.shape[0], 1))))


def make_disconnected_problem(rng):
    dataset, tasks = make_problem(rng)
    encoder = MLPEncoder(6, [12, 8], rng)
    heads = {"t0": LinearHead(8, 1, rng), "t1": ConstantHead(rng)}
    return dataset, tasks, HardParameterSharing(encoder, heads)


class TestDisconnectedHead:
    @pytest.mark.parametrize("backward_mode", ("multi_root", "per_task"))
    def test_zero_row_for_disconnected_task(self, rng, backward_mode):
        dataset, tasks, model = make_disconnected_problem(rng)
        trainer = build(model, tasks, grad_space="features", backward_mode=backward_mode)
        x, targets = dataset.batch(np.arange(8))
        _, grads, losses = trainer._collect_feature_grads(x, targets, trainer.telemetry)
        assert np.abs(grads[0]).sum() > 0
        np.testing.assert_array_equal(grads[1], np.zeros_like(grads[1]))
        assert np.all(np.isfinite(losses))

    @pytest.mark.parametrize("backward_mode", ("multi_root", "per_task"))
    def test_full_step_does_not_crash(self, rng, backward_mode):
        """Regression: the per_task path used to die with AttributeError on
        ``cut.grad.reshape`` when the cut's gradient never materialized."""
        dataset, tasks, model = make_disconnected_problem(rng)
        trainer = build(model, tasks, grad_space="features", backward_mode=backward_mode)
        x, targets = dataset.batch(np.arange(8))
        losses = trainer.train_step_single(x, targets)
        assert np.all(np.isfinite(losses))
        # The disconnected head still trains through its own (task) grads.
        before = parameter_vector(model.task_specific_parameters("t1"))
        trainer.train_step_single(x, targets)
        after = parameter_vector(model.task_specific_parameters("t1"))
        assert not np.array_equal(before, after)


# ----------------------------------------------------------------------
# Equivalence and the balancer × space × window smoke matrix
# ----------------------------------------------------------------------
def make_arch_batch(rng, n=12):
    x = rng.normal(size=(n, 6))
    targets = {"a": rng.normal(size=n), "b": rng.normal(size=n)}
    return x, targets


def make_arch_trainer(name, **kwargs):
    from repro.data import TaskSpec
    from repro.nn.functional import mse_loss

    model = FACTORIES[name](np.random.default_rng(5))
    tasks = [TaskSpec(t, mse_loss, {}, {}) for t in ("a", "b")]
    return MTLTrainer(model, tasks, EqualWeighting(), seed=0, **kwargs)


class TestFeatureSpaceAcrossArchitectures:
    @pytest.mark.parametrize("name", CUT_ARCHS)
    def test_matches_parameter_space_for_equal_weighting(self, rng, name):
        """Balancing at the cut then one trunk backprop is the chain rule:
        for the trivial balancer both spaces produce the same update."""
        x, targets = make_arch_batch(rng)
        finals = {}
        for space in ("parameters", "features"):
            trainer = make_arch_trainer(name, grad_space=space, lr=1e-2)
            for _ in range(3):
                trainer.train_step_single(x, targets)
            finals[space] = parameter_vector(trainer.model.parameters())
        np.testing.assert_allclose(
            finals["features"], finals["parameters"], atol=1e-10, rtol=0
        )

    def test_archs_without_a_cut_are_rejected_at_step_time(self, rng):
        x, targets = make_arch_batch(rng)
        trainer = make_arch_trainer("mtan", grad_space="features")
        with pytest.raises(NotImplementedError):
            trainer.train_step_single(x, targets)


@pytest.mark.parametrize("accumulate", (1, 4))
@pytest.mark.parametrize("space", ("parameters", "features"))
@pytest.mark.parametrize("method", ALL_METHODS)
def test_every_balancer_trains_in_every_space(method, space, accumulate, rng):
    """The full matrix the tentpole promises: 13 balancers × 2 gradient
    spaces × {per-step, windowed} all make finite progress on HPS."""
    from repro.data import TaskSpec
    from repro.nn.functional import mse_loss

    x, targets = make_arch_batch(rng, n=16)
    model = FACTORIES["hps"](np.random.default_rng(5))
    tasks = [TaskSpec(t, mse_loss, {}, {}) for t in ("a", "b")]
    trainer = MTLTrainer(
        model,
        tasks,
        create_balancer(method, seed=0),
        grad_space=space,
        accumulate_steps=accumulate,
        optimizer="sgd",
        seed=0,
    )
    initial = parameter_vector(model.parameters())
    for _ in range(accumulate):
        trainer.train_step_single(x, targets)
    trained = parameter_vector(model.parameters())
    assert np.all(np.isfinite(trained))
    assert float(np.max(np.abs(trained - initial))) > 0.0


# ----------------------------------------------------------------------
# Feature-space accumulation semantics
# ----------------------------------------------------------------------
class TestFeatureAccumulation:
    def test_window_of_identical_batches_matches_single_step(self, rng):
        """W identical micro-batches resolve to exactly the W=1 update
        (window-mean chain rule: Σ_w J_wᵀ(combined / W) == Jᵀ combined)."""
        dataset, tasks = make_problem(rng)
        x, targets = dataset.batch(np.arange(16))
        finals = {}
        for window in (1, 2):
            trainer = build(
                make_model(np.random.default_rng(3), tasks),
                tasks,
                grad_space="features",
                accumulate_steps=window,
                optimizer="sgd",
            )
            for _ in range(window):
                trainer.train_step_single(x, targets)
            finals[window] = parameter_vector(trainer.model.parameters())
        np.testing.assert_allclose(finals[2], finals[1], atol=1e-12, rtol=0)

    def test_partial_window_applies_no_update(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(np.random.default_rng(3), tasks)
        initial = parameter_vector(model.parameters())
        trainer = build(model, tasks, grad_space="features", accumulate_steps=4)
        x, targets = dataset.batch(np.arange(16))
        trainer.train_step_single(x, targets)
        np.testing.assert_array_equal(parameter_vector(model.parameters()), initial)
        assert trainer._micro_steps == 1

    def test_mid_window_dim_change_discards_window(self, rng):
        """A batch-size change mid-window changes d_feat; the open window is
        dropped with a warning instead of mixing incompatible spaces."""
        dataset, tasks = make_problem(rng)
        model = make_model(np.random.default_rng(3), tasks)
        initial = parameter_vector(model.parameters())
        trainer = build(model, tasks, grad_space="features", accumulate_steps=2)
        x16, t16 = dataset.batch(np.arange(16))
        x8, t8 = dataset.batch(np.arange(8))
        trainer.train_step_single(x16, t16)
        with pytest.warns(RuntimeWarning, match="discarded"):
            trainer.train_step_single(x8, t8)
        # The dropped micro-step applied no update; the batch-8 step opened
        # a fresh window which a second batch-8 step completes.
        np.testing.assert_array_equal(parameter_vector(model.parameters()), initial)
        assert trainer._micro_steps == 1
        trainer.train_step_single(x8, t8)
        assert trainer._micro_steps == 0
        assert not np.array_equal(parameter_vector(model.parameters()), initial)

    def test_stateful_balancer_rejects_batch_size_change(self, rng):
        """Sharp edge (documented in DESIGN.md): d_feat follows the batch
        shape, so MoCoGrad's (K, d_feat) momentum raises on a change."""
        dataset, tasks = make_problem(rng)
        trainer = build(
            make_model(rng, tasks), tasks,
            balancer=create_balancer("mocograd", seed=0),
            grad_space="features",
        )
        x16, t16 = dataset.batch(np.arange(16))
        x8, t8 = dataset.batch(np.arange(8))
        trainer.train_step_single(x16, t16)
        with pytest.raises(ValueError, match="momentum"):
            trainer.train_step_single(x8, t8)


# ----------------------------------------------------------------------
# Workspace cache (per-dim, bounded)
# ----------------------------------------------------------------------
class TestWorkspaceCache:
    def test_one_buffer_per_dim(self, rng):
        dataset, tasks = make_problem(rng)
        trainer = build(make_model(rng, tasks), tasks)
        a = trainer._workspace(64)
        b = trainer._workspace(32)
        assert a.shape == (2, 64) and b.shape == (2, 32)
        assert trainer._workspace(64) is a
        assert trainer._workspace(32) is b

    def test_interleaved_dims_do_not_reallocate(self, rng):
        """Regression: a single shape-keyed slot reallocated on every
        interleaving (parameter-space step after feature-space step, or a
        batch-size flip).  The per-dim dict must allocate nothing steady
        state — gated with tracemalloc."""
        dataset, tasks = make_problem(rng)
        trainer = build(make_model(rng, tasks), tasks)
        a = trainer._workspace(64)
        b = trainer._workspace(32)
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in range(100):
                assert trainer._workspace(64) is a
                assert trainer._workspace(32) is b
            allocated = tracemalloc.get_traced_memory()[0] - before
        finally:
            tracemalloc.stop()
        # 100 interleaved lookups of (2, 64) float64 buffers would cost
        # ~100 KiB if each reallocated; steady state must stay trivial.
        assert allocated < 8 * 1024

    def test_cache_is_bounded_fifo(self, rng):
        dataset, tasks = make_problem(rng)
        trainer = build(make_model(rng, tasks), tasks)
        trainer._workspace(10)
        for dim in range(11, 11 + trainer._MAX_WORKSPACES):
            trainer._workspace(dim)
        assert len(trainer._grad_workspaces) == trainer._MAX_WORKSPACES
        assert 10 not in trainer._grad_workspaces  # oldest evicted first


# ----------------------------------------------------------------------
# Conflict tracking reuses the balancer's GradStats
# ----------------------------------------------------------------------
class TestConflictTrackingCost:
    @pytest.mark.parametrize("space", ("parameters", "features"))
    def test_one_gram_evaluation_per_step(self, rng, monkeypatch, space):
        """Regression: ``track_conflicts=True`` built a second GradStats per
        step, doubling the K×K Gram GEMMs.  The resolve tail now hands the
        balancer's own stats to the conflict recorder."""
        calls = []
        original = gradstats_module.gram_matrix

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(gradstats_module, "gram_matrix", counting)
        dataset, tasks = make_problem(rng)
        trainer = build(
            make_model(rng, tasks), tasks,
            balancer=create_balancer("mocograd", seed=0),
            grad_space=space,
            track_conflicts=True,
        )
        x, targets = dataset.batch(np.arange(16))
        for _ in range(3):
            trainer.train_step_single(x, targets)
        assert len(trainer.conflict_stats) == 3
        assert len(calls) == 3  # exactly one Gram per step, not two


# ----------------------------------------------------------------------
# EMA feature-norm normalizer
# ----------------------------------------------------------------------
class TestFeatureEMA:
    def test_off_by_default(self, rng):
        dataset, tasks = make_problem(rng)
        trainer = build(make_model(rng, tasks), tasks, grad_space="features")
        assert trainer.feature_normalizer is None

    def test_requires_feature_space(self, rng):
        dataset, tasks = make_problem(rng)
        with pytest.raises(ValueError, match="feature_ema"):
            build(make_model(rng, tasks), tasks, feature_ema=0.9)

    def test_normalizer_advances_once_per_step(self, rng):
        dataset, tasks = make_problem(rng)
        trainer = build(
            make_model(rng, tasks), tasks, grad_space="features", feature_ema=0.9
        )
        x, targets = dataset.batch(np.arange(16))
        for _ in range(3):
            losses = trainer.train_step_single(x, targets)
        assert trainer.feature_normalizer.ema.updates == 3
        assert np.all(np.isfinite(losses))

    def test_normalized_training_still_converges(self, rng):
        dataset, tasks = make_problem(rng, conflict=False)
        trainer = build(
            make_model(rng, tasks), tasks,
            grad_space="features", feature_ema=0.5, lr=1e-2,
        )
        history = trainer.fit(dataset, epochs=10, batch_size=20)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0] / 2
