"""Tests for the multi-task trainer: gradient collection, modes, equivalences."""

import numpy as np
import pytest

from repro.arch import HardParameterSharing, LinearHead, MLPEncoder
from repro.balancers import EqualWeighting
from repro.core import MoCoGrad, create_balancer
from repro.data import MULTI_INPUT, SINGLE_INPUT, ArrayDataset, TaskSpec
from repro.nn import Tensor
from repro.nn.functional import mse_loss
from repro.nn.utils import parameter_vector
from repro.training import MTLTrainer


def make_problem(rng, num_tasks=2, n=40, conflict=True):
    """Small single-input regression problem with controllable conflict."""
    x = rng.normal(size=(n, 6))
    w = rng.normal(size=(num_tasks, 6))
    if conflict and num_tasks >= 2:
        w[1] = -w[0] + 0.1 * rng.normal(size=6)
    targets = {f"t{k}": x @ w[k] + 0.05 * rng.normal(size=n) for k in range(num_tasks)}
    dataset = ArrayDataset(x, targets)
    tasks = [
        TaskSpec(
            f"t{k}",
            mse_loss,
            {"rmse": lambda o, t: float(np.sqrt(np.mean((o - t) ** 2)))},
            {"rmse": False},
        )
        for k in range(num_tasks)
    ]
    return dataset, tasks


def make_model(rng, tasks):
    encoder = MLPEncoder(6, [12, 8], rng)
    heads = {task.name: LinearHead(8, 1, rng) for task in tasks}
    return HardParameterSharing(encoder, heads)


class TestConstruction:
    def test_task_mismatch_rejected(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks[:1])
        with pytest.raises(ValueError):
            MTLTrainer(model, tasks, EqualWeighting())

    def test_invalid_mode(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        with pytest.raises(ValueError):
            MTLTrainer(model, tasks, EqualWeighting(), mode="dual")

    def test_feature_mode_requires_single_input(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        with pytest.raises(ValueError):
            MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, grad_space="features")

    def test_invalid_grad_space(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        with pytest.raises(ValueError, match="grad_space"):
            MTLTrainer(model, tasks, EqualWeighting(), grad_space="params")

    def test_invalid_optimizer(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        with pytest.raises(ValueError):
            MTLTrainer(model, tasks, EqualWeighting(), optimizer="lbfgs")


class TestGradientCollection:
    def test_task_gradients_match_manual_backward(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0)
        x, targets = dataset.batch(np.arange(8))
        grads = trainer.task_gradients(x, targets)
        # Manual: backward each task loss separately on a fresh copy.
        from repro.nn.utils import grad_vector

        for k, task in enumerate(tasks):
            model.zero_grad()
            loss = task.loss_fn(model.forward(Tensor(x), task.name), targets[task.name])
            loss.backward()
            np.testing.assert_allclose(
                grads[k], grad_vector(model.shared_parameters()), atol=1e-12
            )

    def test_equal_balancer_matches_total_loss_backward(self, rng):
        """Σ per-task gradients == gradient of the summed loss."""
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0)
        x, targets = dataset.batch(np.arange(10))
        grads = trainer.task_gradients(x, targets)
        model.zero_grad()
        outputs = model.forward_all(Tensor(x))
        total = None
        for task in tasks:
            loss = task.loss_fn(outputs[task.name], targets[task.name])
            total = loss if total is None else total + loss
        total.backward()
        from repro.nn.utils import grad_vector

        np.testing.assert_allclose(
            grads.sum(axis=0), grad_vector(model.shared_parameters()), atol=1e-10
        )


class TestFeatureModeEquivalence:
    def test_feature_and_param_modes_agree_for_equal_weighting(self, rng):
        """With the trivial balancer, balancing feature gradients then one
        shared backward is mathematically identical to summing parameter
        gradients (chain rule) — the paper's §VI-C speedup is exact."""
        dataset, tasks = make_problem(rng)
        seeds = np.random.default_rng(3)
        model_a = make_model(np.random.default_rng(7), tasks)
        model_b = make_model(np.random.default_rng(7), tasks)
        trainer_a = MTLTrainer(model_a, tasks, EqualWeighting(), grad_space="parameters", lr=1e-2, seed=1)
        trainer_b = MTLTrainer(model_b, tasks, EqualWeighting(), grad_space="features", lr=1e-2, seed=1)
        x, targets = dataset.batch(np.arange(16))
        for _ in range(3):
            trainer_a.train_step_single(x, targets)
            trainer_b.train_step_single(x, targets)
        np.testing.assert_allclose(
            parameter_vector(model_a.parameters()),
            parameter_vector(model_b.parameters()),
            atol=1e-10,
        )

    def test_feature_mode_losses_match(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), grad_space="features", seed=0)
        x, targets = dataset.batch(np.arange(8))
        losses = trainer.train_step_single(x, targets)
        assert losses.shape == (2,)
        assert np.all(losses > 0)


class TestTraining:
    def test_loss_decreases_single_input(self, rng):
        dataset, tasks = make_problem(rng, conflict=False)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), lr=1e-2, seed=0)
        history = trainer.fit(dataset, epochs=10, batch_size=16)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0] / 2

    def test_loss_decreases_multi_input(self, rng):
        x1 = rng.normal(size=(40, 6))
        x2 = rng.normal(size=(40, 6))
        w = rng.normal(size=6)
        tasks = [
            TaskSpec("t0", mse_loss, {}, {}),
            TaskSpec("t1", mse_loss, {}, {}),
        ]
        data = {
            "t0": ArrayDataset(x1, x1 @ w),
            "t1": ArrayDataset(x2, x2 @ -w),
        }
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), mode=MULTI_INPUT, lr=1e-2, seed=0)
        history = trainer.fit(data, epochs=10, batch_size=16)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0]

    def test_mocograd_trains(self, rng):
        dataset, tasks = make_problem(rng, conflict=True)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, MoCoGrad(seed=0), lr=1e-2, seed=0)
        history = trainer.fit(dataset, epochs=8, batch_size=16)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0]

    def test_max_steps_per_epoch_respected(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0)
        trainer.fit(dataset, epochs=1, batch_size=4, max_steps_per_epoch=2)
        assert trainer.step_count == 2

    def test_task_specific_gradients_applied(self, rng):
        """Head parameters must move during training."""
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        before = parameter_vector(model.task_specific_parameters("t0"))
        trainer = MTLTrainer(model, tasks, EqualWeighting(), lr=1e-2, seed=0)
        trainer.fit(dataset, epochs=1, batch_size=16)
        after = parameter_vector(model.task_specific_parameters("t0"))
        assert not np.allclose(before, after)

    def test_determinism_same_seed(self, rng):
        dataset, tasks = make_problem(rng)
        finals = []
        for _ in range(2):
            model = make_model(np.random.default_rng(11), tasks)
            trainer = MTLTrainer(model, tasks, MoCoGrad(seed=5), lr=1e-2, seed=5)
            trainer.fit(dataset, epochs=2, batch_size=8)
            finals.append(parameter_vector(model.parameters()))
        np.testing.assert_allclose(finals[0], finals[1])

    def test_timing_recorded(self, rng):
        dataset, tasks = make_problem(rng)
        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, EqualWeighting(), seed=0)
        assert trainer.mean_step_seconds == 0.0
        trainer.fit(dataset, epochs=1, batch_size=16)
        assert trainer.mean_step_seconds > 0.0

    def test_balancer_sees_correct_loss_values(self, rng):
        dataset, tasks = make_problem(rng)

        captured = []

        class Spy(EqualWeighting):
            def balance(self, grads, losses):
                captured.append(losses.copy())
                return super().balance(grads, losses)

        model = make_model(rng, tasks)
        trainer = MTLTrainer(model, tasks, Spy(), seed=0)
        x, targets = dataset.batch(np.arange(8))
        reported = trainer.train_step_single(x, targets)
        np.testing.assert_allclose(captured[0], reported)
