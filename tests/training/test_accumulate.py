"""GCond-style gradient accumulation: sum W micro-steps, resolve once.

Contracts under test (see ``MTLTrainer(accumulate_steps=W)``):

- ``W=1`` is bitwise-identical to the historical per-step path for every
  registered balancer;
- the matrix handed to the balancer at a window boundary is the exact
  mean of the window's per-micro-step task-gradient matrices;
- stateful balancers (MoCoGrad momentum) advance once per *resolve*, not
  once per micro-step;
- a trailing partial window never updates parameters.
"""

import numpy as np
import pytest

from repro.core.balancer import available_balancers, create_balancer
from repro.data import make_synthetic_mtl
from repro.nn.utils import parameter_vector
from repro.training import MTLTrainer

ALL_METHODS = sorted(available_balancers())

BENCH = make_synthetic_mtl(
    num_tasks=3, num_samples=256, pairwise_cosine=-0.3, seed=5
)


def factory():
    return BENCH.build_model("hps", np.random.default_rng(5))


def _fit(balancer_name, *, steps, accumulate=1, record_into=None):
    model = factory()
    balancer = create_balancer(balancer_name, seed=0)
    if record_into is not None:
        original = balancer.balance

        def recording(grads, losses):
            record_into.append((np.copy(grads), np.copy(losses)))
            return original(grads, losses)

        balancer.balance = recording
    trainer = MTLTrainer(
        model,
        BENCH.tasks,
        balancer,
        seed=9,
        optimizer="sgd",
        accumulate_steps=accumulate,
    )
    trainer.fit(BENCH.train, epochs=1, batch_size=16, max_steps_per_epoch=steps)
    return trainer


def _train(balancer_name, *, steps, accumulate=1, record_into=None):
    trainer = _fit(
        balancer_name, steps=steps, accumulate=accumulate, record_into=record_into
    )
    return parameter_vector(trainer.model.parameters())


@pytest.mark.parametrize("method", ALL_METHODS)
def test_accumulate_one_is_bitwise_identical(method):
    baseline = _train(method, steps=4)
    windowed = _train(method, steps=4, accumulate=1)
    assert np.array_equal(baseline, windowed)


def test_window_matrix_is_mean_of_micro_step_matrices():
    # Probe oracle: a W=3 run stopped after 2 micro-steps never resolves,
    # so its parameters never move and ``_acc_grads`` holds the exact
    # two-micro-step sum the W=2 run hands to the balancer (scaled 1/W).
    probe = _fit("mocograd", steps=2, accumulate=3)
    assert probe._micro_steps == 2
    windowed = []
    _fit("mocograd", steps=2, accumulate=2, record_into=windowed)
    assert len(windowed) == 1
    assert np.array_equal(windowed[0][0], probe._acc_grads * 0.5)
    assert np.array_equal(windowed[0][1], probe._acc_losses * 0.5)


def test_momentum_advances_once_per_window():
    calls = []
    _train("mocograd", steps=8, accumulate=4, record_into=calls)
    assert len(calls) == 2  # 8 micro-steps / W=4 → exactly 2 resolves


def test_partial_window_does_not_update_parameters():
    complete = _train("mocograd", steps=2, accumulate=2)
    with_partial_tail = _train("mocograd", steps=3, accumulate=2)
    assert np.array_equal(complete, with_partial_tail)


def test_incomplete_first_window_leaves_parameters_untouched():
    initial = parameter_vector(factory().parameters())
    after_one_micro_step = _train("mocograd", steps=1, accumulate=4)
    assert np.array_equal(initial, after_one_micro_step)


@pytest.mark.parametrize("method", ALL_METHODS)
def test_accumulate_window_trains_every_balancer(method):
    initial = parameter_vector(factory().parameters())
    trained = _train(method, steps=4, accumulate=2)
    assert np.all(np.isfinite(trained))
    assert float(np.max(np.abs(trained - initial))) > 0.0


def test_resolve_accumulated_window_one_is_plain_balance():
    rng = np.random.default_rng(0)
    grads = rng.standard_normal((3, 20))
    losses = rng.random(3)
    for method in ("equal", "pcgrad"):
        direct = create_balancer(method, seed=0).balance(grads, losses)
        resolved = create_balancer(method, seed=0).resolve_accumulated(
            grads, losses, window=1
        )
        assert np.array_equal(direct, resolved)


def test_resolve_accumulated_scales_by_window():
    grads = np.ones((2, 8))
    losses = np.ones(2)
    balancer = create_balancer("equal", seed=0)
    resolved = balancer.resolve_accumulated(grads * 4.0, losses * 4.0, window=4)
    assert np.array_equal(resolved, balancer.balance(grads, losses))


def test_resolve_accumulated_rejects_bad_window():
    balancer = create_balancer("equal", seed=0)
    with pytest.raises(ValueError, match="window"):
        balancer.resolve_accumulated(np.ones((2, 4)), np.ones(2), window=0)


def test_trainer_rejects_bad_accumulate_config():
    with pytest.raises(ValueError, match="accumulate_steps"):
        MTLTrainer(
            factory(), BENCH.tasks, create_balancer("equal", seed=0), accumulate_steps=0
        )


def test_accumulate_works_in_feature_space():
    # The historical grad_source gate is lifted: feature-space balancing and
    # GCond-style accumulation compose (see test_grad_space.py for the
    # window-mean semantics).
    trainer = MTLTrainer(
        factory(),
        BENCH.tasks,
        create_balancer("mocograd", seed=0),
        grad_space="features",
        accumulate_steps=2,
        seed=9,
        optimizer="sgd",
    )
    initial = parameter_vector(factory().parameters())
    trainer.fit(BENCH.train, epochs=1, batch_size=16, max_steps_per_epoch=4)
    trained = parameter_vector(trainer.model.parameters())
    assert np.all(np.isfinite(trained))
    assert float(np.max(np.abs(trained - initial))) > 0.0
