"""Arena-backed trainer: flat-vs-loop equivalence across the whole stack.

The acceptance bar for the parameter arena: for every registered optimizer,
every architecture and both backward modes, training with the fused flat
optimizer step must reproduce the per-parameter loop oracle bitwise —
including telemetry counters — and the arena must survive checkpoint
restores and flat-vector parameter writes.
"""

import numpy as np
import pytest

from repro.balancers import EqualWeighting
from repro.data import TaskSpec
from repro.nn.functional import mse_loss
from repro.nn.utils import parameter_vector, set_parameters_from_vector
from repro.obs import Telemetry
from repro.training import MTLTrainer

from ..arch.test_architectures import FACTORIES
from ..arch.test_ple import make_ple

ALL_FACTORIES = dict(FACTORIES, ple=make_ple)
OPTIMIZERS = ("sgdm", "adam", "adagrad", "rmsprop")


def make_tasks(names=("a", "b")):
    return [TaskSpec(name, mse_loss, {}, {}) for name in names]


def make_batch(rng, n=12):
    x = rng.normal(size=(n, 6))
    targets = {"a": rng.normal(size=n), "b": rng.normal(size=n)}
    return x, targets


def build_trainer(name, telemetry=None, **kwargs):
    model = ALL_FACTORIES[name](np.random.default_rng(5))
    return MTLTrainer(
        model,
        make_tasks(),
        EqualWeighting(),
        seed=0,
        lr=1e-2,
        telemetry=telemetry if telemetry is not None else Telemetry(),
        **kwargs,
    )


def counter_snapshots(telemetry):
    """All counter values, keyed by (name, labels) — for bitwise comparison."""
    return {
        (snap["name"], tuple(sorted(snap["labels"].items()))): snap["value"]
        for snap in telemetry.registry.snapshot()
        if snap["kind"] == "counter"
    }


def run_steps(trainer, steps=3):
    x, targets = make_batch(np.random.default_rng(1))
    for _ in range(steps):
        trainer.train_step_single(x, targets)
    return parameter_vector(trainer.model.parameters())


class TestFlatLoopTrainingEquivalence:
    @pytest.mark.parametrize("backward_mode", ["multi_root", "per_task"])
    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    @pytest.mark.parametrize("arch", sorted(ALL_FACTORIES))
    def test_trajectory_and_counters_identical(self, arch, optimizer, backward_mode):
        finals, counters = {}, {}
        for step_mode in ("loop", "flat"):
            telemetry = Telemetry()
            trainer = build_trainer(
                arch,
                telemetry=telemetry,
                optimizer=optimizer,
                backward_mode=backward_mode,
                step_mode=step_mode,
            )
            assert trainer.optimizer.step_mode == step_mode
            finals[step_mode] = run_steps(trainer)
            counters[step_mode] = counter_snapshots(telemetry)
        np.testing.assert_array_equal(finals["flat"], finals["loop"])
        assert counters["flat"] == counters["loop"]

    def test_arena_matches_arena_free_reference(self):
        """Packing alone must not change the training trajectory."""
        finals = {}
        for use_arena in (True, False):
            trainer = build_trainer("hps", optimizer="sgdm", use_arena=use_arena)
            assert (trainer.arena is not None) is use_arena
            finals[use_arena] = run_steps(trainer)
        np.testing.assert_array_equal(finals[True], finals[False])

    def test_feature_grad_space_flat_matches_loop(self):
        finals = {}
        for step_mode in ("loop", "flat"):
            trainer = build_trainer("hps", grad_space="features", step_mode=step_mode)
            finals[step_mode] = run_steps(trainer)
        np.testing.assert_array_equal(finals["flat"], finals["loop"])


class TestTrainerArenaWiring:
    def test_shared_partition_is_contiguous_prefix(self):
        trainer = build_trainer("hps")
        shared = trainer.model.shared_parameters()
        assert trainer.arena is not None
        assert trainer.arena.segment(shared) == slice(0, sum(p.size for p in shared))
        assert np.shares_memory(trainer._shared_grad_view, trainer.arena.grad)

    def test_optimizer_defaults_to_flat_over_whole_arena(self):
        trainer = build_trainer("cgc")
        assert trainer.optimizer.step_mode == "flat"
        assert trainer.optimizer.arena is trainer.arena
        assert trainer.optimizer._flat_data.size == trainer.arena.size

    def test_second_trainer_reuses_existing_arena(self):
        trainer = build_trainer("hps")
        second = MTLTrainer(
            trainer.model, make_tasks(), EqualWeighting(), seed=0, telemetry=Telemetry()
        )
        assert second.arena is trainer.arena

    def test_flat_step_mode_without_arena_rejected(self):
        with pytest.raises(ValueError, match="flat"):
            build_trainer("hps", use_arena=False, step_mode="flat")

    def test_arena_rebinding_after_set_parameters_from_vector(self):
        trainer = build_trainer("hps")
        params = trainer.model.parameters()
        replacement = np.arange(float(trainer.arena.size))
        set_parameters_from_vector(params, replacement)
        np.testing.assert_array_equal(trainer.arena.data, replacement)
        # Training still drives the packed buffers afterwards.
        run_steps(trainer, steps=1)
        assert not np.array_equal(trainer.arena.data, replacement)
        for param in params:
            assert np.shares_memory(param.data, trainer.arena.data)

    def test_checkpoint_round_trip_through_trainer(self, tmp_path):
        from repro.nn import load_checkpoint, save_checkpoint

        trainer = build_trainer("hps")
        run_steps(trainer, steps=1)
        snapshot = parameter_vector(trainer.model.parameters())
        path = save_checkpoint(trainer.model, tmp_path / "ckpt.npz")
        run_steps(trainer, steps=2)
        load_checkpoint(trainer.model, path)
        np.testing.assert_array_equal(
            parameter_vector(trainer.model.parameters()), snapshot
        )
        for param in trainer.model.parameters():
            assert np.shares_memory(param.data, trainer.arena.data)
