"""per_task vs multi_root backward-mode equivalence across architectures."""

import numpy as np
import pytest

from repro.balancers import EqualWeighting
from repro.data import MULTI_INPUT, TaskSpec
from repro.nn.functional import mse_loss
from repro.nn.utils import parameter_vector
from repro.training import MTLTrainer

from ..arch.test_architectures import FACTORIES
from ..arch.test_ple import make_ple

ALL_FACTORIES = dict(FACTORIES, ple=make_ple)


def make_tasks(names=("a", "b")):
    return [TaskSpec(name, mse_loss, {}, {}) for name in names]


def make_batch(rng, n=12):
    x = rng.normal(size=(n, 6))
    targets = {"a": rng.normal(size=n), "b": rng.normal(size=n)}
    return x, targets


def build_trainer(name, backward_mode, **kwargs):
    model = ALL_FACTORIES[name](np.random.default_rng(5))
    return MTLTrainer(
        model, make_tasks(), EqualWeighting(), seed=0, backward_mode=backward_mode, **kwargs
    )


class TestGradientEquivalence:
    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_task_gradients_identical(self, rng, name):
        x, targets = make_batch(rng)
        grads = {}
        for mode in ("per_task", "multi_root"):
            grads[mode] = np.asarray(build_trainer(name, mode).task_gradients(x, targets))
        np.testing.assert_allclose(
            grads["multi_root"], grads["per_task"], atol=1e-12, rtol=0
        )

    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_single_input_training_trajectory_identical(self, rng, name):
        x, targets = make_batch(rng)
        params = {}
        for mode in ("per_task", "multi_root"):
            trainer = build_trainer(name, mode)
            for _ in range(3):
                losses = trainer.train_step_single(x, targets)
            params[mode] = parameter_vector(trainer.model.parameters())
        np.testing.assert_allclose(
            params["multi_root"], params["per_task"], atol=1e-12, rtol=0
        )

    def test_multi_input_training_trajectory_identical(self, rng):
        x_a, targets = make_batch(rng)
        x_b = rng.normal(size=(12, 6))
        batches = {"a": (x_a, targets["a"]), "b": (x_b, targets["b"])}
        params = {}
        for mode in ("per_task", "multi_root"):
            trainer = build_trainer("hps", mode, mode=MULTI_INPUT)
            for _ in range(3):
                trainer.train_step_multi(batches)
            params[mode] = parameter_vector(trainer.model.parameters())
        np.testing.assert_allclose(
            params["multi_root"], params["per_task"], atol=1e-12, rtol=0
        )

    def test_feature_grad_space_identical(self, rng):
        x, targets = make_batch(rng)
        params = {}
        for mode in ("per_task", "multi_root"):
            trainer = build_trainer("hps", mode, grad_space="features")
            for _ in range(3):
                trainer.train_step_single(x, targets)
            params[mode] = parameter_vector(trainer.model.parameters())
        np.testing.assert_allclose(
            params["multi_root"], params["per_task"], atol=1e-12, rtol=0
        )


class TestBackwardModeOption:
    def test_invalid_backward_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="backward_mode"):
            build_trainer("hps", "both")

    def test_default_is_multi_root(self, rng):
        model = ALL_FACTORIES["hps"](np.random.default_rng(5))
        trainer = MTLTrainer(model, make_tasks(), EqualWeighting(), seed=0)
        assert trainer.backward_mode == "multi_root"

    def test_workspace_reused_across_steps(self, rng):
        x, targets = make_batch(rng)
        trainer = build_trainer("hps", "multi_root")
        trainer.train_step_single(x, targets)
        (first,) = trainer._grad_workspaces.values()
        trainer.train_step_single(x, targets)
        (second,) = trainer._grad_workspaces.values()
        assert second is first

    def test_task_gradients_returns_fresh_matrix(self, rng):
        x, targets = make_batch(rng)
        trainer = build_trainer("hps", "multi_root")
        first = trainer.task_gradients(x, targets)
        second = trainer.task_gradients(x, targets)
        assert first is not second
        np.testing.assert_allclose(first, second, atol=1e-12, rtol=0)

    def test_task_backward_spans_per_task(self, rng):
        from repro.obs import Telemetry

        x, targets = make_batch(rng)
        model = ALL_FACTORIES["hps"](np.random.default_rng(5))
        telemetry = Telemetry()
        trainer = MTLTrainer(
            model,
            make_tasks(),
            EqualWeighting(),
            seed=0,
            backward_mode="multi_root",
            telemetry=telemetry,
        )
        trainer.train_step_single(x, targets)
        assert len(telemetry.durations("step/backward")) == 1
        assert len(telemetry.durations("step/backward/task_backward")) == 2
