"""API-quality gates: docstrings and registry consistency across the package.

Deliverable-level checks: every public item (everything exported through an
``__all__``) carries a docstring, and the module tree imports cleanly.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.core",
    "repro.balancers",
    "repro.arch",
    "repro.data",
    "repro.metrics",
    "repro.training",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    exported = getattr(module, "__all__", [])
    for name in exported:
        item = getattr(module, name)
        if inspect.ismodule(item) or isinstance(item, (str, tuple, dict, list)):
            continue
        assert inspect.getdoc(item), f"{module.__name__}.{name} lacks a docstring"
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_") or not callable(method):
                    continue
                # inspect.getdoc on the *class attribute lookup* inherits
                # docstrings through the MRO — an override that keeps the
                # documented base contract counts as documented.
                assert inspect.getdoc(getattr(item, method_name)), (
                    f"{module.__name__}.{name}.{method_name} lacks a docstring"
                )


def test_every_balancer_name_matches_registry_key():
    import repro.balancers  # noqa: F401
    from repro.core import available_balancers, create_balancer

    for name in available_balancers():
        assert create_balancer(name).name == name


def test_version_exposed():
    assert repro.__version__
