"""Tests for the GradNorm extension balancer."""

import numpy as np
import pytest

from repro.balancers import GradNorm
from repro.core import create_balancer


class TestGradNorm:
    def test_registered(self):
        assert isinstance(create_balancer("gradnorm"), GradNorm)

    def test_initial_weights_uniform(self):
        gn = GradNorm()
        gn.reset(3)
        np.testing.assert_allclose(gn.weights, np.ones(3))

    def test_weights_sum_preserved(self, rng):
        gn = GradNorm(seed=0)
        gn.reset(3)
        for _ in range(10):
            gn.balance(rng.normal(size=(3, 8)), np.abs(rng.normal(size=3)) + 0.1)
        assert gn.weights.sum() == pytest.approx(3.0)

    def test_weights_stay_positive(self, rng):
        gn = GradNorm(weight_lr=0.5, seed=0)
        gn.reset(2)
        for _ in range(30):
            gn.balance(rng.normal(size=(2, 6)) * 10, np.abs(rng.normal(size=2)) + 0.1)
        assert np.all(gn.weights > 0)

    def test_slow_task_upweighted(self):
        """A task whose loss stalls (high inverse training rate) gains weight."""
        gn = GradNorm(alpha=1.5, weight_lr=0.1, seed=0)
        gn.reset(2)
        grads = np.eye(2)
        # Task 0 keeps its initial loss; task 1 improves 10×.
        gn.balance(grads, np.array([1.0, 1.0]))
        for _ in range(20):
            gn.balance(grads, np.array([1.0, 0.1]))
        assert gn.weights[0] > gn.weights[1]

    def test_large_gradient_norm_downweighted(self):
        """With equal training rates, the dominant-norm task loses weight."""
        gn = GradNorm(alpha=1.0, weight_lr=0.05, seed=0)
        gn.reset(2)
        grads = np.array([[10.0, 0.0], [0.0, 0.1]])
        for _ in range(20):
            gn.balance(grads, np.array([1.0, 1.0]))
        assert gn.weights[0] < gn.weights[1]

    def test_output_is_weighted_sum(self, rng):
        gn = GradNorm(seed=0)
        gn.reset(2)
        grads = rng.normal(size=(2, 5))
        out = gn.balance(grads, np.ones(2))
        np.testing.assert_allclose(out, gn.weights @ grads)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradNorm(alpha=-1.0)
        with pytest.raises(ValueError):
            GradNorm(weight_lr=0.0)
