"""Tests for the uncertainty-weighting extension balancer."""

import numpy as np
import pytest

from repro.balancers import UncertaintyWeighting
from repro.core import create_balancer


class TestUncertaintyWeighting:
    def test_registered(self):
        assert isinstance(create_balancer("uncertainty"), UncertaintyWeighting)

    def test_initial_weights_unit(self):
        balancer = UncertaintyWeighting()
        balancer.reset(3)
        np.testing.assert_allclose(balancer.weights(), np.ones(3))

    def test_noisy_task_downweighted(self):
        """A task with a persistently large loss gets σ² up → weight down."""
        balancer = UncertaintyWeighting(s_lr=0.1)
        balancer.reset(2)
        grads = np.eye(2)
        for _ in range(50):
            balancer.balance(grads, np.array([10.0, 0.4]))
        weights = balancer.weights()
        assert weights[0] < weights[1]

    def test_equilibrium_at_loss_half_inverse(self):
        """s converges where e^{−s}L = 1/2, i.e. weight = 1/(2L)."""
        balancer = UncertaintyWeighting(s_lr=0.2)
        balancer.reset(1)
        for _ in range(600):
            balancer.balance(np.ones((1, 3)), np.array([4.0]))
        assert balancer.weights()[0] == pytest.approx(1.0 / 8.0, rel=1e-2)

    def test_output_is_weighted_sum(self, rng):
        balancer = UncertaintyWeighting()
        balancer.reset(2)
        grads = rng.normal(size=(2, 6))
        out = balancer.balance(grads, np.ones(2))
        # First call uses the pre-update (unit) weights.
        np.testing.assert_allclose(out, grads.sum(axis=0))

    def test_log_variance_clamped(self):
        balancer = UncertaintyWeighting(s_lr=5.0, clamp=2.0)
        balancer.reset(1)
        for _ in range(100):
            balancer.balance(np.ones((1, 2)), np.array([1000.0]))
        assert abs(balancer.log_variance[0]) <= 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UncertaintyWeighting(s_lr=0.0)
        with pytest.raises(ValueError):
            UncertaintyWeighting(clamp=0.0)
        with pytest.raises(RuntimeError):
            UncertaintyWeighting().weights()
