"""Per-method semantic tests for the ten baseline balancers."""

import numpy as np
import pytest

from repro.balancers import (
    CAGrad,
    DWA,
    EqualWeighting,
    GradDrop,
    GradVac,
    IMTL,
    MGDA,
    NashMTL,
    PCGrad,
    RLW,
    gradvac_coefficient,
    min_norm_point,
    project_conflicting,
    solve_nash_weights,
)


class TestEqualWeighting:
    def test_is_plain_sum(self, rng):
        grads = rng.normal(size=(3, 8))
        out = EqualWeighting().balance(grads, np.ones(3))
        np.testing.assert_allclose(out, grads.sum(axis=0))


class TestDWA:
    def test_uniform_weights_before_history(self):
        dwa = DWA()
        dwa.reset(3)
        np.testing.assert_allclose(dwa.weights(), np.ones(3))

    def test_weights_sum_to_k(self):
        dwa = DWA()
        dwa.reset(2)
        dwa.balance(np.ones((2, 4)), np.array([1.0, 2.0]))
        dwa.balance(np.ones((2, 4)), np.array([0.5, 2.0]))
        weights = dwa.weights()
        assert weights.sum() == pytest.approx(2.0)

    def test_stalled_task_upweighted(self):
        """A task whose loss stopped improving gets a larger weight."""
        dwa = DWA(temperature=1.0)
        dwa.reset(2)
        dwa.balance(np.ones((2, 4)), np.array([1.0, 1.0]))
        dwa.balance(np.ones((2, 4)), np.array([1.0, 0.5]))  # task 1 improved
        weights = dwa.weights()
        assert weights[0] > weights[1]

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            DWA(temperature=0.0)


class TestMGDA:
    def test_two_task_min_norm_closed_form(self):
        grads = np.array([[1.0, 0.0], [0.0, 2.0]])
        weights = min_norm_point(grads)
        # Analytic: γ = v2·(v2−v1)/‖v1−v2‖² = 4/5 for these vectors.
        np.testing.assert_allclose(weights, [0.8, 0.2], atol=1e-8)
        combined = weights @ grads
        # min-norm point is orthogonal to (g1 − g2)
        assert abs(combined @ (grads[0] - grads[1])) < 1e-8

    def test_identical_gradients_any_simplex_point(self, rng):
        g = rng.normal(size=6)
        weights = min_norm_point(np.stack([g, g]))
        assert weights.sum() == pytest.approx(1.0)

    def test_min_norm_smaller_than_average(self, rng):
        grads = rng.normal(size=(4, 10))
        weights = min_norm_point(grads)
        min_norm = np.linalg.norm(weights @ grads)
        avg_norm = np.linalg.norm(grads.mean(axis=0))
        assert min_norm <= avg_norm + 1e-9

    def test_weights_on_simplex(self, rng):
        for k in (2, 3, 5):
            weights = min_norm_point(rng.normal(size=(k, 12)))
            assert weights.sum() == pytest.approx(1.0, abs=1e-6)
            assert np.all(weights >= -1e-9)

    def test_pareto_stationary_point_zero_direction(self):
        """Opposite gradients ⇒ min-norm point ≈ 0 (Pareto stationary)."""
        grads = np.array([[1.0, 0.0], [-1.0, 0.0]])
        out = MGDA().balance(grads, np.ones(2))
        np.testing.assert_allclose(out, np.zeros(2), atol=1e-8)

    def test_normalization_options(self, rng):
        grads = rng.normal(size=(3, 8))
        for norm in ("none", "l2", "loss"):
            out = MGDA(normalization=norm).balance(grads, np.abs(rng.normal(size=3)) + 0.1)
            assert np.all(np.isfinite(out))

    def test_bad_normalization(self):
        with pytest.raises(ValueError):
            MGDA(normalization="max")


class TestPCGrad:
    def test_projection_removes_conflict(self, rng):
        for _ in range(10):
            a, b = rng.normal(size=6), rng.normal(size=6)
            projected = project_conflicting(a, b)
            assert projected @ b >= -1e-9

    def test_no_conflict_no_change(self):
        a = np.array([1.0, 1.0])
        b = np.array([1.0, 0.0])
        np.testing.assert_allclose(project_conflicting(a, b), a)

    def test_projection_formula(self):
        a = np.array([1.0, -1.0])
        b = np.array([0.0, 1.0])
        np.testing.assert_allclose(project_conflicting(a, b), [1.0, 0.0])

    def test_zero_partner_no_change(self):
        a = np.array([1.0, -1.0])
        np.testing.assert_allclose(project_conflicting(a, np.zeros(2)), a)

    def test_balance_equals_sum_when_aligned(self, rng):
        base = rng.normal(size=8)
        grads = np.stack([base, base * 2, base * 0.5])
        out = PCGrad(seed=0).balance(grads, np.ones(3))
        np.testing.assert_allclose(out, grads.sum(axis=0))

    def test_two_task_conflict_output(self):
        grads = np.array([[1.0, 0.0], [-1.0, 1.0]])
        out = PCGrad(seed=0).balance(grads, np.ones(2))
        # Each gradient projected on the other's normal plane, then summed.
        g0 = grads[0] - (grads[0] @ grads[1]) / (grads[1] @ grads[1]) * grads[1]
        g1 = grads[1] - (grads[1] @ grads[0]) / (grads[0] @ grads[0]) * grads[0]
        np.testing.assert_allclose(out, g0 + g1)


class TestGradDrop:
    def test_sign_consistent_coordinates_untouched(self, rng):
        grads = np.abs(rng.normal(size=(3, 10)))  # all positive
        out = GradDrop(seed=0).balance(grads, np.ones(3))
        np.testing.assert_allclose(out, grads.sum(axis=0))

    def test_each_coordinate_single_sign(self, rng):
        grads = rng.normal(size=(4, 50))
        out = GradDrop(seed=0).balance(grads, np.ones(4))
        positive_sum = np.where(grads > 0, grads, 0).sum(axis=0)
        negative_sum = np.where(grads < 0, grads, 0).sum(axis=0)
        for value, pos, neg in zip(out, positive_sum, negative_sum):
            assert value == pytest.approx(pos) or value == pytest.approx(neg)

    def test_full_leak_is_equal_weighting(self, rng):
        grads = rng.normal(size=(3, 20))
        out = GradDrop(leak=1.0, seed=0).balance(grads, np.ones(3))
        np.testing.assert_allclose(out, grads.sum(axis=0))

    def test_invalid_leak(self):
        with pytest.raises(ValueError):
            GradDrop(leak=1.5)

    def test_dominant_sign_kept_more_often(self):
        rng_grads = np.zeros((3, 2000))
        rng_grads[0] = 1.0
        rng_grads[1] = 1.0
        rng_grads[2] = -0.5
        out = GradDrop(seed=0).balance(rng_grads, np.ones(3))
        # P = 0.5(1 + 1.5/2.5) = 0.8 → ~80% of coordinates keep positive part
        kept_positive = np.mean(out > 0)
        assert 0.7 < kept_positive < 0.9


class TestGradVac:
    def test_coefficient_zero_when_target_met(self):
        assert gradvac_coefficient(1.0, 1.0, cos_current=0.5, cos_target=0.5) == pytest.approx(0.0)

    def test_alignment_reaches_target(self, rng):
        """After adding α·g_j the similarity equals the target."""
        for _ in range(10):
            gi, gj = rng.normal(size=8), rng.normal(size=8)
            target = 0.3
            cos = float(gi @ gj / (np.linalg.norm(gi) * np.linalg.norm(gj)))
            if cos >= target:
                continue
            alpha = gradvac_coefficient(
                np.linalg.norm(gi), np.linalg.norm(gj), cos, target
            )
            adjusted = gi + alpha * gj
            new_cos = adjusted @ gj / (np.linalg.norm(adjusted) * np.linalg.norm(gj))
            assert new_cos == pytest.approx(target, abs=1e-6)

    def test_targets_track_ema(self):
        vac = GradVac(ema_beta=0.5, seed=0)
        vac.reset(2)
        grads = np.array([[1.0, 0.0], [1.0, 0.0]])  # cos = 1
        vac.balance(grads, np.ones(2))
        assert vac.similarity_targets[0, 1] == pytest.approx(0.5)

    def test_no_manipulation_when_above_target(self, rng):
        vac = GradVac(seed=0)
        vac.reset(2)
        base = rng.normal(size=6)
        grads = np.stack([base, base])  # cos = 1 > target 0
        out = vac.balance(grads, np.ones(2))
        np.testing.assert_allclose(out, grads.sum(axis=0))

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            GradVac(ema_beta=0.0)

    def test_targets_shape_mismatch_raises_instead_of_silent_reset(self):
        from repro.obs import Telemetry

        vac = GradVac(ema_beta=0.5, seed=0)
        vac.telemetry = Telemetry()
        vac.reset(2)
        grads = np.array([[1.0, 0.0], [1.0, 0.0]])
        vac.balance(grads, np.ones(2))
        # Simulate stale state from an external task-count change.
        stale = np.full((3, 3), 0.25)
        vac._targets = stale
        with pytest.raises(ValueError, match="reset\\(\\)"):
            vac.balance(grads, np.ones(2))
        # The EMA history survives the rejected call untouched.
        np.testing.assert_array_equal(vac.similarity_targets, stale)
        counter = vac.telemetry.counter("gradvac_targets_shape_mismatch_total")
        assert counter.value == 1
        # reset() is the documented recovery path.
        vac.reset(2)
        vac.balance(grads, np.ones(2))
        assert vac.similarity_targets.shape == (2, 2)


class TestCAGrad:
    def test_reduces_to_average_when_aligned(self, rng):
        base = np.abs(rng.normal(size=6)) + 0.5
        grads = np.stack([base, base])
        out = CAGrad(c=0.5, rescale=False, seed=0).balance(grads, np.ones(2))
        # g_w = g0 = base; update = g0 (1 + c) — collinear with the average.
        cosine = out @ base / (np.linalg.norm(out) * np.linalg.norm(base))
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_constraint_satisfied(self, rng):
        """‖d − g₀‖ ≤ c‖g₀‖ (before rescaling)."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            grads = local.normal(size=(3, 10))
            c = 0.5
            out = CAGrad(c=c, rescale=False, seed=0).balance(grads, np.ones(3))
            g0 = grads.mean(axis=0)
            assert np.linalg.norm(out - g0) <= c * np.linalg.norm(g0) + 1e-6

    def test_worst_task_improvement_better_than_average(self):
        """CAGrad's defining property: min_k ⟨g_k, d⟩ ≥ min_k ⟨g_k, g₀⟩."""
        grads = np.array([[1.0, 0.1], [-0.8, 0.4], [0.3, -0.9]])
        out = CAGrad(c=0.5, rescale=False, seed=0).balance(grads, np.ones(3))
        g0 = grads.mean(axis=0)
        assert grads @ out @ np.ones(3) is not None  # sanity
        assert (grads @ out).min() >= (grads @ g0).min() - 1e-6

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            CAGrad(c=1.0)

    def test_rescale_shrinks(self, rng):
        grads = rng.normal(size=(2, 6))
        raw = CAGrad(c=0.5, rescale=False, seed=0).balance(grads, np.ones(2))
        scaled = CAGrad(c=0.5, rescale=True, seed=0).balance(grads, np.ones(2))
        np.testing.assert_allclose(scaled * (1 + 0.25), raw)


class TestIMTL:
    def test_equal_projections_property(self, rng):
        """IMTL-G: the combined gradient projects equally onto every unit g_k."""
        imtl = IMTL(use_loss_balance=False)
        grads = rng.normal(size=(3, 12))
        out = imtl.balance(grads, np.ones(3))
        units = grads / np.linalg.norm(grads, axis=1, keepdims=True)
        projections = units @ out
        np.testing.assert_allclose(projections, projections[0] * np.ones(3), rtol=1e-6)

    def test_single_task_identity(self, rng):
        imtl = IMTL(use_loss_balance=False)
        grads = rng.normal(size=(1, 5))
        np.testing.assert_allclose(imtl.balance(grads, np.ones(1)), grads[0])

    def test_loss_scales_move_toward_unit_scale(self):
        imtl = IMTL(use_loss_balance=True, loss_lr=0.1)
        imtl.reset(2)
        for _ in range(50):
            imtl.balance(np.eye(2), np.array([10.0, 0.1]))
        scales = imtl.loss_scales()
        # Large loss gets scaled down, small loss scaled up.
        assert scales[0] < 1.0 < scales[1]

    def test_loss_scales_requires_reset(self):
        with pytest.raises(RuntimeError):
            IMTL().loss_scales()


class TestRLW:
    def test_weights_random_but_seeded(self, rng):
        grads = rng.normal(size=(3, 8))
        a = RLW(seed=1).balance(grads, np.ones(3))
        b = RLW(seed=1).balance(grads, np.ones(3))
        c = RLW(seed=2).balance(grads, np.ones(3))
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_output_in_convex_cone(self, rng):
        """Output is a positive combination of task gradients scaled by K."""
        grads = np.eye(3)
        out = RLW(seed=0).balance(grads, np.ones(3))
        assert np.all(out > 0)
        assert out.sum() == pytest.approx(3.0)


class TestNashMTL:
    def test_optimality_condition(self, rng):
        """Solution satisfies GᵀG α = 1/α."""
        grads = rng.normal(size=(3, 10))
        gram = grads @ grads.T
        alpha = solve_nash_weights(gram)
        residual = gram @ alpha - 1.0 / alpha
        assert np.max(np.abs(residual)) < 1e-6

    def test_single_task_closed_form(self):
        gram = np.array([[4.0]])  # ‖g‖² = 4 ⇒ α = 1/‖g‖ = 0.5
        alpha = solve_nash_weights(gram)
        np.testing.assert_allclose(alpha, [0.5], rtol=1e-6)

    def test_orthogonal_tasks_closed_form(self):
        """For orthogonal gradients α_k = 1/‖g_k‖."""
        gram = np.diag([4.0, 9.0])
        alpha = solve_nash_weights(gram)
        np.testing.assert_allclose(alpha, [0.5, 1.0 / 3.0], rtol=1e-6)

    def test_weights_positive(self, rng):
        grads = rng.normal(size=(4, 15))
        alpha = solve_nash_weights(grads @ grads.T)
        assert np.all(alpha > 0)

    def test_update_every_caches_weights(self, rng):
        nash = NashMTL(update_weights_every=10, seed=0)
        nash.reset(2)
        nash.balance(rng.normal(size=(2, 6)), np.ones(2))
        cached = nash.weights.copy()
        nash.balance(rng.normal(size=(2, 6)), np.ones(2))
        np.testing.assert_allclose(nash.weights, cached)

    def test_max_norm_caps_update(self, rng):
        nash = NashMTL(max_norm=0.1, seed=0)
        out = nash.balance(rng.normal(size=(3, 8)) * 100, np.ones(3))
        assert np.linalg.norm(out) <= 0.1 + 1e-9

    def test_degenerate_zero_gradients(self):
        nash = NashMTL(seed=0)
        out = nash.balance(np.zeros((3, 5)), np.ones(3))
        np.testing.assert_allclose(out, np.zeros(5))

    def test_invalid_update_every(self):
        with pytest.raises(ValueError):
            NashMTL(update_weights_every=0)
