"""Loop vs vectorized pairwise-kernel equivalence (PR 4 tentpole).

The vectorized kernels must be a pure performance change: for every
registered balancer, every task count, and every step of a multi-step
trajectory, ``pairwise_mode="vectorized"`` must reproduce the
``pairwise_mode="loop"`` reference — outputs to within fp tolerance and
telemetry counters *bitwise identical*.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.balancers  # noqa: F401 - triggers registration
from repro.core import available_balancers, create_balancer
from repro.core.mocograd import MoCoGrad
from repro.obs import Telemetry

TASK_COUNTS = (2, 4, 8, 16)
DIM = 12
STEPS = 6


def make_balancer(name: str, mode: str, **kwargs):
    """A balancer pinned to ``mode`` with small-K dispatch disabled.

    Not every balancer constructor takes ``pairwise_mode`` (only the ones
    with pairwise kernels do), so the mode is set post-construction; the
    dispatch threshold is zeroed so "vectorized" really runs the
    vectorized kernel even at K=2.
    """
    balancer = create_balancer(name, seed=0, **kwargs)
    balancer.pairwise_mode = mode
    balancer.vectorize_min_tasks = 0
    balancer.telemetry = Telemetry()
    return balancer


def counter_values(balancer) -> dict:
    """``{(name, sorted label items): value}`` for every counter series."""
    return {
        (m["name"], tuple(sorted(m["labels"].items()))): m["value"]
        for m in balancer.telemetry.registry.snapshot()
        if m["kind"] == "counter"
    }


def run_trajectory(balancer, num_tasks: int, steps: int = STEPS):
    rng = np.random.default_rng(7)
    balancer.reset(num_tasks)
    outputs = []
    for _ in range(steps):
        grads = rng.normal(size=(num_tasks, DIM))
        losses = rng.uniform(0.1, 2.0, size=num_tasks)
        outputs.append(balancer.balance(grads, losses))
    return outputs


def assert_modes_match(name: str, num_tasks: int, **kwargs):
    loop = make_balancer(name, "loop", **kwargs)
    vectorized = make_balancer(name, "vectorized", **kwargs)
    loop_outputs = run_trajectory(loop, num_tasks)
    vec_outputs = run_trajectory(vectorized, num_tasks)
    for step, (expected, actual) in enumerate(zip(loop_outputs, vec_outputs)):
        np.testing.assert_allclose(
            actual,
            expected,
            rtol=0.0,
            atol=1e-9,
            err_msg=f"{name} K={num_tasks} diverged at step {step}",
        )
    assert counter_values(vectorized) == counter_values(loop), (
        f"{name} K={num_tasks}: telemetry counters differ between modes"
    )


@pytest.mark.parametrize("num_tasks", TASK_COUNTS)
@pytest.mark.parametrize("name", sorted(available_balancers()))
def test_vectorized_matches_loop(name, num_tasks):
    assert_modes_match(name, num_tasks)


@pytest.mark.parametrize("num_tasks", TASK_COUNTS)
def test_mocograd_calibrated_momentum_source(num_tasks):
    assert_modes_match("mocograd", num_tasks, momentum_source="calibrated")


@pytest.mark.parametrize("num_tasks", (2, 8))
def test_mocograd_per_pair_ignores_mode(num_tasks):
    """per_pair momentum mutates mid-loop, so both modes run the same
    sequential kernel and must agree exactly."""
    loop = make_balancer("mocograd", "loop", momentum_update="per_pair")
    vectorized = make_balancer("mocograd", "vectorized", momentum_update="per_pair")
    for expected, actual in zip(
        run_trajectory(loop, num_tasks), run_trajectory(vectorized, num_tasks)
    ):
        np.testing.assert_array_equal(actual, expected)


class TestMomentumStateEquivalence:
    @pytest.mark.parametrize("num_tasks", TASK_COUNTS)
    def test_momentum_trajectories_match(self, num_tasks):
        loop = make_balancer("mocograd", "loop")
        vectorized = make_balancer("mocograd", "vectorized")
        run_trajectory(loop, num_tasks)
        run_trajectory(vectorized, num_tasks)
        np.testing.assert_allclose(
            vectorized.momentum, loop.momentum, rtol=0.0, atol=1e-9
        )

    def test_gradvac_targets_match(self):
        loop = make_balancer("gradvac", "loop")
        vectorized = make_balancer("gradvac", "vectorized")
        run_trajectory(loop, 8)
        run_trajectory(vectorized, 8)
        np.testing.assert_allclose(
            vectorized.similarity_targets,
            loop.similarity_targets,
            rtol=0.0,
            atol=1e-9,
        )


class TestDispatch:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="pairwise_mode"):
            MoCoGrad(pairwise_mode="simd")

    def test_default_mode_is_vectorized(self):
        assert MoCoGrad().pairwise_mode == "vectorized"

    def test_small_k_dispatches_to_loop_kernel(self):
        balancer = MoCoGrad()
        assert balancer.vectorize_min_tasks == 4
        assert not balancer._use_vectorized(2)
        assert balancer._use_vectorized(4)

    def test_pcgrad_raises_dispatch_threshold(self):
        pcgrad = create_balancer("pcgrad")
        assert pcgrad.vectorize_min_tasks == 6
        assert not pcgrad._use_vectorized(4)
        assert pcgrad._use_vectorized(6)

    def test_loop_mode_never_vectorizes(self):
        balancer = MoCoGrad(pairwise_mode="loop")
        assert not balancer._use_vectorized(16)

    def test_gradstats_shared_with_balance(self):
        """_check_inputs builds the per-step cache that balance() consumes."""
        balancer = MoCoGrad(seed=0)
        grads = np.random.default_rng(3).normal(size=(4, DIM))
        balancer.balance(grads, np.ones(4))
        assert balancer.gradstats is not None
        assert balancer.gradstats.grads.shape == (4, DIM)
