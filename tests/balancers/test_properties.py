"""Cross-cutting property tests over every registered balancer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.balancers  # noqa: F401
from repro.core import available_balancers, create_balancer

ALL_METHODS = sorted(available_balancers())

grad_matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 4), st.integers(3, 12)),
    elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False),
)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestEveryBalancer:
    def test_output_shape(self, method, rng):
        balancer = create_balancer(method, seed=0)
        grads = rng.normal(size=(3, 17))
        out = balancer.balance(grads, np.abs(rng.normal(size=3)) + 0.1)
        assert out.shape == (17,)

    def test_output_finite(self, method, rng):
        balancer = create_balancer(method, seed=0)
        balancer.reset(4)
        for _ in range(5):
            out = balancer.balance(
                rng.normal(size=(4, 9)), np.abs(rng.normal(size=4)) + 0.1
            )
            assert np.all(np.isfinite(out))

    def test_deterministic_under_seed(self, method, rng):
        grads = [rng.normal(size=(3, 11)) for _ in range(4)]
        losses = [np.abs(rng.normal(size=3)) + 0.1 for _ in range(4)]
        outputs = []
        for _ in range(2):
            balancer = create_balancer(method, seed=42)
            balancer.reset(3)
            outputs.append(
                np.stack([balancer.balance(g, l) for g, l in zip(grads, losses)])
            )
        np.testing.assert_allclose(outputs[0], outputs[1])

    def test_zero_gradients_give_zero_or_finite(self, method):
        balancer = create_balancer(method, seed=0)
        out = balancer.balance(np.zeros((3, 6)), np.ones(3))
        assert np.all(np.isfinite(out))

    def test_handles_single_conflicting_pair(self, method):
        balancer = create_balancer(method, seed=0)
        grads = np.array([[1.0, 0.0, 0.2], [-0.9, 0.1, -0.2]])
        balancer.reset(2)
        for _ in range(3):
            out = balancer.balance(grads, np.ones(2))
            assert np.all(np.isfinite(out))

    def test_descent_on_average_for_aligned_tasks(self, method, rng):
        """When all tasks agree, every method should produce a descent
        direction for the summed objective (positive dot with Σg)."""
        if method == "rlw":
            pytest.skip("RLW weights are random but positive; covered below")
        balancer = create_balancer(method, seed=0)
        balancer.reset(3)
        base = rng.normal(size=10)
        grads = np.stack([base * 1.0, base * 0.5, base * 2.0])
        for _ in range(3):
            out = balancer.balance(grads, np.ones(3))
        assert out @ grads.sum(axis=0) > 0


@pytest.mark.parametrize("method", ALL_METHODS)
@given(grads=grad_matrices)
@settings(max_examples=15, deadline=None)
def test_fuzz_never_crashes(method, grads):
    balancer = create_balancer(method, seed=0)
    balancer.reset(grads.shape[0])
    out = balancer.balance(grads, np.ones(grads.shape[0]))
    assert out.shape == (grads.shape[1],)
    assert np.all(np.isfinite(out))


class TestConflictResolutionOrdering:
    """On a persistently conflicting toy problem, conflict-aware methods
    should make the combined update less hostile to the weaker task than
    plain summation."""

    def test_mocograd_reduces_pairwise_gcd(self):
        """The stated goal of Eq. (8): calibration pulls conflicting task
        gradients closer together, lowering their GCD."""
        from repro.core import gradient_conflict_degree

        grads = np.array([[4.0, 0.0], [-1.0, 1.0]])
        moco = create_balancer("mocograd", calibration=1.0, seed=0)
        moco.reset(2)
        moco.balance(grads, np.ones(2))  # build momentum
        calibrated = moco.calibrate(grads)
        raw_gcd = gradient_conflict_degree(grads[0], grads[1])
        calibrated_gcd = gradient_conflict_degree(calibrated[0], calibrated[1])
        assert calibrated_gcd < raw_gcd

    def test_pcgrad_never_hurts_either_task_two_task_case(self, rng):
        for _ in range(10):
            grads = rng.normal(size=(2, 6))
            out = create_balancer("pcgrad", seed=0).balance(grads, np.ones(2))
            # Yu et al.'s two-task guarantee: the surgered update does not
            # increase either task's loss to first order... up to numerical
            # tolerance for near-orthogonal cases.
            assert out @ grads[0] >= -1e-8 or out @ grads[1] >= -1e-8
