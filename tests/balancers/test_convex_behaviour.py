"""Behavioural tests: every balancer on explicit convex multi-task problems.

These characterize what each method *does* rather than just that it runs:
descent on the summed objective, behaviour at Pareto-stationary points, and
stability over long horizons.
"""

import numpy as np
import pytest

import repro.balancers  # noqa: F401
from repro.core import available_balancers, create_balancer, run_convex_descent

ALL_METHODS = sorted(available_balancers())


def conflicting_quadratics(offset=2.0):
    a = np.array([offset, 0.0, 0.5])
    b = np.array([-offset, 0.5, -0.5])

    losses = [
        lambda theta: 0.5 * float(np.sum((theta - a) ** 2)),
        lambda theta: 0.5 * float(np.sum((theta - b) ** 2)),
    ]
    grads = [lambda theta: theta - a, lambda theta: theta - b]
    return grads, losses, (a + b) / 2.0


@pytest.mark.parametrize("method", ALL_METHODS)
class TestConvexDescent:
    def test_total_loss_decreases(self, method):
        grads, losses, _ = conflicting_quadratics()
        balancer = create_balancer(method, seed=0)
        result = run_convex_descent(
            grads, losses, balancer, np.array([5.0, 5.0, 5.0]), 0.1, 150
        )
        total = result["total_loss"]
        assert total[-1] < total[0] / 2, method

    def test_iterates_stay_bounded(self, method):
        grads, losses, _ = conflicting_quadratics()
        balancer = create_balancer(method, seed=0)
        result = run_convex_descent(
            grads, losses, balancer, np.array([5.0, 5.0, 5.0]), 0.1, 400
        )
        assert np.all(np.isfinite(result["trajectory"]))
        assert np.linalg.norm(result["final_theta"]) < 50.0

    def test_fixed_point_near_pareto_set(self, method):
        """All methods should end between the two task optima (the Pareto
        set of two quadratics is the segment [a, b])."""
        grads, losses, _ = conflicting_quadratics(offset=1.0)
        balancer = create_balancer(method, seed=0)
        result = run_convex_descent(
            grads, losses, balancer, np.array([3.0, -2.0, 1.0]), 0.1, 600
        )
        theta = result["final_theta"]
        a = np.array([1.0, 0.0, 0.5])
        b = np.array([-1.0, 0.5, -0.5])
        # Distance to the segment [a, b]:
        direction = b - a
        t = np.clip((theta - a) @ direction / (direction @ direction), 0.0, 1.0)
        nearest = a + t * direction
        assert np.linalg.norm(theta - nearest) < 0.5, method


class TestMethodSpecificFixedPoints:
    def test_equal_weighting_finds_joint_optimum(self):
        grads, losses, optimum = conflicting_quadratics()
        result = run_convex_descent(
            grads, losses, create_balancer("equal"), np.array([4.0, 1.0, -1.0]), 0.2, 400
        )
        np.testing.assert_allclose(result["final_theta"], optimum, atol=1e-3)

    def test_mocograd_matches_joint_optimum_with_decayed_lambda(self):
        """With Corollary 1's decaying λ_t the calibration vanishes and
        MoCoGrad's fixed point coincides with the joint optimum."""
        grads, losses, optimum = conflicting_quadratics()
        balancer = create_balancer("mocograd", calibration=0.5, calibration_decay=0.5, seed=0)
        result = run_convex_descent(
            grads, losses, balancer, np.array([4.0, 1.0, -1.0]), 0.2, 800
        )
        np.testing.assert_allclose(result["final_theta"], optimum, atol=0.02)

    def test_mgda_stalls_at_pareto_stationary_points(self):
        """MGDA's min-norm direction vanishes on the Pareto set, so it stops
        at the first Pareto-stationary point it reaches — not necessarily
        the min-sum optimum."""
        grads, losses, optimum = conflicting_quadratics()
        result = run_convex_descent(
            grads, losses, create_balancer("mgda"), np.array([2.0, 0.2, 0.0]), 0.2, 600
        )
        final_direction = np.stack([g(result["final_theta"]) for g in grads])
        from repro.balancers import min_norm_point

        weights = min_norm_point(final_direction)
        assert np.linalg.norm(weights @ final_direction) < 1e-2

    def test_nashmtl_balances_proportional_improvements(self):
        """Nash bargaining equalizes α_k‖g_k‖² products; its fixed point
        generally differs from the min-sum optimum under asymmetric tasks."""
        a = np.array([1.0, 0.0])
        b = np.array([-3.0, 0.0])  # asymmetric optima
        losses = [
            lambda theta: 0.5 * float(np.sum((theta - a) ** 2)) + 0.05,
            lambda theta: 0.5 * float(np.sum((theta - b) ** 2)) + 0.05,
        ]
        grads = [lambda theta: theta - a, lambda theta: theta - b]
        result = run_convex_descent(
            grads, losses, create_balancer("nashmtl", seed=0), np.array([2.0, 1.0]), 0.1, 500
        )
        assert np.all(np.isfinite(result["final_theta"]))
        # It still lands on the Pareto segment between the optima.
        assert -3.0 - 1e-6 <= result["final_theta"][0] <= 1.0 + 1e-6
