"""Server facade: scenario routing, config idiom, oracle equivalence, stats."""

import numpy as np
import pytest

from repro.arch.factory import build_mlp_model
from repro.obs import Telemetry
from repro.serve import Server, serve_default_config

IN_FEATURES = 4
TASKS = ["ctr", "cvr"]
SCENARIOS = ("ES", "FR", "NL", "US")


def _model(seed):
    return build_mlp_model("hps", IN_FEATURES, [6, 5], TASKS, seed=seed)


@pytest.fixture
def per_scenario_models():
    return {scenario: _model(i) for i, scenario in enumerate(SCENARIOS)}


class TestConfig:
    def test_defaults_applied(self):
        with Server(_model(0)) as server:
            assert server.config == serve_default_config
            assert server.config is not serve_default_config

    def test_partial_override(self):
        with Server(_model(0), {"max_batch_size": 8}) as server:
            assert server.config["max_batch_size"] == 8
            assert server.config["max_wait_ms"] == serve_default_config["max_wait_ms"]

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown serve config"):
            Server(_model(0), {"max_batch": 8})

    def test_defaults_not_mutated(self):
        before = dict(serve_default_config)
        with Server(_model(0), {"max_wait_ms": 99.0}):
            pass
        assert serve_default_config == before


class TestRouting:
    def test_single_model_shorthand(self, rng):
        with Server(_model(0)) as server:
            assert server.scenarios() == ["default"]
            result = server.predict(rng.standard_normal((3, IN_FEATURES)))
            assert set(result) == set(TASKS)

    def test_unknown_scenario_rejected(self, per_scenario_models, rng):
        with Server(per_scenario_models) as server:
            with pytest.raises(KeyError, match="unknown scenario"):
                server.submit(rng.standard_normal((1, IN_FEATURES)), "DE")

    def test_no_default_is_ambiguous(self, per_scenario_models, rng):
        with Server(per_scenario_models) as server:
            with pytest.raises(ValueError, match="default_scenario"):
                server.submit(rng.standard_normal((1, IN_FEATURES)))

    def test_configured_default_scenario(self, per_scenario_models, rng):
        config = {"default_scenario": "FR"}
        telemetry = Telemetry()
        with Server(per_scenario_models, config, telemetry) as server:
            server.predict(rng.standard_normal((1, IN_FEATURES)))
        assert telemetry.counter("serve_requests_total", scenario="FR").value == 1

    def test_scenarios_route_to_their_models(self, per_scenario_models, rng):
        x = rng.standard_normal((3, IN_FEATURES))
        with Server(per_scenario_models) as server:
            results = {s: server.predict(x, s) for s in SCENARIOS}
        # Different per-scenario weights ⇒ different outputs; each must
        # match its own model's sequential oracle exactly.
        with Server(per_scenario_models) as server:
            for scenario in SCENARIOS:
                oracle = server.predict_sequential(x, scenario)
                for task in TASKS:
                    np.testing.assert_allclose(
                        results[scenario][task], oracle[task], rtol=0, atol=1e-12
                    )
        assert not np.allclose(results["ES"]["ctr"], results["US"]["ctr"])

    def test_shared_model_gets_one_batcher(self):
        model = _model(0)
        with Server({"ES": model, "FR": model, "NL": _model(1)}) as server:
            assert server._batchers["ES"] is server._batchers["FR"]
            assert server._batchers["ES"] is not server._batchers["NL"]

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Server({})


class TestOracleEquivalence:
    def test_batched_predict_matches_sequential(self, per_scenario_models, rng):
        inputs = {s: rng.standard_normal((7, IN_FEATURES)) for s in SCENARIOS}
        with Server(per_scenario_models, {"max_wait_ms": 20.0}) as server:
            futures = {s: server.submit(inputs[s], s) for s in SCENARIOS}
            batched = {s: f.result(timeout=10) for s, f in futures.items()}
            for scenario in SCENARIOS:
                oracle = server.predict_sequential(inputs[scenario], scenario)
                for task in TASKS:
                    assert batched[scenario][task].shape == oracle[task].shape
                    np.testing.assert_allclose(
                        batched[scenario][task], oracle[task], rtol=0, atol=1e-12
                    )

    def test_sequential_accepts_single_row(self, rng):
        with Server(_model(0)) as server:
            row = rng.standard_normal(IN_FEATURES)
            oracle = server.predict_sequential(row)
            assert oracle[TASKS[0]].shape[0] == 1


class TestStatsAndLifecycle:
    def test_stats_digest(self, per_scenario_models, rng):
        telemetry = Telemetry()
        with Server(per_scenario_models, telemetry=telemetry) as server:
            for _ in range(3):
                for scenario in SCENARIOS:
                    server.predict(rng.standard_normal((2, IN_FEATURES)), scenario)
            stats = server.stats()
        assert set(stats) == {"scenarios", "overall", "batches"}
        assert set(stats["scenarios"]) == set(SCENARIOS)
        for digest in stats["scenarios"].values():
            assert digest["requests"] == 3
            assert digest["p50_seconds"] <= digest["p99_seconds"]
        # The overall series is the per-scenario histograms merged.
        assert stats["overall"]["requests"] == 3 * len(SCENARIOS)
        assert stats["batches"]["count"] >= 1
        assert stats["batches"]["mean_rows"] >= 2.0

    def test_stats_empty_without_telemetry(self):
        with Server(_model(0)) as server:
            assert server.stats() == {}

    def test_submit_after_close_rejected(self, rng):
        server = Server(_model(0))
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(rng.standard_normal((1, IN_FEATURES)))

    def test_models_forced_to_eval(self):
        model = _model(0)
        model.train()
        with Server(model):
            assert model.training is False
