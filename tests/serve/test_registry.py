"""Checkpoint → registry round trips across every buildable architecture."""

import numpy as np
import pytest

from repro.arch.factory import (
    MLP_ARCHITECTURES,
    TABULAR_ARCHITECTURES,
    build_mlp_model,
    build_tabular_model,
)
from repro.nn.tensor import inference_mode
from repro.serve import ModelRegistry, model_spec, save_model

IN_FEATURES = 6
HIDDEN = [8, 5]
TASKS = ["ctr", "ctcvr"]
FIELD_SIZES = [7, 3, 11]


def _perturb(model, rng):
    """Move every parameter off its seeded init so a rebuild alone can't match."""
    for param in model.parameters():
        param.data += rng.standard_normal(param.data.shape)


def _predict(model, x):
    with inference_mode():
        return {task: out.data for task, out in model.forward_all(x).items()}


class TestFactory:
    @pytest.mark.parametrize("architecture", MLP_ARCHITECTURES)
    def test_mlp_builders_are_deterministic(self, architecture):
        a = build_mlp_model(architecture, IN_FEATURES, HIDDEN, TASKS, seed=3)
        b = build_mlp_model(architecture, IN_FEATURES, HIDDEN, TASKS, seed=3)
        for (name_a, val_a), (name_b, val_b) in zip(
            sorted(a.state_dict().items()), sorted(b.state_dict().items())
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(val_a, val_b)

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            build_mlp_model("transformer", IN_FEATURES, HIDDEN, TASKS)
        with pytest.raises(ValueError, match="unknown architecture"):
            build_tabular_model("mtan", FIELD_SIZES, 4, HIDDEN, TASKS)

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            build_mlp_model("hps", IN_FEATURES, [], TASKS)


class TestRoundTrip:
    @pytest.mark.parametrize("architecture", MLP_ARCHITECTURES)
    def test_mlp_checkpoint_roundtrip_bitwise(self, architecture, rng, tmp_path):
        config = dict(
            architecture=architecture,
            in_features=IN_FEATURES,
            hidden=HIDDEN,
            tasks=TASKS,
            seed=1,
        )
        model = build_mlp_model(**config)
        _perturb(model, rng)
        x = rng.standard_normal((5, IN_FEATURES))
        expected = _predict(model, x)

        path = save_model(model, tmp_path / "m.npz", model_spec("mlp", **config))
        restored = ModelRegistry().load(path)
        assert type(restored) is type(model)
        actual = _predict(restored, x)
        assert set(actual) == set(expected)
        for task in expected:
            np.testing.assert_array_equal(actual[task], expected[task])

    @pytest.mark.parametrize("architecture", TABULAR_ARCHITECTURES)
    def test_tabular_checkpoint_roundtrip_bitwise(self, architecture, rng, tmp_path):
        config = dict(
            architecture=architecture,
            field_sizes=FIELD_SIZES,
            embedding_dim=4,
            hidden=HIDDEN,
            tasks=TASKS,
            seed=2,
        )
        model = build_tabular_model(**config)
        _perturb(model, rng)
        x = np.stack(
            [rng.integers(0, size, size=9) for size in FIELD_SIZES], axis=1
        )
        expected = _predict(model, x)

        path = save_model(model, tmp_path / "tab.npz", model_spec("tabular", **config))
        actual = _predict(ModelRegistry().load(path), x)
        for task in expected:
            np.testing.assert_array_equal(actual[task], expected[task])


class TestRegistry:
    def _spec(self):
        return model_spec(
            "mlp",
            architecture="hps",
            in_features=IN_FEATURES,
            hidden=HIDDEN,
            tasks=TASKS,
            seed=0,
        )

    def test_load_caches_by_stem_and_name(self, tmp_path):
        registry = ModelRegistry()
        model = registry.build(self._spec())
        path = save_model(model, tmp_path / "es_model.npz", self._spec())
        registry.load(path)
        assert "es_model" in registry
        registry.load(path, name="ES")
        assert registry.names() == ["ES", "es_model"]
        assert registry.get("ES") is not registry.get("es_model")
        assert len(registry) == 2

    def test_loaded_model_is_eval_mode(self, tmp_path):
        registry = ModelRegistry()
        path = save_model(registry.build(self._spec()), tmp_path / "m", self._spec())
        assert registry.load(path).training is False

    def test_spec_and_metadata_accessors(self, tmp_path):
        registry = ModelRegistry()
        model = registry.build(self._spec())
        path = save_model(model, tmp_path / "m", self._spec(), {"epoch": 12})
        registry.load(path, name="m")
        assert registry.metadata("m") == {"epoch": 12}
        assert registry.spec("m") == self._spec()

    def test_checkpoint_without_spec_rejected(self, tmp_path):
        from repro.nn.serialization import save_checkpoint

        registry = ModelRegistry()
        path = save_checkpoint(registry.build(self._spec()), tmp_path / "bare.npz")
        with pytest.raises(ValueError, match="no model spec"):
            registry.load(path)

    def test_unknown_builder_rejected(self):
        with pytest.raises(KeyError, match="unknown model builder"):
            ModelRegistry().build({"builder": "resnet", "config": {}})

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError, match="unknown model"):
            ModelRegistry().get("nope")

    def test_reserved_metadata_key_rejected(self, tmp_path):
        registry = ModelRegistry()
        model = registry.build(self._spec())
        with pytest.raises(ValueError, match="reserved"):
            save_model(model, tmp_path / "m", self._spec(), {"model": "clash"})

    def test_malformed_spec_rejected(self, tmp_path):
        registry = ModelRegistry()
        model = registry.build(self._spec())
        with pytest.raises(ValueError, match="builder"):
            save_model(model, tmp_path / "m", {"config": {}})

    def test_custom_builder_roundtrip(self, rng, tmp_path):
        from repro.arch import HardParameterSharing, LinearHead, MLPEncoder

        def tiny(width):
            gen = np.random.default_rng(0)
            return HardParameterSharing(
                MLPEncoder(width, [width], gen),
                {"t": LinearHead(width, 1, gen)},
            )

        registry = ModelRegistry()
        registry.register_builder("tiny", tiny)
        model = tiny(3)
        _perturb(model, rng)
        path = save_model(model, tmp_path / "tiny", model_spec("tiny", width=3))
        restored = registry.load(path)
        x = rng.standard_normal((4, 3))
        np.testing.assert_array_equal(
            _predict(restored, x)["t"], _predict(model, x)["t"]
        )

    def test_add_registers_directly(self):
        registry = ModelRegistry()
        model = registry.build(self._spec())
        model.train()
        registry.add("direct", model)
        assert registry.get("direct") is model
        assert model.training is False
        assert registry.spec("direct") == {}
