"""MicroBatcher: equivalence vs the sequential oracle, coalescing, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.arch.factory import build_mlp_model
from repro.nn.tensor import inference_mode
from repro.obs import Telemetry
from repro.serve import BATCH_ROWS_BUCKETS, MicroBatcher

IN_FEATURES = 5
TASKS = ["a", "b", "c"]


@pytest.fixture
def model():
    return build_mlp_model("hps", IN_FEATURES, [8, 6], TASKS, seed=0)


def _oracle(model, rows):
    """The batched result each request *should* get: its own lone forward."""
    with inference_mode():
        return {task: out.data for task, out in model.forward_all(rows).items()}


class TestEquivalence:
    def test_batched_matches_lone_forward(self, model, rng):
        requests = [rng.standard_normal((n, IN_FEATURES)) for n in (1, 3, 2, 4, 1)]
        with MicroBatcher(model, max_batch_size=64, max_wait_ms=100.0) as batcher:
            futures = [batcher.submit(rows) for rows in requests]
            results = [f.result(timeout=10) for f in futures]
        for rows, result in zip(requests, results):
            expected = _oracle(model, rows)
            assert set(result) == set(TASKS)
            for task in TASKS:
                assert result[task].shape == expected[task].shape
                np.testing.assert_allclose(
                    result[task], expected[task], rtol=0, atol=1e-12
                )

    def test_single_row_submission_gets_one_row_back(self, model, rng):
        row = rng.standard_normal(IN_FEATURES)
        with MicroBatcher(model, max_wait_ms=0.0) as batcher:
            result = batcher.submit(row).result(timeout=10)
        for task in TASKS:
            assert result[task].shape[0] == 1
            np.testing.assert_allclose(
                result[task], _oracle(model, row[np.newaxis, :])[task],
                rtol=0, atol=1e-12,
            )

    def test_concurrent_clients_all_answered(self, model, rng):
        inputs = [rng.standard_normal((2, IN_FEATURES)) for _ in range(40)]
        futures = [None] * len(inputs)
        with MicroBatcher(model, max_batch_size=16, max_wait_ms=5.0) as batcher:
            def client(offset):
                for i in range(offset, len(inputs), 4):
                    futures[i] = batcher.submit(inputs[i])

            threads = [threading.Thread(target=client, args=(t,)) for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [f.result(timeout=10) for f in futures]
        for rows, result in zip(inputs, results):
            np.testing.assert_allclose(
                result["a"], _oracle(model, rows)["a"], rtol=0, atol=1e-12
            )


class TestCoalescing:
    def test_requests_coalesce_under_latency_budget(self, model, rng):
        telemetry = Telemetry()
        # A generous budget: all 10 requests are enqueued long before the
        # first batch's deadline, so they must land in very few batches.
        with MicroBatcher(
            model, max_batch_size=64, max_wait_ms=250.0, telemetry=telemetry
        ) as batcher:
            futures = [
                batcher.submit(rng.standard_normal((1, IN_FEATURES)))
                for _ in range(10)
            ]
            for future in futures:
                future.result(timeout=10)
        batches = telemetry.counter("serve_batches_total").value
        assert batches < 10
        rows = telemetry.registry.histogram(
            "serve_batch_rows", buckets=BATCH_ROWS_BUCKETS
        )
        assert rows.sum == 10

    def test_batch_closes_at_row_budget(self, model, rng):
        telemetry = Telemetry()
        with MicroBatcher(
            model, max_batch_size=4, max_wait_ms=250.0, telemetry=telemetry
        ) as batcher:
            futures = [
                batcher.submit(rng.standard_normal((1, IN_FEATURES)))
                for _ in range(8)
            ]
            start = time.monotonic()
            for future in futures:
                future.result(timeout=10)
            elapsed = time.monotonic() - start
        # 8 single-row requests with a 4-row budget: batches ship on size,
        # well before the 250 ms latency budget would force them out.
        assert elapsed < 5.0
        assert telemetry.counter("serve_requests_total", scenario="default").value == 8

    def test_zero_wait_still_serves(self, model, rng):
        with MicroBatcher(model, max_wait_ms=0.0) as batcher:
            results = [
                batcher.submit(rng.standard_normal((1, IN_FEATURES))).result(timeout=10)
                for _ in range(5)
            ]
        assert all(set(r) == set(TASKS) for r in results)


class TestLifecycle:
    def test_validation(self, model):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(model, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(model, max_wait_ms=-1.0)

    def test_bad_rows_rejected(self, model, rng):
        with MicroBatcher(model) as batcher:
            with pytest.raises(ValueError, match="rows"):
                batcher.submit(rng.standard_normal((2, 3, 4)))
            with pytest.raises(ValueError, match="rows"):
                batcher.submit(np.empty((0, IN_FEATURES)))

    def test_submit_after_close_rejected(self, model, rng):
        batcher = MicroBatcher(model)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(rng.standard_normal(IN_FEATURES))

    def test_close_drains_pending_requests(self, model, rng):
        # Big latency budget: requests are still queued when close() lands;
        # they must be answered (drained), not dropped.
        batcher = MicroBatcher(model, max_batch_size=2, max_wait_ms=10_000.0)
        futures = [
            batcher.submit(rng.standard_normal((1, IN_FEATURES))) for _ in range(7)
        ]
        batcher.close()
        for future in futures:
            assert set(future.result(timeout=10)) == set(TASKS)

    def test_cancelled_request_does_not_poison_batch_mates(self, model, rng):
        # A caller cancelling its pending future must not fail the other
        # requests coalesced into the same batch.  The huge latency budget
        # keeps the batch open until close() forces it out, guaranteeing
        # the cancel lands while the future is still pending.
        batcher = MicroBatcher(model, max_batch_size=64, max_wait_ms=10_000.0)
        victim = batcher.submit(rng.standard_normal((1, IN_FEATURES)))
        survivors = [
            batcher.submit(rng.standard_normal((1, IN_FEATURES))) for _ in range(3)
        ]
        assert victim.cancel()
        batcher.close()
        assert victim.cancelled()
        for future in survivors:
            assert set(future.result(timeout=10)) == set(TASKS)

    def test_results_do_not_alias_across_requests(self, model, rng):
        # Coalesced requests must not share one output buffer: a caller
        # mutating its result in place must not corrupt batch-mates.
        inputs = [rng.standard_normal((2, IN_FEATURES)) for _ in range(4)]
        with MicroBatcher(model, max_batch_size=64, max_wait_ms=100.0) as batcher:
            futures = [batcher.submit(rows) for rows in inputs]
            results = [f.result(timeout=10) for f in futures]
        results[0]["a"][:] = np.nan
        for rows, result in zip(inputs[1:], results[1:]):
            np.testing.assert_allclose(
                result["a"], _oracle(model, rows)["a"], rtol=0, atol=1e-12
            )

    def test_forward_error_fails_futures_not_worker(self, model, rng):
        class Exploding:
            calls = 0

            def forward_all(self, x):
                Exploding.calls += 1
                if Exploding.calls == 1:
                    raise RuntimeError("boom")
                return model.forward_all(x)

        with MicroBatcher(Exploding(), max_wait_ms=0.0) as batcher:
            failing = batcher.submit(rng.standard_normal((1, IN_FEATURES)))
            with pytest.raises(RuntimeError, match="boom"):
                failing.result(timeout=10)
            # The worker survived the failed batch and serves the next one.
            ok = batcher.submit(rng.standard_normal((1, IN_FEATURES)))
            assert set(ok.result(timeout=10)) == set(TASKS)


class TestTelemetry:
    def test_spans_and_latency_histograms_recorded(self, model, rng):
        telemetry = Telemetry()
        with MicroBatcher(model, max_wait_ms=0.0, telemetry=telemetry) as batcher:
            batcher.submit(
                rng.standard_normal((2, IN_FEATURES)), scenario="ES"
            ).result(timeout=10)
        paths = telemetry.span_paths()
        assert "serve_batch" in paths
        assert "serve_batch/coalesce" in paths
        assert "serve_batch/forward" in paths
        assert "serve_batch/scatter" in paths
        latency = telemetry.registry.histogram("serve_request_seconds", scenario="ES")
        assert latency.count == 1
        assert telemetry.counter("serve_requests_total", scenario="ES").value == 1
