"""Tests for gradient-geometry instrumentation."""

import numpy as np
import pytest

from repro import MTLTrainer, create_balancer
from repro.analysis import (
    balancer_geometry_effect,
    conflict_trajectory,
    probe_pairwise_conflicts,
)
from repro.data import make_synthetic_mtl


@pytest.fixture(scope="module")
def tracked_trainer():
    bench = make_synthetic_mtl(num_tasks=3, num_samples=200, pairwise_cosine=-0.4, seed=0)
    model = bench.build_model("hps", np.random.default_rng(0))
    trainer = MTLTrainer(
        model, bench.tasks, create_balancer("equal"), lr=5e-3, seed=0, track_conflicts=True
    )
    trainer.fit(bench.train, epochs=3, batch_size=40)
    return bench, trainer


class TestConflictTrajectory:
    def test_summary_structure(self, tracked_trainer):
        _, trainer = tracked_trainer
        summary = conflict_trajectory(trainer)
        assert summary["steps"] == trainer.step_count
        assert len(summary["gcd_curve"]) == trainer.step_count
        assert 0.0 <= summary["mean_conflict_fraction"] <= 1.0
        assert summary["max_gcd"] >= summary["mean_gcd"] - 1e-12

    def test_windowing(self, tracked_trainer):
        _, trainer = tracked_trainer
        summary = conflict_trajectory(trainer, window=4)
        expected = (trainer.step_count + 3) // 4
        assert len(summary["gcd_curve"]) == expected

    def test_empty_history_raises(self):
        bench = make_synthetic_mtl(num_tasks=2, num_samples=100, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(model, bench.tasks, create_balancer("equal"), seed=0)
        with pytest.raises(ValueError):
            conflict_trajectory(trainer)

    def test_invalid_window(self, tracked_trainer):
        _, trainer = tracked_trainer
        with pytest.raises(ValueError):
            conflict_trajectory(trainer, window=0)


class TestProbePairwiseConflicts:
    def test_matrix_and_pairs(self, tracked_trainer):
        bench, trainer = tracked_trainer
        result = probe_pairwise_conflicts(trainer, bench.train, num_batches=2)
        assert result["matrix"].shape == (3, 3)
        assert len(result["pairs"]) == 3  # C(3,2)
        assert result["most_conflicting_pair"] in result["pairs"]

    def test_matrix_symmetric_zero_diagonal(self, tracked_trainer):
        bench, trainer = tracked_trainer
        matrix = probe_pairwise_conflicts(trainer, bench.train, num_batches=2)["matrix"]
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(3))


class TestBalancerGeometryEffect:
    def test_equal_weighting_is_identity(self, rng):
        grads = rng.normal(size=(3, 10))
        effect = balancer_geometry_effect(create_balancer("equal"), grads)
        assert effect["norm_ratio"] == pytest.approx(1.0)
        assert effect["cosine_to_naive"] == pytest.approx(1.0)

    def test_cagrad_improves_worst_task_alignment(self):
        grads = np.array([[1.0, 0.1, 0.0], [-0.8, 0.4, 0.1], [0.3, -0.9, 0.2]])
        effect = balancer_geometry_effect(create_balancer("cagrad", seed=0), grads)
        assert (
            effect["worst_task_alignment_balanced"]
            >= effect["worst_task_alignment_naive"] - 1e-9
        )

    def test_conflict_fraction_reported(self, rng):
        grads = np.array([[1.0, 0.0], [-1.0, 0.1]])
        effect = balancer_geometry_effect(create_balancer("pcgrad", seed=0), grads)
        assert effect["input_conflict_fraction"] == 1.0

    def test_zero_gradients_safe(self):
        effect = balancer_geometry_effect(create_balancer("equal"), np.zeros((2, 4)))
        assert effect["cosine_to_naive"] == 0.0
