"""Tests for the analysis drivers (tiny configurations)."""

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_LAMBDA_GRID,
    architecture_sweep,
    backward_time_study,
    convergence_curves,
    lambda_sensitivity,
    task_interference_curve,
    tci_gcd_correlation,
)
from repro.data.movielens import GENRES


class TestTaskInterference:
    def test_curve_structure(self):
        result = task_interference_curve(
            records_per_genre=120, epochs=2, batch_size=32, seed=0
        )
        assert len(result["task_sets"]) == 3
        assert len(result["rmse"]) == 3
        assert result["task_sets"][0] == GENRES[0]
        assert all(r > 0 for r in result["rmse"])

    def test_respects_partner_list(self):
        result = task_interference_curve(
            partner_genres=(GENRES[1],), records_per_genre=100, epochs=1, seed=0
        )
        assert len(result["rmse"]) == 2


class TestTciGcd:
    def test_output_structure(self):
        result = tci_gcd_correlation(
            cosine_grid=(0.8, -0.8), num_samples=80, epochs=4, seeds=1
        )
        assert len(result["gcd"]) == 2
        assert len(result["tci"]) == 2
        assert np.isfinite(result["pearson_r"])

    def test_gcd_values_in_range(self):
        result = tci_gcd_correlation(
            cosine_grid=(0.5,), num_samples=80, epochs=2, seeds=1
        )
        assert 0.0 <= result["gcd"][0] <= 2.0

    def test_conflict_endpoints_ordered(self):
        """More conflicting ground truth ⇒ larger measured GCD."""
        result = tci_gcd_correlation(
            cosine_grid=(0.9, -0.9), num_samples=200, epochs=8, seeds=2
        )
        assert result["gcd"][1] > result["gcd"][0]


class TestConvergence:
    def test_curve_lengths(self):
        result = convergence_curves(
            methods=("equal", "mocograd"), num_scenes=24, epochs=2, batch_size=8, seed=0
        )
        assert set(result["curves"]) == {"equal", "mocograd"}
        for curves in result["curves"].values():
            assert len(curves["average"]) == 2
            assert set(curves) == {"segmentation", "depth", "normal", "average"}

    def test_losses_finite(self):
        result = convergence_curves(methods=("equal",), num_scenes=24, epochs=1, seed=0)
        assert np.all(np.isfinite(result["curves"]["equal"]["average"]))


class TestArchitectureSweep:
    def test_delta_per_architecture(self):
        result = architecture_sweep(
            architectures=("hps", "mmoe"), num_scenes=24, epochs=1, batch_size=8, seed=0
        )
        assert set(result["delta_m"]) == {"hps", "mmoe"}
        assert all(np.isfinite(v) for v in result["delta_m"].values())


class TestTiming:
    def test_all_methods_timed(self):
        result = backward_time_study(
            methods=("equal", "mocograd", "nashmtl"), num_records=300, steps=3, seed=0
        )
        times = result["seconds_per_step"]
        assert set(times) == {"equal", "mocograd", "nashmtl"}
        assert all(t > 0 for t in times.values())

    def test_feature_mode_supported(self):
        result = backward_time_study(
            methods=("equal",), num_records=300, steps=2, grad_space="features", seed=0
        )
        assert result["grad_space"] == "features"


class TestLambdaSensitivity:
    def test_grid_respected(self):
        result = lambda_sensitivity(
            lambda_grid=(0.06, 0.12),
            num_classes=4,
            samples_per_domain=40,
            epochs=1,
            batch_size=16,
            seed=0,
        )
        assert result["lambda"] == [0.06, 0.12]
        assert len(result["avg_accuracy"]) == 2
        assert all(0.0 <= a <= 1.0 for a in result["avg_accuracy"])

    def test_default_grid_covers_paper_range(self):
        assert min(DEFAULT_LAMBDA_GRID) <= 0.06
        assert max(DEFAULT_LAMBDA_GRID) >= 0.15
