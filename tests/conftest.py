"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def numerical_gradient(fn, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued tensor function."""
    grad = np.zeros_like(x0, dtype=np.float64)
    for index in np.ndindex(*x0.shape):
        plus = x0.copy()
        plus[index] += eps
        minus = x0.copy()
        minus[index] -= eps
        grad[index] = (fn(Tensor(plus)).item() - fn(Tensor(minus)).item()) / (2 * eps)
    return grad


def assert_gradcheck(fn, x0: np.ndarray, tol: float = 1e-6) -> None:
    """Check analytic vs numerical gradients of ``fn`` at ``x0``."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = fn(x)
    assert out.size == 1, "gradcheck needs a scalar output"
    out.backward()
    numeric = numerical_gradient(fn, np.asarray(x0, dtype=np.float64))
    error = np.max(np.abs(x.grad - numeric))
    assert error < tol, f"gradient mismatch: max abs error {error:.3e}"
