"""Regression bound on instrumentation cost.

The observability layer must be cheap enough to leave on: with a no-op
sink attached, an instrumented ``train_step_single`` must stay within
1.5× the median uninstrumented step time on the synthetic benchmark.
The same bar applies to the full flight recorder (profiler collecting
every span + per-step dynamics recording) in its default configuration
(memory tracking off).

The two trainers are stepped in alternation (A, B, A, B, …) so that any
background load on the test machine inflates both medians equally rather
than biasing whichever variant happened to run second.
"""

import time

import numpy as np

from repro.balancers import EqualWeighting
from repro.data import make_synthetic_mtl
from repro.obs import NULL_TELEMETRY, NullSink, Telemetry
from repro.training import MTLTrainer


def _make_trainer(telemetry, **kwargs):
    benchmark = make_synthetic_mtl(num_tasks=2, num_samples=512, seed=0)
    model = benchmark.build_model("hps", np.random.default_rng(0))
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        EqualWeighting(),
        seed=0,
        telemetry=telemetry,
        **kwargs,
    )
    rng = np.random.default_rng(1)
    idx = rng.choice(len(benchmark.train), size=64, replace=False)
    inputs, targets = benchmark.train.batch(idx)
    return trainer, inputs, targets


def _timed_step(trainer, inputs, targets) -> float:
    start = time.perf_counter()
    trainer.train_step_single(inputs, targets)
    return time.perf_counter() - start


def measure_overhead(steps=40, warmup=5, **instrumented_kwargs):
    """Median step times (uninstrumented, instrumented), interleaved."""
    bare = _make_trainer(NULL_TELEMETRY)
    instrumented = _make_trainer(
        Telemetry(sinks=[NullSink()]), **instrumented_kwargs
    )
    bare_times, instrumented_times = [], []
    for step in range(warmup + steps):
        bare_elapsed = _timed_step(*bare)
        instrumented_elapsed = _timed_step(*instrumented)
        if step >= warmup:
            bare_times.append(bare_elapsed)
            instrumented_times.append(instrumented_elapsed)
    return float(np.median(bare_times)), float(np.median(instrumented_times))


def _assert_within_1_5x(uninstrumented, instrumented, what):
    assert instrumented <= 1.5 * uninstrumented, (
        f"{what} overhead too high: instrumented {instrumented * 1e6:.0f}µs vs "
        f"uninstrumented {uninstrumented * 1e6:.0f}µs"
    )


def test_instrumented_step_within_1_5x_of_uninstrumented():
    uninstrumented, instrumented = measure_overhead()
    if instrumented > 1.5 * uninstrumented:
        # One retry with more samples guards against a transient load spike.
        uninstrumented, instrumented = measure_overhead(steps=120, warmup=10)
    _assert_within_1_5x(uninstrumented, instrumented, "telemetry")


def test_full_flight_recorder_within_1_5x_of_uninstrumented():
    """Profiler + dynamics recorder (defaults: no tracemalloc) stay ≤ 1.5×."""
    from repro.obs import Profiler

    kwargs = dict(profile=Profiler(), record_dynamics=True)
    uninstrumented, instrumented = measure_overhead(**kwargs)
    if instrumented > 1.5 * uninstrumented:
        uninstrumented, instrumented = measure_overhead(
            steps=120, warmup=10, **kwargs
        )
    _assert_within_1_5x(uninstrumented, instrumented, "flight recorder")
