"""Unit tests for JSONL loading and run-report summarization."""

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    Telemetry,
    format_report,
    load_events,
    summarize_events,
)


def write_jsonl(path, events):
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


class TestLoadEvents:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        events = [{"type": "run", "experiment": "table1"}, {"type": "span", "path": "step"}]
        write_jsonl(path, events)
        assert load_events(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "run"}\n\n\n{"type": "span", "path": "s", "seconds": 1}\n')
        assert len(load_events(path)) == 2

    def test_torn_final_line_dropped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "run"}\n{"type": "sp')  # killed mid-write
        assert load_events(path) == [{"type": "run"}]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('not json\n{"type": "run"}\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_events(path)


class TestSummarize:
    def test_span_statistics(self):
        events = [
            {"type": "span", "path": "step", "seconds": s} for s in (0.1, 0.2, 0.3)
        ]
        summary = summarize_events(events)
        stats = summary["spans"]["step"]
        assert stats["count"] == 3
        assert stats["total_seconds"] == pytest.approx(0.6)
        assert stats["median_seconds"] == pytest.approx(0.2)

    def test_counters_take_last_snapshot_per_tid_then_sum(self):
        events = [
            # tid 1 flushed twice (cumulative!): only the last snapshot counts.
            {"type": "metric", "kind": "counter", "name": "c", "labels": {}, "value": 5, "tid": 1},
            {"type": "metric", "kind": "counter", "name": "c", "labels": {}, "value": 9, "tid": 1},
            # A second trainer adds its own total.
            {"type": "metric", "kind": "counter", "name": "c", "labels": {}, "value": 2, "tid": 2},
        ]
        summary = summarize_events(events)
        assert summary["counters"]["c"][()] == pytest.approx(11.0)

    def test_gauges_keep_latest_by_timestamp(self):
        events = [
            {"type": "metric", "kind": "gauge", "name": "g", "labels": {}, "value": 1.0, "ts": 10},
            {"type": "metric", "kind": "gauge", "name": "g", "labels": {}, "value": 2.0, "ts": 20},
        ]
        summary = summarize_events(events)
        assert summary["gauges"][("g", ())] == pytest.approx(2.0)


class TestFormatReport:
    def test_renders_spans_and_conflicts(self):
        events = [
            {"type": "run", "experiment": "table1", "preset": "quick"},
            {"type": "span", "path": "step", "seconds": 0.2},
            {"type": "span", "path": "step/backward", "seconds": 0.1},
            {
                "type": "metric",
                "kind": "counter",
                "name": "balancer_pairs_total",
                "labels": {"method": "mocograd"},
                "value": 10,
                "tid": 1,
            },
            {
                "type": "metric",
                "kind": "counter",
                "name": "balancer_conflicts_total",
                "labels": {"method": "mocograd"},
                "value": 4,
                "tid": 1,
            },
            {
                "type": "metric",
                "kind": "counter",
                "name": "mocograd_calibrations_total",
                "labels": {},
                "value": 3,
                "tid": 1,
            },
        ]
        report = format_report(summarize_events(events))
        assert "table1" in report
        assert "step/backward" in report
        assert "mocograd" in report
        assert "0.400" in report  # conflict fraction
        assert "calibrations applied: 3" in report

    def test_empty_stream(self):
        report = format_report(summarize_events([]))
        assert "No spans recorded" in report

    def test_renders_streaming_pipeline_section(self):
        def counter(name, value):
            return {
                "type": "metric",
                "kind": "counter",
                "name": name,
                "labels": {},
                "value": value,
                "tid": 1,
            }

        events = [
            counter("stream_prefetch_hits_total", 6),
            counter("stream_prefetch_stalls_total", 2),
            counter("stream_cache_hits_total", 5),
            counter("stream_cache_misses_total", 3),
        ]
        report = format_report(summarize_events(events))
        assert "Streaming data pipeline" in report
        assert "prefetch hits: 6" in report
        assert "cache misses: 3" in report
        assert "prefetch hit rate: 75.0%" in report

    def test_streaming_section_absent_without_traffic(self):
        report = format_report(
            summarize_events([{"type": "span", "path": "step", "seconds": 0.1}])
        )
        assert "Streaming data pipeline" not in report


class TestEndToEndRoundtrip:
    def test_telemetry_to_file_to_report(self, tmp_path):
        """Telemetry → JsonlSink → load → summarize → format."""
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("step", method="equal"):
            with telemetry.span("backward"):
                pass
        telemetry.counter("balancer_pairs_total", method="equal").inc(3)
        telemetry.counter("balancer_conflicts_total", method="equal").inc(1)
        telemetry.flush()
        sink.close()

        summary = summarize_events(load_events(path))
        assert summary["spans"]["step"]["count"] == 1
        assert summary["spans"]["step/backward"]["count"] == 1
        report = format_report(summary)
        assert "Per-phase timing" in report
        assert "equal" in report

    def test_memory_and_jsonl_sinks_agree(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        memory = InMemorySink()
        jsonl = JsonlSink(path)
        telemetry = Telemetry(sinks=[memory, jsonl])
        with telemetry.span("step"):
            pass
        telemetry.flush()
        jsonl.close()
        from_file = load_events(path)
        assert len(from_file) == len(memory.events)
        assert [e["type"] for e in from_file] == [e["type"] for e in memory.events]


class TestLoadRunEvents:
    def test_single_path_is_plain_load(self, tmp_path):
        from repro.obs import load_run_events

        path = str(tmp_path / "run.jsonl")
        events = [{"type": "span", "path": "step", "seconds": 0.1, "tid": 1}]
        write_jsonl(path, events)
        assert load_run_events(path) == events
        assert load_run_events([path]) == events

    def test_multi_file_namespaces_tids(self, tmp_path):
        from repro.obs import load_run_events

        parent, worker = str(tmp_path / "run.jsonl"), str(tmp_path / "run.worker0.jsonl")
        write_jsonl(parent, [{"type": "metric", "kind": "counter", "name": "c",
                              "labels": {}, "value": 1, "tid": 1}])
        write_jsonl(worker, [{"type": "metric", "kind": "counter", "name": "c",
                              "labels": {}, "value": 2, "tid": 1}])
        events = load_run_events([parent, worker])
        assert [e["tid"] for e in events] == ["0:1", "1:1"]

    def test_colliding_tids_sum_instead_of_overwriting(self, tmp_path):
        """Forked workers can share a tid; merged counters must still add."""
        from repro.obs import load_run_events

        paths = []
        for index in range(2):
            path = str(tmp_path / f"run.worker{index}.jsonl")
            write_jsonl(path, [{"type": "metric", "kind": "counter", "name": "steps",
                                "labels": {}, "value": 3, "tid": 7}])
            paths.append(path)
        summary = summarize_events(load_run_events(paths))
        assert summary["counters"]["steps"][()] == pytest.approx(6.0)

    def test_empty_path_list_rejected(self):
        from repro.obs import load_run_events

        with pytest.raises(ValueError, match="at least one"):
            load_run_events([])


def _histogram_event(tid, count, total, bucket_counts, bounds=(0.1, 1.0, float("inf"))):
    return {
        "type": "metric", "kind": "histogram", "name": "latency",
        "labels": {"op": "step"}, "tid": tid, "count": count, "sum": total,
        "buckets": [{"le": le, "count": c} for le, c in zip(bounds, bucket_counts)],
    }


class TestHistogramPooling:
    def test_matching_bounds_pool_elementwise(self):
        summary = summarize_events([
            _histogram_event(1, 3, 0.6, [1, 2, 0]),
            _histogram_event(2, 2, 1.4, [0, 1, 1]),
        ])
        stats = summary["histograms"]["latency"][(("op", "step"),)]
        assert stats["count"] == 5
        assert stats["sum"] == pytest.approx(2.0)
        assert stats["mean"] == pytest.approx(0.4)
        assert [b["count"] for b in stats["buckets"]] == [1, 3, 1]

    def test_repeated_snapshots_from_one_tid_keep_last(self):
        # Histogram snapshots are cumulative per instance, like counters.
        summary = summarize_events([
            _histogram_event(1, 3, 0.6, [1, 2, 0]),
            _histogram_event(1, 5, 1.0, [2, 3, 0]),
        ])
        stats = summary["histograms"]["latency"][(("op", "step"),)]
        assert stats["count"] == 5
        assert [b["count"] for b in stats["buckets"]] == [2, 3, 0]

    def test_mismatched_bounds_drop_buckets_keep_totals(self):
        summary = summarize_events([
            _histogram_event(1, 3, 0.6, [1, 2, 0]),
            _histogram_event(2, 2, 1.4, [0, 1, 1], bounds=(0.5, 2.0, float("inf"))),
        ])
        stats = summary["histograms"]["latency"][(("op", "step"),)]
        assert stats["count"] == 5
        assert stats["sum"] == pytest.approx(2.0)
        assert stats["buckets"] is None

    def test_report_renders_pooled_histograms(self):
        summary = summarize_events([_histogram_event(1, 3, 0.6, [1, 2, 0])])
        report = format_report(summary)
        assert "Histograms" in report
        assert "latency" in report
