"""Unit tests for the Chrome-trace profiler and self-time attribution."""

import json
import tracemalloc

import pytest

from repro.obs import Profiler, Telemetry


def _span(path, seconds, *, ts=0.0, perf_ts=0.0, tid=0, name=None, **extra):
    return {
        "type": "span",
        "path": path,
        "name": name or path.rsplit("/", 1)[-1],
        "seconds": seconds,
        "ts": ts,
        "perf_ts": perf_ts,
        "tid": tid,
        "labels": {},
        **extra,
    }


class TestCollection:
    def test_keeps_only_span_events(self):
        profiler = Profiler()
        profiler.emit(_span("step", 0.1))
        profiler.emit({"type": "metric", "name": "steps", "value": 1})
        profiler.emit({"type": "run", "experiment": "train"})
        assert len(profiler.spans) == 1

    def test_from_events_roundtrip(self):
        events = [_span("step", 0.1), {"type": "metric"}, _span("step/forward", 0.02)]
        profiler = Profiler.from_events(events)
        assert [s["path"] for s in profiler.spans] == ["step", "step/forward"]

    def test_attach_collects_live_spans_and_detaches_on_close(self):
        telemetry = Telemetry()
        profiler = Profiler().attach(telemetry)
        with telemetry.span("step"):
            with telemetry.span("forward"):
                pass
        assert [s["path"] for s in profiler.spans] == ["step/forward", "step"]
        profiler.close()
        assert profiler not in telemetry.sinks

    def test_attach_rejects_disabled_telemetry(self):
        with pytest.raises(ValueError):
            Profiler().attach(Telemetry.disabled())


class TestChromeTrace:
    def test_slices_and_thread_metadata(self):
        profiler = Profiler.from_events(
            [
                _span("step/forward", 0.02, perf_ts=10.01),
                _span("step", 0.1, perf_ts=10.0),
            ]
        )
        trace = profiler.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["clock"] == "perf_ts"
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["args"]["name"] == "telemetry-0"
        assert {s["name"] for s in slices} == {"step", "forward"}
        # Times are microseconds relative to the earliest span.
        by_name = {s["name"]: s for s in slices}
        assert by_name["step"]["ts"] == pytest.approx(0.0)
        assert by_name["forward"]["ts"] == pytest.approx(1e4)
        assert by_name["step"]["dur"] == pytest.approx(1e5)

    def test_child_slice_nests_inside_parent(self):
        telemetry = Telemetry()
        profiler = Profiler().attach(telemetry)
        with telemetry.span("step"):
            with telemetry.span("forward"):
                pass
        slices = {
            e["args"]["path"]: e
            for e in profiler.chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        }
        parent, child = slices["step"], slices["step/forward"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0

    def test_falls_back_to_wall_clock_without_perf_ts(self):
        profiler = Profiler.from_events(
            [_span("step", 0.1, ts=100.0), _span("step", 0.1, ts=101.0, perf_ts=5.0)]
        )
        trace = profiler.chrome_trace()
        assert trace["otherData"]["clock"] == "ts"
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [s["ts"] for s in slices] == pytest.approx([0.0, 1e6])

    def test_args_carry_labels_memory_and_error(self):
        profiler = Profiler.from_events(
            [
                _span(
                    "step/backward",
                    0.01,
                    labels={"task": "0"},
                    mem_bytes=2048,
                    error=True,
                )
            ]
        )
        (slice_,) = [e for e in profiler.chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert slice_["args"]["task"] == "0"
        assert slice_["args"]["mem_bytes"] == 2048
        assert slice_["args"]["error"] is True

    def test_distinct_tids_become_distinct_threads(self):
        profiler = Profiler.from_events(
            [_span("step", 0.1, tid=1), _span("step", 0.1, tid=2)]
        )
        trace = profiler.chrome_trace()
        assert [e["tid"] for e in trace["traceEvents"] if e["ph"] == "M"] == [1, 2]

    def test_export_writes_loadable_json(self, tmp_path):
        profiler = Profiler.from_events([_span("step", 0.1, perf_ts=1.0)])
        path = profiler.export_chrome_trace(str(tmp_path / "trace.json"))
        data = json.loads(open(path).read())
        assert data["traceEvents"] and data["displayTimeUnit"] == "ms"


class TestSelfTimes:
    def test_direct_children_subtracted(self):
        profiler = Profiler.from_events(
            [
                _span("step", 1.0),
                _span("step/backward", 0.6),
                _span("step/backward/task_backward", 0.5),
                _span("step/balance", 0.1),
            ]
        )
        times = profiler.self_times()
        # step self = 1.0 - (0.6 + 0.1); grandchild must not be subtracted twice.
        assert times["step"]["self_seconds"] == pytest.approx(0.3)
        assert times["step/backward"]["self_seconds"] == pytest.approx(0.1)
        assert times["step/balance"]["self_seconds"] == pytest.approx(0.1)
        assert times["step/backward/task_backward"]["self_seconds"] == pytest.approx(0.5)

    def test_repeated_spans_accumulate(self):
        profiler = Profiler.from_events(
            [_span("step", 0.2), _span("step", 0.3), _span("step/forward", 0.1)]
        )
        stats = profiler.self_times()["step"]
        assert stats["count"] == 2
        assert stats["total_seconds"] == pytest.approx(0.5)
        assert stats["self_seconds"] == pytest.approx(0.4)

    def test_jitter_clamped_to_zero(self):
        profiler = Profiler.from_events(
            [_span("step", 0.1), _span("step/forward", 0.100001)]
        )
        assert profiler.self_times()["step"]["self_seconds"] == 0.0

    def test_format_self_times_renders_table(self):
        profiler = Profiler.from_events([_span("step", 0.1)])
        table = profiler.format_self_times()
        assert "step" in table and "self ms" in table
        assert Profiler().format_self_times() == "No spans profiled."


class TestMemoryTracking:
    def test_track_memory_records_span_deltas(self):
        telemetry = Telemetry()
        profiler = Profiler(track_memory=True).attach(telemetry)
        try:
            assert tracemalloc.is_tracing()
            with telemetry.span("step"):
                _ = [0] * 50_000  # keep alive until the span closes
            (span,) = profiler.spans
            assert span["mem_bytes"] > 0
            assert profiler.self_times()["step"]["mem_bytes"] == span["mem_bytes"]
        finally:
            profiler.close()
        assert not tracemalloc.is_tracing()

    def test_close_leaves_foreign_tracemalloc_running(self):
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            telemetry = Telemetry()
            profiler = Profiler(track_memory=True).attach(telemetry)
            profiler.close()
            assert tracemalloc.is_tracing()
        finally:
            if not was_tracing:
                tracemalloc.stop()
