"""Unit tests for the event sinks and the Telemetry facade plumbing."""

import io
import json

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    InMemorySink,
    JsonlSink,
    NullSink,
    Telemetry,
    configure_sinks,
    default_sinks,
)


class TestInMemorySink:
    def test_buffers_events(self):
        sink = InMemorySink()
        sink.emit({"type": "span", "name": "step"})
        sink.emit({"type": "metric", "name": "steps"})
        assert len(sink.events) == 2
        assert sink.of_type("span") == [{"type": "span", "name": "step"}]

    def test_copies_events(self):
        sink = InMemorySink()
        event = {"type": "span"}
        sink.emit(event)
        event["type"] = "mutated"
        assert sink.events[0]["type"] == "span"


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"type": "span", "seconds": 0.25})
            sink.emit({"type": "metric", "value": 3})
        lines = open(path).read().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["span", "metric"]

    def test_accepts_stream(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"a": 1})
        sink.close()
        assert json.loads(stream.getvalue()) == {"a": 1}
        # Stream ownership stays with the caller.
        assert not stream.closed

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "out.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"a": 1})

    def test_serializes_numpy_scalars(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = str(tmp_path / "out.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"value": np.float64(1.5), "count": np.int64(2)})
        assert json.loads(open(path).read()) == {"value": 1.5, "count": 2}


class TestDeterministicClosure:
    def test_atexit_hook_closes_abandoned_file_sinks(self, tmp_path):
        from repro.obs.sinks import _close_open_sinks, _open_sinks

        sink = JsonlSink(str(tmp_path / "out.jsonl"))
        sink.emit({"a": 1})
        assert sink in _open_sinks
        _close_open_sinks()  # what atexit runs at interpreter shutdown
        assert sink.closed
        assert sink not in _open_sinks

    def test_closed_and_stream_sinks_not_registered(self, tmp_path):
        from repro.obs.sinks import _open_sinks

        stream_sink = JsonlSink(io.StringIO())
        assert stream_sink not in _open_sinks  # caller owns the stream
        file_sink = JsonlSink(str(tmp_path / "out.jsonl"))
        file_sink.close()
        assert file_sink not in _open_sinks

    def test_killed_mid_epoch_run_leaves_parseable_jsonl(self, tmp_path):
        """SIGKILL a child that streams events forever; per-event flush
        must leave a file load_events can parse (modulo a torn tail)."""
        import os
        import signal
        import subprocess
        import sys as _sys
        import time as _time

        import repro
        from repro.obs import load_events

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        path = tmp_path / "killed.jsonl"
        child = subprocess.Popen(
            [
                _sys.executable,
                "-c",
                (
                    "import sys; from repro.obs import JsonlSink\n"
                    "sink = JsonlSink(sys.argv[1])\n"
                    "step = 0\n"
                    "while True:\n"
                    "    sink.emit({'type': 'span', 'path': 'step', "
                    "'seconds': 0.001, 'step': step})\n"
                    "    step += 1\n"
                ),
                str(path),
            ],
            env=env,
        )
        try:
            deadline = _time.monotonic() + 30.0
            while _time.monotonic() < deadline:  # wait for real output
                if path.exists() and path.stat().st_size > 4096:
                    break
                _time.sleep(0.05)
            assert path.exists() and path.stat().st_size > 0, "child produced no output"
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        events = load_events(str(path))
        assert len(events) >= 10
        assert all(e["type"] == "span" for e in events)
        # Steps are contiguous: nothing before the kill point was lost.
        assert [e["step"] for e in events] == list(range(len(events)))


class TestTelemetryPlumbing:
    def test_spans_reach_sinks(self):
        sink = InMemorySink()
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("step", method="equal"):
            with telemetry.span("forward"):
                pass
        spans = sink.of_type("span")
        assert [s["path"] for s in spans] == ["step/forward", "step"]
        assert spans[1]["labels"] == {"method": "equal"}
        assert all(s["tid"] == telemetry.id for s in spans)

    def test_flush_emits_metric_snapshot(self):
        sink = InMemorySink()
        telemetry = Telemetry(sinks=[sink])
        telemetry.counter("steps", method="equal").inc(3)
        telemetry.flush()
        metrics = sink.of_type("metric")
        counter = [m for m in metrics if m["name"] == "steps"]
        assert counter and counter[0]["value"] == 3.0

    def test_span_durations_feed_histogram(self):
        telemetry = Telemetry()
        with telemetry.span("step"):
            pass
        snap = [s for s in telemetry.registry.snapshot() if s["name"] == "span_seconds"]
        assert snap and snap[0]["count"] == 1

    def test_summary_contains_span_stats(self):
        telemetry = Telemetry()
        with telemetry.span("step"):
            pass
        summary = telemetry.summary()
        assert summary["spans"]["step"]["count"] == 1
        assert summary["spans"]["step"]["total_seconds"] >= 0.0

    def test_close_flushes_and_closes_sinks(self):
        sink = InMemorySink()
        telemetry = Telemetry(sinks=[sink])
        telemetry.counter("steps").inc()
        telemetry.close()
        assert sink.closed
        assert sink.of_type("metric")

    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.counter("steps").inc()
        NULL_TELEMETRY.gauge("g").set(1.0)
        with NULL_TELEMETRY.span("step"):
            pass
        assert NULL_TELEMETRY.durations("step") == []
        assert NULL_TELEMETRY.summary() == {}
        assert not NULL_TELEMETRY.enabled
        assert Telemetry.disabled() is NULL_TELEMETRY

    def test_default_sinks_roundtrip(self):
        sink = NullSink()
        try:
            configure_sinks([sink])
            assert default_sinks() == [sink]
            telemetry = Telemetry(sinks=default_sinks())
            with telemetry.span("step"):
                pass
            assert sink.emitted == 1
        finally:
            configure_sinks([])
        assert default_sinks() == []
