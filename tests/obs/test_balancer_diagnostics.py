"""Balancer-side telemetry: base conflict counters, MoCoGrad calibration."""

import numpy as np
import pytest

from repro.balancers import EqualWeighting
from repro.core import MoCoGrad
from repro.obs import Telemetry


def counter_value(telemetry, name, **labels):
    return telemetry.registry.counter(name, **labels).value


@pytest.fixture()
def conflicting():
    grads = np.array([[1.0, 0.0], [-1.0, 0.2]])
    losses = np.array([1.0, 1.0])
    return grads, losses


class TestBaseConflictCounters:
    def test_every_balancer_counts_pairs(self, conflicting):
        grads, losses = conflicting
        balancer = EqualWeighting()
        balancer.telemetry = Telemetry()
        balancer.balance(grads, losses)
        balancer.balance(grads, losses)
        assert counter_value(balancer.telemetry, "balancer_pairs_total", method="equal") == 2
        assert (
            counter_value(balancer.telemetry, "balancer_conflicts_total", method="equal") == 2
        )
        assert balancer.telemetry.registry.gauge(
            "balancer_conflict_fraction", method="equal"
        ).value == pytest.approx(1.0)

    def test_agreeing_gradients_count_zero_conflicts(self):
        balancer = EqualWeighting()
        balancer.telemetry = Telemetry()
        grads = np.array([[1.0, 0.0], [1.0, 0.5]])
        balancer.balance(grads, np.ones(2))
        assert counter_value(balancer.telemetry, "balancer_pairs_total", method="equal") == 1
        assert (
            counter_value(balancer.telemetry, "balancer_conflicts_total", method="equal") == 0
        )

    def test_disabled_telemetry_records_nothing(self, conflicting):
        grads, losses = conflicting
        balancer = EqualWeighting()  # default: NULL_TELEMETRY
        balancer.balance(grads, losses)
        assert balancer.telemetry.summary() == {}

    def test_three_tasks_pair_count(self):
        balancer = EqualWeighting()
        balancer.telemetry = Telemetry()
        grads = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, -1.0]])
        balancer.balance(grads, np.ones(3))
        # 3 choose 2 pairs; only the pairs involving task 2 conflict.
        assert counter_value(balancer.telemetry, "balancer_pairs_total", method="equal") == 3
        assert (
            counter_value(balancer.telemetry, "balancer_conflicts_total", method="equal") == 2
        )


class TestMoCoGradCalibrationCounters:
    def test_first_step_skips_for_zero_momentum(self, conflicting):
        grads, losses = conflicting
        balancer = MoCoGrad(seed=0)
        balancer.telemetry = Telemetry()
        balancer.reset(2)
        balancer.balance(grads, losses)
        telemetry = balancer.telemetry
        # Both ordered pairs (i→j, j→i) conflict; momentum is all-zero at
        # t=0, so every calibration is skipped.
        assert counter_value(telemetry, "mocograd_conflicts_total") == 2
        assert counter_value(telemetry, "mocograd_skipped_zero_momentum_total") == 2
        assert counter_value(telemetry, "mocograd_calibrations_total") == 0

    def test_second_step_applies_calibrations(self, conflicting):
        grads, losses = conflicting
        balancer = MoCoGrad(seed=0)
        balancer.telemetry = Telemetry()
        balancer.reset(2)
        balancer.balance(grads, losses)
        balancer.balance(grads, losses)
        telemetry = balancer.telemetry
        assert counter_value(telemetry, "mocograd_conflicts_total") == 4
        assert counter_value(telemetry, "mocograd_skipped_zero_momentum_total") == 2
        assert counter_value(telemetry, "mocograd_calibrations_total") == 2

    def test_lambda_gauge_tracks_decay_schedule(self, conflicting):
        grads, losses = conflicting
        balancer = MoCoGrad(calibration=0.5, calibration_decay=0.5, seed=0)
        balancer.telemetry = Telemetry()
        balancer.reset(2)
        balancer.balance(grads, losses)
        gauge = balancer.telemetry.registry.gauge("mocograd_lambda")
        assert gauge.value == pytest.approx(0.5)  # λ/1^0.5 at step 1
        balancer.balance(grads, losses)
        assert gauge.value == pytest.approx(0.5 / np.sqrt(2))

    def test_momentum_norm_gauges_per_task(self, conflicting):
        grads, losses = conflicting
        balancer = MoCoGrad(beta1=0.9, seed=0)
        balancer.telemetry = Telemetry()
        balancer.reset(2)
        balancer.balance(grads, losses)
        for task_index in range(2):
            gauge = balancer.telemetry.registry.gauge(
                "mocograd_momentum_norm", task=str(task_index)
            )
            expected = 0.1 * np.linalg.norm(grads[task_index])
            assert gauge.value == pytest.approx(expected)

    def test_counters_unchanged_for_non_conflicting(self):
        balancer = MoCoGrad(seed=0)
        balancer.telemetry = Telemetry()
        balancer.reset(2)
        grads = np.array([[1.0, 0.0], [1.0, 0.1]])
        balancer.balance(grads, np.ones(2))
        assert counter_value(balancer.telemetry, "mocograd_conflicts_total") == 0


class TestConflictTelemetryEdgeCases:
    """Satellite coverage for _record_conflict_telemetry (PR 4)."""

    def test_single_task_records_no_pair_counters(self):
        """K=1 has zero pairs; nothing is recorded and, in particular,
        the conflict-fraction gauge never divides by zero."""
        balancer = EqualWeighting()
        balancer.telemetry = Telemetry()
        balancer.balance(np.array([[1.0, 2.0, 3.0]]), np.ones(1))
        assert balancer.telemetry.registry.snapshot() == []

    def test_zero_gradient_row_is_not_a_conflict(self):
        """A vanished task gradient has inner product exactly 0 with every
        partner — that must count as a pair but never as a conflict."""
        balancer = EqualWeighting()
        balancer.telemetry = Telemetry()
        grads = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 0.0]])
        balancer.balance(grads, np.ones(3))
        assert counter_value(balancer.telemetry, "balancer_pairs_total", method="equal") == 3
        # Only the genuinely antiparallel (0, 1) pair conflicts.
        assert (
            counter_value(balancer.telemetry, "balancer_conflicts_total", method="equal") == 1
        )

    def test_disabled_telemetry_skips_gram_entirely(self, monkeypatch):
        """GradStats is lazy: with telemetry disabled, a geometry-free
        balancer's step must never run the K×K Gram GEMM."""
        from repro.core import gradstats as gradstats_module

        calls = []
        original = gradstats_module.gram_matrix
        monkeypatch.setattr(
            gradstats_module, "gram_matrix", lambda g: calls.append(1) or original(g)
        )
        balancer = EqualWeighting()  # default NULL_TELEMETRY
        grads = np.array([[1.0, 0.0], [-1.0, 0.2]])
        balancer.balance(grads, np.ones(2))
        assert calls == []
        # Flipping telemetry on makes the same step pay for exactly one GEMM.
        balancer.telemetry = Telemetry()
        balancer.balance(grads, np.ones(2))
        assert calls == [1]
