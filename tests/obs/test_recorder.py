"""Unit tests for the bounded-memory conflict-dynamics recorder."""

import tracemalloc

import pytest

from repro.obs import DynamicsRecorder


def _offer(recorder, n, start=0):
    for step in range(start, start + n):
        recorder.record(step, {"gcd_mean": float(step), "lambda": 0.5})


class TestValidation:
    def test_capacity_below_two_rejected(self):
        with pytest.raises(ValueError):
            DynamicsRecorder(capacity=1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DynamicsRecorder(mode="everything")


class TestStrideMode:
    def test_keeps_everything_until_full(self):
        recorder = DynamicsRecorder(capacity=8, mode="stride")
        _offer(recorder, 8)
        assert len(recorder) == 8
        assert recorder.stride == 1
        assert [s["step"] for s in recorder.samples()] == list(range(8))

    def test_decimates_and_doubles_stride_when_full(self):
        recorder = DynamicsRecorder(capacity=8, mode="stride")
        _offer(recorder, 32)
        assert len(recorder) <= 8
        assert recorder.stride == 4
        steps = [s["step"] for s in recorder.samples()]
        # Retained steps are uniformly spaced multiples of the stride.
        assert steps == [s for s in range(32) if s % recorder.stride == 0][: len(steps)]

    def test_bounded_for_long_runs(self):
        recorder = DynamicsRecorder(capacity=64, mode="stride")
        _offer(recorder, 10_000)
        assert len(recorder) <= 64
        assert recorder.seen == 10_000
        steps = [s["step"] for s in recorder.samples()]
        assert steps[0] == 0
        # Coverage spans the whole run, not just a prefix.
        assert steps[-1] >= 10_000 - 2 * recorder.stride


class TestReservoirMode:
    def test_uniform_sample_is_bounded_and_spans_run(self):
        recorder = DynamicsRecorder(capacity=32, mode="reservoir", seed=0)
        _offer(recorder, 5_000)
        assert len(recorder) == 32
        assert recorder.seen == 5_000
        steps = [s["step"] for s in recorder.samples()]
        assert steps == sorted(steps)
        # With 32 uniform draws from 5000 steps, hitting only the first
        # half has probability 2^-32; treat it as a bug.
        assert max(steps) > 2_500

    def test_deterministic_per_seed(self):
        a = DynamicsRecorder(capacity=16, mode="reservoir", seed=7)
        b = DynamicsRecorder(capacity=16, mode="reservoir", seed=7)
        _offer(a, 1_000)
        _offer(b, 1_000)
        assert a.samples() == b.samples()


class TestRingMode:
    def test_keeps_most_recent_window(self):
        recorder = DynamicsRecorder(capacity=16, mode="ring")
        _offer(recorder, 100)
        assert [s["step"] for s in recorder.samples()] == list(range(84, 100))


class TestLifecycle:
    def test_clear_resets_state(self):
        recorder = DynamicsRecorder(capacity=4, mode="stride")
        _offer(recorder, 40)
        recorder.clear()
        assert len(recorder) == 0 and recorder.seen == 0 and recorder.stride == 1
        _offer(recorder, 3)
        assert len(recorder) == 3

    def test_to_events_has_meta_then_samples(self):
        recorder = DynamicsRecorder(capacity=8, mode="ring")
        _offer(recorder, 3)
        events = recorder.to_events(meta={"tasks": ["a", "b"]})
        assert events[0]["type"] == "dynamics_meta"
        assert events[0]["tasks"] == ["a", "b"]
        assert events[0]["seen"] == 3 and events[0]["recorded"] == 3
        assert [e["type"] for e in events[1:]] == ["dynamics"] * 3
        assert events[1]["step"] == 0 and events[1]["gcd_mean"] == 0.0


class TestMemoryBound:
    @pytest.mark.parametrize("mode", ["stride", "reservoir", "ring"])
    def test_memory_stays_o_capacity(self, mode):
        """20k offered samples must not grow the buffer past O(capacity)."""
        recorder = DynamicsRecorder(capacity=256, mode=mode)
        sample = {"gcd_pairs": [0.1] * 28, "grad_norms": [1.0] * 8, "lambda": 0.5}
        _fill_steps = 2_000
        for step in range(_fill_steps):  # fill + settle before measuring
            recorder.record(step, sample)
        tracemalloc.start()
        try:
            baseline, _ = tracemalloc.get_traced_memory()
            for step in range(_fill_steps, 20_000):
                recorder.record(step, dict(sample))
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        growth = current - baseline
        # A full retained entry is ~1 KiB here; 18k offers into a full
        # buffer must not leave more than a few buffers' worth behind.
        assert growth < 512 * 1024, f"recorder grew by {growth} bytes after fill"
        assert len(recorder) <= 256
