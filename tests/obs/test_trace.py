"""Unit tests for tracing spans: nesting, paths, thread isolation."""

import threading
import time

import pytest

from repro.obs import Tracer


class TestSpans:
    def test_records_duration(self):
        tracer = Tracer()
        with tracer.span("step"):
            pass
        (duration,) = tracer.durations("step")
        assert duration >= 0.0

    def test_nested_paths(self):
        tracer = Tracer()
        with tracer.span("step"):
            with tracer.span("backward"):
                with tracer.span("task_backward"):
                    pass
            with tracer.span("balance"):
                pass
        assert tracer.paths() == [
            "step",
            "step/backward",
            "step/backward/task_backward",
            "step/balance",
        ]

    def test_sibling_spans_share_path(self):
        tracer = Tracer()
        with tracer.span("step"):
            for _ in range(3):
                with tracer.span("backward"):
                    pass
        assert len(tracer.durations("step/backward")) == 3

    def test_parent_duration_covers_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.durations("outer")
        (inner,) = tracer.durations("outer/inner")
        assert outer >= inner

    def test_active_path(self):
        tracer = Tracer()
        assert tracer.active_path() is None
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.active_path() == "a/b"
            assert tracer.active_path() == "a"
        assert tracer.active_path() is None

    def test_labels_are_stringified(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with tracer.span("backward", task=0):
            pass
        assert records[0].labels == {"task": "0"}

    def test_on_close_called_per_span(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with tracer.span("step"):
            with tracer.span("forward"):
                pass
        # Children close before parents.
        assert [r.path for r in records] == ["step/forward", "step"]
        assert records[0].depth == 1 and records[1].depth == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("step"):
                raise RuntimeError("boom")
        assert len(tracer.durations("step")) == 1
        assert tracer.active_path() is None

    def test_raising_span_keeps_duration_and_error_flag(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with pytest.raises(RuntimeError):
            with tracer.span("step"):
                time.sleep(0.01)
                raise RuntimeError("boom")
        (record,) = records
        assert record.error is True
        assert record.duration >= 0.01
        assert record.to_event()["error"] is True

    def test_clean_span_omits_error_from_event(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with tracer.span("step"):
            pass
        assert records[0].error is False
        assert "error" not in records[0].to_event()

    def test_nested_unwind_marks_every_open_span(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with pytest.raises(RuntimeError):
            with tracer.span("step"):
                with tracer.span("backward"):
                    raise RuntimeError("boom")
        # Children still close before parents, all flagged, stack empty.
        assert [r.path for r in records] == ["step/backward", "step"]
        assert [r.error for r in records] == [True, True]
        assert tracer.active_path() is None

    def test_sibling_closed_before_raise_stays_clean(self):
        records = []
        tracer = Tracer(on_close=records.append)
        with pytest.raises(RuntimeError):
            with tracer.span("step"):
                with tracer.span("forward"):
                    pass
                raise RuntimeError("boom")
        by_path = {r.path: r for r in records}
        assert by_path["step/forward"].error is False
        assert by_path["step"].error is True

    def test_out_of_order_close_without_exception_still_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_invalid_names_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.span("")
        with pytest.raises(ValueError):
            tracer.span("a/b")

    def test_reset_clears_durations(self):
        tracer = Tracer()
        with tracer.span("step"):
            pass
        tracer.reset()
        assert tracer.durations("step") == []
        assert tracer.paths() == []


class TestThreadIsolation:
    def test_stacks_are_thread_local(self):
        tracer = Tracer()
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                for _ in range(50):
                    with tracer.span(name):
                        barrier.wait(timeout=5)
                        with tracer.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Each thread nested its own inner spans under its own root.
        assert len(tracer.durations("a/inner")) == 50
        assert len(tracer.durations("b/inner")) == 50
        assert tracer.durations("a/b") == []
