"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("steps")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("steps")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("steps", method="equal").inc(4)
        snap = registry.snapshot()
        assert snap == [
            {
                "kind": "counter",
                "name": "steps",
                "labels": {"method": "equal"},
                "value": 4.0,
            }
        ]


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("lambda")
        assert math.isnan(gauge.value)
        gauge.set(0.12)
        gauge.set(0.06)
        assert gauge.value == pytest.approx(0.06)


class TestHistogram:
    def test_bucketing(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)
        assert histogram.mean == pytest.approx(5.555 / 4)

    def test_boundary_lands_in_le_bucket(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.counts == [1, 0, 0]

    def test_snapshot_includes_inf_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).observe(2.0)
        (snap,) = registry.snapshot()
        assert snap["buckets"] == [
            {"le": 1.0, "count": 0},
            {"le": math.inf, "count": 1},
        ]

    def test_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(1.0, 1.0))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1.0, 3.0))


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", task="ctr")
        b = registry.counter("steps", task="ctr")
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", a="1", b="2")
        b = registry.counter("steps", b="2", a="1")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", task="ctr")
        b = registry.counter("steps", task="ctcvr")
        assert a is not b
        assert len(registry) == 2

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("steps")
        with pytest.raises(ValueError):
            registry.gauge("steps")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a", task="2")
        registry.counter("a", task="1")
        names = [(s["name"], tuple(sorted(s["labels"].items()))) for s in registry.snapshot()]
        assert names == sorted(names)
