"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("steps")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("steps")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("steps", method="equal").inc(4)
        snap = registry.snapshot()
        assert snap == [
            {
                "kind": "counter",
                "name": "steps",
                "labels": {"method": "equal"},
                "value": 4.0,
            }
        ]


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("lambda")
        assert math.isnan(gauge.value)
        gauge.set(0.12)
        gauge.set(0.06)
        assert gauge.value == pytest.approx(0.06)


class TestHistogram:
    def test_bucketing(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.555)
        assert histogram.mean == pytest.approx(5.555 / 4)

    def test_boundary_lands_in_le_bucket(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.counts == [1, 0, 0]

    def test_snapshot_includes_inf_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).observe(2.0)
        (snap,) = registry.snapshot()
        assert snap["buckets"] == [
            {"le": 1.0, "count": 0},
            {"le": math.inf, "count": 1},
        ]

    def test_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(1.0, 1.0))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1.0, 3.0))


class TestHistogramPercentile:
    """Pins the documented percentile semantics (see Histogram.percentile)."""

    def _histogram(self, values=(), buckets=(0.01, 0.1, 1.0)):
        histogram = MetricsRegistry().histogram("lat", buckets=buckets)
        for value in values:
            histogram.observe(value)
        return histogram

    def test_empty_histogram_is_nan(self):
        histogram = self._histogram()
        assert math.isnan(histogram.percentile(50))
        assert math.isnan(histogram.percentile(99))

    def test_p_outside_range_rejected(self):
        histogram = self._histogram([0.05])
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)

    def test_returns_covering_bucket_upper_bound(self):
        # 9 fast observations, 1 slow: p50 resolves to the fast bucket's
        # bound, p99 to the slow one's.
        histogram = self._histogram([0.05] * 9 + [0.5])
        assert histogram.percentile(50) == 0.1
        assert histogram.percentile(90) == 0.1
        assert histogram.percentile(99) == 1.0

    def test_boundary_values_report_their_own_bound(self):
        histogram = self._histogram([0.1, 0.1, 0.1])
        assert histogram.percentile(50) == 0.1
        assert histogram.percentile(100) == 0.1

    def test_negative_values_report_first_bound(self):
        histogram = self._histogram([-3.0, -0.5])
        assert histogram.percentile(50) == 0.01

    def test_values_above_last_bound_report_inf(self):
        histogram = self._histogram([5.0, 7.0])
        assert histogram.percentile(50) == math.inf

    def test_p0_reports_first_nonempty_bucket(self):
        histogram = self._histogram([0.5, 0.5])
        assert histogram.percentile(0) == 1.0


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", task="ctr")
        b = registry.counter("steps", task="ctr")
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", a="1", b="2")
        b = registry.counter("steps", b="2", a="1")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("steps", task="ctr")
        b = registry.counter("steps", task="ctcvr")
        assert a is not b
        assert len(registry) == 2

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("steps")
        with pytest.raises(ValueError):
            registry.gauge("steps")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a", task="2")
        registry.counter("a", task="1")
        names = [(s["name"], tuple(sorted(s["labels"].items()))) for s in registry.snapshot()]
        assert names == sorted(names)


class TestHistogramMerge:
    def _pair(self):
        registry = MetricsRegistry()
        a = registry.histogram("latency", buckets=(1.0, 2.0, 4.0), shard="a")
        b = registry.histogram("latency", buckets=(1.0, 2.0, 4.0), shard="b")
        return a, b

    def test_merge_adds_bucketwise(self):
        a, b = self._pair()
        for value in (0.5, 1.5, 3.0):
            a.observe(value)
        for value in (0.5, 9.0):
            b.observe(value)
        result = a.merge(b)
        assert result is a  # merges chain
        assert a.count == 5
        assert a.sum == pytest.approx(14.5)
        assert a.counts == [2, 1, 1, 1]  # le1, le2, le4, +inf
        # The donor is untouched.
        assert b.count == 2
        assert b.counts == [1, 0, 0, 1]

    def test_merge_preserves_percentiles(self):
        a, b = self._pair()
        a.observe(0.5)
        b.observe(3.0)
        b.observe(3.5)
        a.merge(b)
        assert a.percentile(50) == 4.0
        assert a.percentile(0) == 1.0

    def test_empty_merges_are_identity(self):
        a, b = self._pair()
        a.observe(1.0)
        before = (list(a.counts), a.sum, a.count)
        a.merge(b)
        assert (list(a.counts), a.sum, a.count) == before

    def test_mismatched_buckets_rejected(self):
        registry = MetricsRegistry()
        a = registry.histogram("x", buckets=(1.0, 2.0))
        b = registry.histogram("y", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="mismatched buckets"):
            a.merge(b)

    def test_non_histogram_rejected(self):
        a, _ = self._pair()
        with pytest.raises(TypeError, match="Histogram"):
            a.merge(42)
