"""Tests for the latent task-factor toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import correlated_task_matrix, orthogonal_complement_mix, task_directions


class TestTaskDirections:
    def test_unit_norm(self, rng):
        directions = task_directions(5, 10, 0.5, rng)
        np.testing.assert_allclose(np.linalg.norm(directions, axis=1), np.ones(5))

    def test_full_relatedness_identical_up_to_sign(self, rng):
        directions = task_directions(4, 8, 1.0, rng)
        cosines = directions @ directions.T
        np.testing.assert_allclose(np.abs(cosines), np.ones((4, 4)), atol=1e-9)

    def test_relatedness_monotone_in_expectation(self):
        """Higher relatedness ⇒ higher average pairwise cosine."""
        averages = []
        for level in (0.0, 0.5, 0.95):
            cosines = []
            for seed in range(30):
                local = np.random.default_rng(seed)
                d = task_directions(2, 20, level, local)
                cosines.append(d[0] @ d[1])
            averages.append(np.mean(cosines))
        assert averages[0] < averages[1] < averages[2]

    def test_invalid_relatedness(self, rng):
        with pytest.raises(ValueError):
            task_directions(2, 4, 1.5, rng)

    def test_dim_guard(self, rng):
        with pytest.raises(ValueError):
            task_directions(2, 1, 0.5, rng)


class TestCorrelatedTaskMatrix:
    def test_exact_gram(self, rng):
        target = np.array([[1.0, 0.3], [0.3, 1.0]])
        directions = correlated_task_matrix(2, 6, target, rng)
        np.testing.assert_allclose(directions @ directions.T, target, atol=1e-10)

    def test_negative_correlation(self, rng):
        target = np.array([[1.0, -0.8], [-0.8, 1.0]])
        directions = correlated_task_matrix(2, 5, target, rng)
        assert directions[0] @ directions[1] == pytest.approx(-0.8)

    def test_rejects_non_psd(self, rng):
        bad = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError):
            correlated_task_matrix(2, 5, bad, rng)

    def test_rejects_small_dim(self, rng):
        with pytest.raises(ValueError):
            correlated_task_matrix(3, 2, np.eye(3), rng)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            correlated_task_matrix(2, 5, np.eye(3), rng)


class TestOrthogonalComplementMix:
    @given(st.floats(-0.99, 0.99), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_exact_cosine(self, cosine, seed):
        local = np.random.default_rng(seed)
        base = local.normal(size=8)
        out = orthogonal_complement_mix(base, cosine, local)
        achieved = out @ base / (np.linalg.norm(out) * np.linalg.norm(base))
        assert achieved == pytest.approx(cosine, abs=1e-9)

    def test_unit_output(self, rng):
        out = orthogonal_complement_mix(rng.normal(size=5), 0.3, rng)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_invalid_cosine(self, rng):
        with pytest.raises(ValueError):
            orthogonal_complement_mix(np.ones(3), 1.5, rng)
