"""Tests for the write-once mmap shard cache (``repro.data.shardcache``).

The robustness contract under test: a cache file is *never* silently
trusted — corruption of any kind (torn write, truncation, stale version,
identity mismatch) makes ``load`` return ``None`` and delete the file so
the caller regenerates it.
"""

import os
import signal
import struct
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.data import ShardCache
from repro.data import shardcache as shardcache_module
from repro.data.shardcache import CACHE_VERSION, MAGIC


def sample_shard(rows: int = 16):
    rng = np.random.default_rng(7)
    inputs = rng.integers(0, 100, size=(rows, 5), dtype=np.int64)
    targets = {
        "ctr": rng.integers(0, 2, size=rows).astype(np.float64),
        "cvr": rng.normal(size=rows).astype(np.float32),
    }
    return inputs, targets


class TestRoundtrip:
    def test_mapping_targets_bitwise(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        cache.store("k", 3, 0, inputs, targets)
        loaded_inputs, loaded_targets = cache.load("k", 3, 0)
        np.testing.assert_array_equal(loaded_inputs, inputs)
        assert loaded_inputs.dtype == inputs.dtype
        for name in targets:
            np.testing.assert_array_equal(loaded_targets[name], targets[name])
            assert loaded_targets[name].dtype == targets[name].dtype

    def test_tuple_inputs_roundtrip(self, tmp_path):
        cache = ShardCache(tmp_path)
        rng = np.random.default_rng(0)
        inputs = (rng.normal(size=(8, 2)), rng.integers(0, 5, size=(8, 3)))
        targets = rng.normal(size=8)
        cache.store("k", 0, 1, inputs, targets)
        loaded_inputs, loaded_targets = cache.load("k", 0, 1)
        assert isinstance(loaded_inputs, tuple) and len(loaded_inputs) == 2
        np.testing.assert_array_equal(loaded_inputs[0], inputs[0])
        np.testing.assert_array_equal(loaded_inputs[1], inputs[1])
        np.testing.assert_array_equal(loaded_targets, targets)

    def test_loaded_arrays_are_readonly_memmaps(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        cache.store("k", 0, 0, inputs, targets)
        loaded_inputs, _ = cache.load("k", 0, 0)
        assert isinstance(loaded_inputs, np.memmap)
        with pytest.raises((ValueError, OSError)):
            loaded_inputs[0, 0] = 1

    def test_missing_file_is_a_clean_miss(self, tmp_path):
        assert ShardCache(tmp_path).load("nope", 0, 0) is None

    def test_store_is_write_once(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        path = cache.store("k", 0, 0, inputs, targets)
        stamp = path.stat().st_mtime_ns
        other_inputs = inputs + 1
        assert cache.store("k", 0, 0, other_inputs, targets) == path
        assert path.stat().st_mtime_ns == stamp  # not rewritten
        loaded_inputs, _ = cache.load("k", 0, 0)
        np.testing.assert_array_equal(loaded_inputs, inputs)

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        cache.store("k", 0, 0, inputs, targets)
        assert [p.suffix for p in tmp_path.iterdir()] == [".shard"]

    def test_discard_drops_entry_and_allows_rewrite(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        path = cache.store("k", 0, 0, inputs, targets)
        cache.discard("k", 0, 0)
        assert not path.exists()
        assert cache.load("k", 0, 0) is None
        cache.discard("k", 0, 0)  # idempotent on a missing file
        other_inputs = inputs + 1
        cache.store("k", 0, 0, other_inputs, targets)
        loaded_inputs, _ = cache.load("k", 0, 0)
        np.testing.assert_array_equal(loaded_inputs, other_inputs)


class TestCorruptionDetection:
    def corrupt_and_load(self, tmp_path, mutate):
        """Store a shard, mutate its bytes, and attempt a load."""
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        path = cache.store("k", 5, 2, inputs, targets)
        raw = bytearray(path.read_bytes())
        path.write_bytes(bytes(mutate(raw)))
        result = cache.load("k", 5, 2)
        return result, path

    def test_truncated_payload_rejected_and_deleted(self, tmp_path):
        result, path = self.corrupt_and_load(tmp_path, lambda raw: raw[:-10])
        assert result is None
        assert not path.exists()

    def test_bad_magic_rejected_and_deleted(self, tmp_path):
        def mutate(raw):
            raw[:len(MAGIC)] = b"X" * len(MAGIC)
            return raw

        result, path = self.corrupt_and_load(tmp_path, mutate)
        assert result is None
        assert not path.exists()

    def test_implausible_header_length_rejected(self, tmp_path):
        def mutate(raw):
            raw[len(MAGIC):len(MAGIC) + 8] = struct.pack("<Q", 1 << 40)
            return raw

        result, path = self.corrupt_and_load(tmp_path, mutate)
        assert result is None
        assert not path.exists()

    def test_garbage_header_rejected(self, tmp_path):
        def mutate(raw):
            start = len(MAGIC) + 8
            raw[start:start + 4] = b"\xff\xfe\xfd\xfc"
            return raw

        result, path = self.corrupt_and_load(tmp_path, mutate)
        assert result is None
        assert not path.exists()

    def test_version_mismatch_rejected_and_deleted(self, tmp_path, monkeypatch):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        monkeypatch.setattr(shardcache_module, "CACHE_VERSION", CACHE_VERSION + 1)
        path = cache.store("k", 0, 0, inputs, targets)
        monkeypatch.undo()
        assert cache.load("k", 0, 0) is None
        assert not path.exists()

    def test_identity_mismatch_rejected(self, tmp_path):
        # A file copied (or hash-collided) onto another key's path must
        # fail the header identity check, not serve the wrong data.
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        source = cache.store("key-a", 0, 0, inputs, targets)
        impostor = cache.path_for("key-b", 0, 0)
        impostor.write_bytes(source.read_bytes())
        assert cache.load("key-b", 0, 0) is None
        assert not impostor.exists()
        # The original entry is untouched.
        assert cache.load("key-a", 0, 0) is not None

    def test_wrong_seed_or_shard_never_served(self, tmp_path):
        cache = ShardCache(tmp_path)
        inputs, targets = sample_shard()
        path = cache.store("k", 0, 0, inputs, targets)
        copy = cache.path_for("k", 1, 0)
        copy.write_bytes(path.read_bytes())
        assert cache.load("k", 1, 0) is None


class TestTornWrite:
    def test_writer_killed_mid_flush_never_poisons_the_cache(self, tmp_path):
        """SIGKILL a writer that flushed the header but not the payload
        (the worst torn write: a plausible prefix on the *final* path);
        load must reject + delete it, and a re-store must recover."""
        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import sys, time\n"
                    "import numpy as np\n"
                    "from repro.data import ShardCache\n"
                    "cache = ShardCache(sys.argv[1])\n"
                    "path = cache.path_for('k', 5, 2)\n"
                    "inputs = np.arange(80, dtype=np.int64).reshape(16, 5)\n"
                    "targets = {'ctr': np.ones(16), 'cvr': np.zeros(16)}\n"
                    "class HeaderOnly:\n"
                    "    def __init__(self, fh): self.fh, self.calls = fh, 0\n"
                    "    def write(self, data):\n"
                    "        self.fh.write(data)\n"
                    "        self.calls += 1\n"
                    "        if self.calls == 3:  # magic + length + header out\n"
                    "            self.fh.flush()\n"
                    "            print('TORN', flush=True)\n"
                    "            time.sleep(600)\n"
                    "with open(path, 'wb') as fh:\n"
                    "    ShardCache._write_to(HeaderOnly(fh), 'k', 5, 2, "
                    "inputs, targets)\n"
                ),
                str(tmp_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = child.stdout.readline()
            assert line.strip() == "TORN", f"writer never reached flush: {line!r}"
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)

        cache = ShardCache(tmp_path)
        torn = cache.path_for("k", 5, 2)
        deadline = time.monotonic() + 10
        while not torn.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert torn.exists(), "writer produced no file"
        assert cache.load("k", 5, 2) is None
        assert not torn.exists()

        inputs, targets = sample_shard()
        cache.store("k", 5, 2, inputs, targets)
        loaded_inputs, _ = cache.load("k", 5, 2)
        np.testing.assert_array_equal(loaded_inputs, inputs)
