"""Tests for the generator options added for the analysis experiments."""

import numpy as np
import pytest

from repro.data import make_movielens, make_officehome, make_qm9
from repro.data.movielens import GENRES
from repro.data.qm9 import PROPERTIES


class TestSharedMoviePool:
    def test_shared_pool_overlaps(self):
        bench = make_movielens(
            genres=GENRES[:2],
            records_per_genre=200,
            num_movies=60,
            shared_movie_pool=True,
            seed=0,
        )
        movie_sets = []
        for genre in GENRES[:2]:
            inputs, _ = bench.train[genre].all()
            movie_sets.append(set(inputs[:, 1]))
        assert movie_sets[0] & movie_sets[1]

    def test_default_pools_disjoint(self):
        bench = make_movielens(
            genres=GENRES[:2], records_per_genre=200, num_movies=60, seed=0
        )
        movie_sets = []
        for genre in GENRES[:2]:
            inputs, _ = bench.train[genre].all()
            movie_sets.append(set(inputs[:, 1]))
        assert not (movie_sets[0] & movie_sets[1])


class TestQM9EvalPools:
    def test_independent_eval_sizes(self):
        bench = make_qm9(
            properties=PROPERTIES[:2],
            molecules_per_task=25,
            val_molecules=30,
            test_molecules=50,
            seed=0,
        )
        for prop in PROPERTIES[:2]:
            assert len(bench.train[prop]) == 25
            assert len(bench.val[prop]) == 30
            assert len(bench.test[prop]) == 50

    def test_eval_targets_noise_free_and_standardized(self):
        """Test targets carry no injected label noise (deterministic from
        the graph invariants), so evaluation measures the model only."""
        a = make_qm9(properties=("u0",), molecules_per_task=20, noise=0.9, seed=3)
        b = make_qm9(properties=("u0",), molecules_per_task=20, noise=0.0, seed=3)
        _, ta = a.test["u0"].all()
        _, tb = b.test["u0"].all()
        np.testing.assert_allclose(ta, tb)


class TestOfficeHomeConflict:
    def test_conflict_zero_means_same_prototype_rendering(self):
        """With domain_conflict=0 the only inter-domain difference is the
        style transform; higher conflict adds per-class distortions that
        change the class-conditional image statistics."""
        calm = make_officehome(
            num_classes=4, samples_per_domain=100, domain_conflict=0.0, seed=0
        )
        stressed = make_officehome(
            num_classes=4, samples_per_domain=100, domain_conflict=1.5, seed=0
        )
        calm_var = np.var(calm.train["Art"].all()[0])
        stressed_var = np.var(stressed.train["Art"].all()[0])
        assert stressed_var > calm_var

    def test_negative_conflict_rejected(self):
        with pytest.raises(ValueError):
            make_officehome(num_classes=3, domain_conflict=-0.1)
