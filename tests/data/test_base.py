"""Tests for dataset machinery: TaskSpec, ArrayDataset, DataLoader, splits."""

import numpy as np
import pytest

from repro.data import (
    MULTI_INPUT,
    SINGLE_INPUT,
    ArrayDataset,
    Benchmark,
    DataLoader,
    TaskSpec,
    train_val_test_split,
)
from repro.nn.functional import mse_loss


class TestTaskSpec:
    def test_valid_construction(self):
        spec = TaskSpec("t", mse_loss, {"rmse": lambda o, t: 0.0}, {"rmse": False})
        assert spec.name == "t"

    def test_missing_direction_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("t", mse_loss, {"rmse": lambda o, t: 0.0}, {})


class TestArrayDataset:
    def test_length(self, rng):
        dataset = ArrayDataset(rng.normal(size=(10, 3)), rng.normal(size=10))
        assert len(dataset) == 10

    def test_batch_indexing(self, rng):
        inputs = rng.normal(size=(10, 3))
        targets = rng.normal(size=10)
        dataset = ArrayDataset(inputs, targets)
        x, y = dataset.batch(np.array([1, 3]))
        np.testing.assert_allclose(x, inputs[[1, 3]])
        np.testing.assert_allclose(y, targets[[1, 3]])

    def test_dict_targets(self, rng):
        dataset = ArrayDataset(
            rng.normal(size=(6, 2)), {"a": rng.normal(size=6), "b": rng.normal(size=6)}
        )
        _, targets = dataset.batch(np.array([0, 5]))
        assert set(targets) == {"a", "b"}
        assert len(targets["a"]) == 2

    def test_tuple_inputs(self, rng):
        inputs = (rng.normal(size=(5, 2, 2)), rng.normal(size=(5, 2, 2)), np.ones((5, 2)))
        dataset = ArrayDataset(inputs, rng.normal(size=5))
        x, _ = dataset.batch(np.array([0, 1]))
        assert isinstance(x, tuple)
        assert all(part.shape[0] == 2 for part in x)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_dict_target_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 2)), {"a": rng.normal(size=4)})

    def test_subset(self, rng):
        dataset = ArrayDataset(rng.normal(size=(8, 2)), rng.normal(size=8))
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3

    def test_all(self, rng):
        dataset = ArrayDataset(rng.normal(size=(4, 2)), rng.normal(size=4))
        x, y = dataset.all()
        assert len(x) == 4


class TestDataLoader:
    def test_batch_count(self, rng):
        dataset = ArrayDataset(rng.normal(size=(10, 2)), rng.normal(size=10))
        assert len(DataLoader(dataset, 3, rng=rng)) == 4
        assert len(DataLoader(dataset, 3, rng=rng, drop_last=True)) == 3

    def test_covers_all_samples(self, rng):
        targets = np.arange(10.0)
        dataset = ArrayDataset(np.zeros((10, 1)), targets)
        loader = DataLoader(dataset, 3, rng=rng)
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen) == sorted(targets)

    def test_shuffle_changes_order_between_epochs(self):
        dataset = ArrayDataset(np.zeros((50, 1)), np.arange(50.0))
        loader = DataLoader(dataset, 50, rng=np.random.default_rng(0))
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.allclose(first, second)

    def test_no_shuffle_keeps_order(self):
        dataset = ArrayDataset(np.zeros((5, 1)), np.arange(5.0))
        loader = DataLoader(dataset, 2, shuffle=False)
        batches = [y for _, y in loader]
        np.testing.assert_allclose(np.concatenate(batches), np.arange(5.0))

    def test_drop_last(self):
        dataset = ArrayDataset(np.zeros((5, 1)), np.arange(5.0))
        loader = DataLoader(dataset, 2, shuffle=False, drop_last=True)
        assert sum(len(y) for _, y in loader) == 4

    def test_invalid_batch_size(self, rng):
        dataset = ArrayDataset(np.zeros((5, 1)), np.zeros(5))
        with pytest.raises(ValueError):
            DataLoader(dataset, 0)


class TestSplits:
    def test_proportions(self, rng):
        train, val, test = train_val_test_split(100, rng, 0.2, 0.1)
        assert len(test) == 10
        assert len(val) == 20
        assert len(train) == 70

    def test_disjoint_and_complete(self, rng):
        train, val, test = train_val_test_split(50, rng)
        union = np.concatenate([train, val, test])
        assert sorted(union) == list(range(50))

    def test_invalid_fractions(self, rng):
        with pytest.raises(ValueError):
            train_val_test_split(10, rng, 0.5, 0.5)


class TestBenchmark:
    def _dummy(self, mode=SINGLE_INPUT):
        spec = TaskSpec("t", mse_loss, {}, {})
        data = ArrayDataset(np.zeros((4, 2)), {"t": np.zeros(4)})
        return Benchmark("test", mode, [spec], data, data, data, lambda *a: None, lambda *a: None)

    def test_task_lookup(self):
        bench = self._dummy()
        assert bench.task("t").name == "t"
        with pytest.raises(KeyError):
            bench.task("missing")

    def test_task_names(self):
        assert self._dummy().task_names == ["t"]

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            self._dummy(mode="both")
