"""Tests for dataset machinery: TaskSpec, ArrayDataset, DataLoader, splits."""

import numpy as np
import pytest

from repro.data import (
    MULTI_INPUT,
    SINGLE_INPUT,
    ArrayDataset,
    Benchmark,
    DataLoader,
    TaskSpec,
    train_val_test_split,
)
from repro.nn.functional import mse_loss


class TestTaskSpec:
    def test_valid_construction(self):
        spec = TaskSpec("t", mse_loss, {"rmse": lambda o, t: 0.0}, {"rmse": False})
        assert spec.name == "t"

    def test_missing_direction_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("t", mse_loss, {"rmse": lambda o, t: 0.0}, {})


class TestArrayDataset:
    def test_length(self, rng):
        dataset = ArrayDataset(rng.normal(size=(10, 3)), rng.normal(size=10))
        assert len(dataset) == 10

    def test_batch_indexing(self, rng):
        inputs = rng.normal(size=(10, 3))
        targets = rng.normal(size=10)
        dataset = ArrayDataset(inputs, targets)
        x, y = dataset.batch(np.array([1, 3]))
        np.testing.assert_allclose(x, inputs[[1, 3]])
        np.testing.assert_allclose(y, targets[[1, 3]])

    def test_dict_targets(self, rng):
        dataset = ArrayDataset(
            rng.normal(size=(6, 2)), {"a": rng.normal(size=6), "b": rng.normal(size=6)}
        )
        _, targets = dataset.batch(np.array([0, 5]))
        assert set(targets) == {"a", "b"}
        assert len(targets["a"]) == 2

    def test_tuple_inputs(self, rng):
        inputs = (rng.normal(size=(5, 2, 2)), rng.normal(size=(5, 2, 2)), np.ones((5, 2)))
        dataset = ArrayDataset(inputs, rng.normal(size=5))
        x, _ = dataset.batch(np.array([0, 1]))
        assert isinstance(x, tuple)
        assert all(part.shape[0] == 2 for part in x)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_dict_target_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 2)), {"a": rng.normal(size=4)})

    def test_subset(self, rng):
        dataset = ArrayDataset(rng.normal(size=(8, 2)), rng.normal(size=8))
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3

    def test_all(self, rng):
        dataset = ArrayDataset(rng.normal(size=(4, 2)), rng.normal(size=4))
        x, y = dataset.all()
        assert len(x) == 4


class TestDataLoader:
    def test_batch_count(self, rng):
        dataset = ArrayDataset(rng.normal(size=(10, 2)), rng.normal(size=10))
        assert len(DataLoader(dataset, 3, rng=rng)) == 4
        assert len(DataLoader(dataset, 3, rng=rng, drop_last=True)) == 3

    def test_covers_all_samples(self, rng):
        targets = np.arange(10.0)
        dataset = ArrayDataset(np.zeros((10, 1)), targets)
        loader = DataLoader(dataset, 3, rng=rng)
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen) == sorted(targets)

    def test_shuffle_changes_order_between_epochs(self):
        dataset = ArrayDataset(np.zeros((50, 1)), np.arange(50.0))
        loader = DataLoader(dataset, 50, rng=np.random.default_rng(0))
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.allclose(first, second)

    def test_no_shuffle_keeps_order(self):
        dataset = ArrayDataset(np.zeros((5, 1)), np.arange(5.0))
        loader = DataLoader(dataset, 2, shuffle=False)
        batches = [y for _, y in loader]
        np.testing.assert_allclose(np.concatenate(batches), np.arange(5.0))

    def test_drop_last(self):
        dataset = ArrayDataset(np.zeros((5, 1)), np.arange(5.0))
        loader = DataLoader(dataset, 2, shuffle=False, drop_last=True)
        assert sum(len(y) for _, y in loader) == 4

    def test_invalid_batch_size(self, rng):
        dataset = ArrayDataset(np.zeros((5, 1)), np.zeros(5))
        with pytest.raises(ValueError):
            DataLoader(dataset, 0)


class TestSplits:
    def test_proportions(self, rng):
        train, val, test = train_val_test_split(100, rng, 0.2, 0.1)
        assert len(test) == 10
        assert len(val) == 20
        assert len(train) == 70

    def test_disjoint_and_complete(self, rng):
        train, val, test = train_val_test_split(50, rng)
        union = np.concatenate([train, val, test])
        assert sorted(union) == list(range(50))

    def test_invalid_fractions(self, rng):
        with pytest.raises(ValueError):
            train_val_test_split(10, rng, 0.5, 0.5)


class TestBenchmark:
    def _dummy(self, mode=SINGLE_INPUT):
        spec = TaskSpec("t", mse_loss, {}, {})
        data = ArrayDataset(np.zeros((4, 2)), {"t": np.zeros(4)})
        return Benchmark("test", mode, [spec], data, data, data, lambda *a: None, lambda *a: None)

    def test_task_lookup(self):
        bench = self._dummy()
        assert bench.task("t").name == "t"
        with pytest.raises(KeyError):
            bench.task("missing")

    def test_task_names(self):
        assert self._dummy().task_names == ["t"]

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            self._dummy(mode="both")


class TestDeterministicSeeding:
    def test_shard_rng_is_seed_plus_index(self):
        from repro.data import shard_rng

        expected = np.random.default_rng(5 + 3).random(8)
        np.testing.assert_array_equal(shard_rng(5, 3).random(8), expected)

    def test_shard_rng_rejects_missing_seed(self):
        from repro.data import shard_rng

        with pytest.raises(ValueError, match="seed"):
            shard_rng(None, 0)

    def test_shard_rng_rejects_negative_shard(self):
        from repro.data import shard_rng

        with pytest.raises(ValueError, match="shard_index"):
            shard_rng(0, -1)

    def test_batch_index_iter_covers_each_sample_once(self):
        from repro.data import batch_index_iter

        batches = list(batch_index_iter(10, 4, rng=np.random.default_rng(1)))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert sorted(np.concatenate(batches)) == list(range(10))

    def test_batch_index_iter_drop_last(self):
        from repro.data import batch_index_iter

        batches = list(
            batch_index_iter(10, 4, rng=np.random.default_rng(1), drop_last=True)
        )
        assert [len(b) for b in batches] == [4, 4]

    def test_batch_index_iter_no_shuffle_is_sequential(self):
        from repro.data import batch_index_iter

        batches = list(batch_index_iter(6, 3, shuffle=False))
        np.testing.assert_array_equal(batches[0], [0, 1, 2])
        np.testing.assert_array_equal(batches[1], [3, 4, 5])

    def test_loader_and_index_iter_share_one_stream(self, rng):
        """The loader's batch order IS batch_index_iter over the same rng."""
        from repro.data import batch_index_iter

        inputs = np.arange(20, dtype=np.float64).reshape(10, 2)
        dataset = ArrayDataset(inputs, {"t": np.zeros(10)})
        loader = DataLoader(dataset, 4, seed=13)
        indices = batch_index_iter(10, 4, rng=np.random.default_rng(13))
        for (batch_inputs, _targets), idx in zip(loader, indices):
            np.testing.assert_array_equal(batch_inputs, inputs[idx])

    def test_unseeded_loaders_are_reproducible(self):
        """Regression: the rng=None fallback must not draw OS entropy."""
        dataset = ArrayDataset(np.arange(12, dtype=np.float64).reshape(12, 1), np.zeros(12))
        first = [b for b, _ in DataLoader(dataset, 5)]
        second = [b for b, _ in DataLoader(dataset, 5)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_loader_rejects_rng_and_seed_together(self):
        dataset = ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError, match="rng or seed"):
            DataLoader(dataset, 2, rng=np.random.default_rng(0), seed=1)
