"""Tests for the six synthetic benchmark generators."""

import networkx as nx
import numpy as np
import pytest

from repro.data import (
    COUNTRIES,
    DOMAINS,
    GENRES,
    MULTI_INPUT,
    PROPERTIES,
    SINGLE_INPUT,
    generate_molecule,
    make_aliexpress,
    make_aliexpress_suite,
    make_cityscapes,
    make_movielens,
    make_nyuv2,
    make_officehome,
    make_qm9,
    molecule_properties,
)
from repro.data.cityscapes import NUM_CLASSES as CITY_CLASSES
from repro.data.cityscapes import render_street
from repro.data.nyuv2 import NUM_CLASSES as NYU_CLASSES
from repro.data.nyuv2 import render_scene


class TestAliExpress:
    def test_structure(self):
        bench = make_aliexpress("ES", num_records=300, seed=0)
        assert bench.mode == SINGLE_INPUT
        assert bench.task_names == ["CTR", "CTCVR"]
        assert len(bench.train) + len(bench.val) + len(bench.test) == 300

    def test_funnel_nesting(self):
        """CTCVR labels are a subset of CTR labels (conversion needs a click)."""
        bench = make_aliexpress("ES", num_records=500, seed=1)
        _, targets = bench.train.all()
        assert np.all(targets["CTCVR"] <= targets["CTR"])

    def test_base_rates_ordered(self):
        bench = make_aliexpress("US", num_records=2000, seed=0)
        _, targets = bench.train.all()
        ctr_rate = targets["CTR"].mean()
        ctcvr_rate = targets["CTCVR"].mean()
        assert 0.05 < ctcvr_rate < ctr_rate < 0.6

    def test_unknown_country(self):
        with pytest.raises(ValueError):
            make_aliexpress("DE")

    def test_suite_covers_four_countries(self):
        suite = make_aliexpress_suite(num_records=200)
        assert set(suite) == set(COUNTRIES)

    def test_deterministic(self):
        a = make_aliexpress("FR", num_records=200, seed=5)
        b = make_aliexpress("FR", num_records=200, seed=5)
        xa, ya = a.train.all()
        xb, yb = b.train.all()
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya["CTR"], yb["CTR"])

    def test_model_factories(self, rng):
        bench = make_aliexpress("NL", num_records=200)
        for arch in ("hps", "mmoe", "cgc", "ple"):
            model = bench.build_model(arch, rng)
            x, _ = bench.train.batch(np.arange(4))
            assert model.forward(x, "CTR").shape == (4,)
        with pytest.raises(ValueError):
            bench.build_model("mtan", rng)

    def test_stl_model_single_task(self, rng):
        bench = make_aliexpress("ES", num_records=200)
        model = bench.build_stl_model("CTCVR", rng)
        assert model.task_names == ["CTCVR"]


class TestMovieLens:
    def test_structure(self):
        bench = make_movielens(genres=GENRES[:3], records_per_genre=100, seed=0)
        assert bench.mode == MULTI_INPUT
        assert set(bench.train) == set(GENRES[:3])

    def test_ratings_in_star_range(self):
        bench = make_movielens(genres=GENRES[:2], records_per_genre=200)
        for genre in GENRES[:2]:
            _, ratings = bench.train[genre].all()
            assert ratings.min() >= 1.0
            assert ratings.max() <= 5.0

    def test_input_layout(self):
        bench = make_movielens(genres=GENRES[:1], records_per_genre=50)
        inputs, _ = bench.train[GENRES[0]].all()
        assert inputs.shape[1] == 6  # user + movie + 4 history
        assert inputs.dtype == np.int64

    def test_genre_pools_disjoint(self):
        bench = make_movielens(genres=GENRES[:3], records_per_genre=150, num_movies=90)
        movie_sets = []
        for genre in GENRES[:3]:
            inputs, _ = bench.train[genre].all()
            movie_sets.append(set(inputs[:, 1]))
        assert movie_sets[0].isdisjoint(movie_sets[1])
        assert movie_sets[1].isdisjoint(movie_sets[2])

    def test_unknown_genre(self):
        with pytest.raises(ValueError):
            make_movielens(genres=("Action",))

    def test_mmoe_architecture_supported(self, rng):
        bench = make_movielens(genres=GENRES[:2], records_per_genre=60)
        model = bench.build_model("mmoe", rng)
        x, _ = bench.train[GENRES[0]].batch(np.arange(3))
        assert model.forward(x, GENRES[0]).shape == (3,)


class TestQM9:
    def test_molecule_generation(self, rng):
        for _ in range(10):
            mol = generate_molecule(rng)
            assert nx.is_connected(mol)
            assert 4 <= mol.number_of_nodes() <= 12
            assert max(d for _, d in mol.degree()) <= 4

    def test_properties_vector(self, rng):
        props = molecule_properties(generate_molecule(rng))
        assert props.shape == (len(PROPERTIES),)
        assert np.all(np.isfinite(props))

    def test_ring_count_invariant(self, rng):
        mol = generate_molecule(rng)
        props = molecule_properties(mol)
        rings = mol.number_of_edges() - mol.number_of_nodes() + 1
        # h298 − u0 = ring count for connected graphs
        assert props[9] - props[7] == pytest.approx(rings)

    def test_benchmark_structure(self):
        bench = make_qm9(properties=PROPERTIES[:3], molecules_per_task=40)
        assert bench.mode == MULTI_INPUT
        inputs, targets = bench.train[PROPERTIES[0]].all()
        nodes, adjacency, mask = inputs
        assert nodes.shape[1:] == (12, 5)
        assert adjacency.shape[1:] == (12, 12)
        assert np.all(np.isfinite(targets))

    def test_targets_standardized(self):
        bench = make_qm9(properties=PROPERTIES[:2], molecules_per_task=150, seed=0)
        for prop in PROPERTIES[:2]:
            _, targets = bench.train[prop].all()
            assert abs(targets.mean()) < 1.0
            assert 0.2 < targets.std() < 3.0

    def test_unknown_property(self):
        with pytest.raises(ValueError):
            make_qm9(properties=("bogus",))

    def test_only_hps(self, rng):
        bench = make_qm9(properties=PROPERTIES[:2], molecules_per_task=30)
        with pytest.raises(ValueError):
            bench.build_model("mmoe", rng)


class TestNYUv2:
    def test_render_consistency(self, rng):
        image, seg, depth, normals = render_scene(rng)
        assert image.shape == (3, 16, 16)
        assert seg.shape == (16, 16)
        assert depth.shape == (16, 16)
        assert normals.shape == (3, 16, 16)
        assert seg.min() >= 0 and seg.max() < NYU_CLASSES

    def test_normals_unit_length(self, rng):
        _, _, _, normals = render_scene(rng)
        norms = np.linalg.norm(normals, axis=0)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-9)

    def test_floor_geometry(self, rng):
        """Floor pixels (class 1) have +y normals and closer depth at bottom."""
        _, seg, depth, normals = render_scene(rng)
        floor = seg == 1
        if floor.any():
            np.testing.assert_allclose(normals[1][floor], np.ones(floor.sum()))
        # Wall depth is the far plane.
        wall = seg == 0
        if wall.any():
            assert depth[wall].max() == pytest.approx(5.0)

    def test_benchmark_structure(self):
        bench = make_nyuv2(num_scenes=30)
        assert bench.mode == SINGLE_INPUT
        assert bench.task_names == ["segmentation", "depth", "normal"]
        x, targets = bench.train.all()
        assert x.shape[1:] == (3, 16, 16)
        assert set(targets) == {"segmentation", "depth", "normal"}


class TestCityScapes:
    def test_render_layout(self, rng):
        image, seg, depth = render_street(rng)
        assert seg.min() >= 0 and seg.max() < CITY_CLASSES
        # Sky at the top, far away.
        assert seg[0].min() == seg[0].max() == 1
        assert depth[0].max() == pytest.approx(50.0)
        # Road at the bottom.
        assert seg[-1].min() == seg[-1].max() == 0

    def test_depth_normalized_targets(self):
        bench = make_cityscapes(num_scenes=20)
        _, targets = bench.train.all()
        assert targets["depth"].max() <= 5.0 + 1e-9

    def test_all_architectures_buildable(self, rng):
        bench = make_cityscapes(num_scenes=20)
        x, _ = bench.train.batch(np.arange(2))
        for arch in ("hps", "mmoe", "cgc", "cross_stitch", "mtan"):
            model = bench.build_model(arch, rng)
            out = model.forward(x, "segmentation")
            assert out.shape == (2, CITY_CLASSES, 16, 16)
        with pytest.raises(ValueError):
            bench.build_model("bogus", rng)


class TestOfficeHome:
    def test_structure(self):
        bench = make_officehome(num_classes=5, samples_per_domain=60)
        assert bench.mode == MULTI_INPUT
        assert set(bench.train) == set(DOMAINS)

    def test_split_follows_paper(self):
        bench = make_officehome(num_classes=5, samples_per_domain=100)
        assert len(bench.train["Art"]) == 60
        assert len(bench.val["Art"]) == 20
        assert len(bench.test["Art"]) == 20

    def test_labels_in_range(self):
        bench = make_officehome(num_classes=7, samples_per_domain=50)
        for domain in DOMAINS:
            _, labels = bench.train[domain].all()
            assert labels.min() >= 0
            assert labels.max() < 7

    def test_domains_share_classes_but_differ_in_style(self):
        bench = make_officehome(num_classes=3, samples_per_domain=300, seed=0)
        means = {}
        for domain in DOMAINS:
            images, _ = bench.train[domain].all()
            means[domain] = images.mean()
        values = list(means.values())
        assert np.std(values) > 0.01  # styles shift the statistics

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            make_officehome(num_classes=1)
