"""Tests for the streaming shard pipeline core (``repro.data.streaming``)."""

import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    ChunkedSource,
    DataLoader,
    ShardCache,
    ShardPrefetcher,
    StreamingDataset,
    StreamingLoader,
    as_stream,
    batch_count,
    num_shards,
    shard_batch_index_iter,
    shard_row_range,
    streaming_batch_count,
)
from repro.obs import Telemetry


def make_dataset(rows: int, seed: int = 0) -> ArrayDataset:
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.normal(size=(rows, 3)),
        {"a": rng.normal(size=rows), "b": rng.normal(size=rows)},
    )


def wait_for_no_prefetch_threads(deadline_seconds: float = 5.0) -> bool:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if not any(
            t.name == "shard-prefetch" and t.is_alive() for t in threading.enumerate()
        ):
            return True
        time.sleep(0.01)
    return False


def test_module_imports_with_docstrings_stripped():
    """Regression: class-body ``__doc__.format`` must survive ``-OO``."""
    import repro

    src = str(Path(repro.__file__).parents[1])
    subprocess.run(
        [sys.executable, "-OO", "-c", "import repro.data.streaming"],
        check=True,
        env={**os.environ, "PYTHONPATH": src},
    )


class TestShardMath:
    def test_num_shards_exact_and_remainder(self):
        assert num_shards(1000, 250) == 4
        assert num_shards(1001, 250) == 5
        assert num_shards(0, 250) == 0

    def test_chunk_larger_than_dataset_is_one_shard(self):
        assert num_shards(10, 1000) == 1
        assert shard_row_range(10, 1000, 0) == (0, 10)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            num_shards(10, 0)
        with pytest.raises(ValueError):
            num_shards(-1, 4)
        with pytest.raises(IndexError):
            shard_row_range(10, 4, 3)

    def test_last_shard_is_partial(self):
        assert shard_row_range(10, 4, 2) == (8, 10)

    def test_streaming_batch_count_is_per_shard(self):
        # 960 rows in 400-row shards at batch 128: shards of 400/400/160
        # yield 4+4+2 batches — not ceil(960/128) = 8.
        assert streaming_batch_count(960, 400, 128) == 10
        assert streaming_batch_count(960, 400, 128, drop_last=True) == 3 + 3 + 1

    def test_drop_last_can_drop_a_whole_small_shard(self):
        # The 2-row trailing shard is below the batch size: zero batches.
        assert streaming_batch_count(10, 4, 4, drop_last=True) == 1 + 1 + 0

    def test_shard_batch_index_iter_covers_every_row_once(self):
        seen = []
        for index, positions in shard_batch_index_iter(
            37, 10, 4, rng=np.random.default_rng(3)
        ):
            start, stop = shard_row_range(37, 10, index)
            assert np.all(positions < stop - start)
            seen.extend((index * 10 + positions).tolist())
        assert sorted(seen) == list(range(37))


class TestBatchCount:
    @pytest.mark.parametrize("rows,batch", [(10, 4), (12, 4), (3, 8)])
    @pytest.mark.parametrize("drop_last", [False, True])
    def test_matches_loader_len_and_actual_yields(self, rows, batch, drop_last):
        loader = DataLoader(
            make_dataset(rows), batch_size=batch, shuffle=False, drop_last=drop_last
        )
        batches = list(loader)
        assert len(loader) == batch_count(rows, batch, drop_last)
        assert len(batches) == len(loader)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            batch_count(10, 0)
        with pytest.raises(ValueError):
            batch_count(-1, 4)


class TestStreamingDataset:
    @pytest.mark.parametrize("rows,chunk", [(20, 7), (20, 5), (3, 100)])
    def test_materialize_restores_the_original_rows(self, rows, chunk):
        dataset = make_dataset(rows)
        restored = as_stream(dataset, chunk).materialize()
        np.testing.assert_array_equal(restored.inputs, dataset.inputs)
        for name in ("a", "b"):
            np.testing.assert_array_equal(restored.targets[name], dataset.targets[name])

    def test_global_batch_matches_eager_across_shards(self):
        dataset = make_dataset(23)
        stream = as_stream(dataset, 5)
        idx = np.random.default_rng(1).permutation(23)[:11]
        x_stream, t_stream = stream.batch(idx)
        x_eager, t_eager = dataset.batch(idx)
        np.testing.assert_array_equal(x_stream, x_eager)
        np.testing.assert_array_equal(t_stream["a"], t_eager["a"])

    def test_lru_holds_at_most_two_shards(self):
        stream = as_stream(make_dataset(40), 10)
        for index in range(4):
            stream.shard(index)
        assert len(stream._lru) == 2
        assert list(stream._lru) == [2, 3]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            as_stream(make_dataset(10), 4).batch(np.array([], dtype=np.int64))

    def test_pickle_drops_telemetry_and_lru(self):
        stream = as_stream(make_dataset(10), 4, telemetry=Telemetry())
        stream.shard(0)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone._lru == {}
        # A pickled stream must still load shards (workers rely on it).
        inputs, _ = clone.load_shard(1)
        np.testing.assert_array_equal(inputs, stream.load_shard(1)[0])

    def test_rejects_negative_prefetch_depth(self):
        with pytest.raises(ValueError):
            as_stream(make_dataset(10), 4, prefetch_depth=-1)

    def test_generated_row_count_is_validated(self):
        stream = as_stream(make_dataset(10), 4)
        stream.source.generate_chunk = lambda index: (
            np.zeros((3, 2)),
            np.zeros(3),
        )
        with pytest.raises(ValueError, match="expected 4"):
            stream.load_shard(0)


class UnderKeyedSource(ChunkedSource):
    """Source whose cache_key deliberately omits ``total_rows``.

    Models a user source with an under-specified key: two configurations
    that generate different shard layouts collide on the same cache
    entry, which ``load_shard`` must detect instead of silently serving
    the wrong rows.
    """

    def __init__(self, total_rows: int, chunk_size: int, seed: int = 0) -> None:
        self.total_rows = total_rows
        self.chunk_size = chunk_size
        self.seed = seed

    def generate_chunk(self, index: int):
        rng = self.shard_generator(index)
        rows = self.shard_length(index)
        return rng.normal(size=(rows, 2)), rng.normal(size=rows)

    def cache_key(self) -> str:
        return "underkeyed"


class TestCachedShardValidation:
    def test_mis_keyed_cache_hit_is_discarded_and_regenerated(self, tmp_path):
        cache = ShardCache(tmp_path)
        StreamingDataset(UnderKeyedSource(8, 8), cache=cache).load_shard(0)

        telemetry = Telemetry()
        narrower = StreamingDataset(UnderKeyedSource(6, 8), cache=cache)
        inputs, targets = narrower.load_shard(0, telemetry=telemetry)
        assert len(inputs) == 6 and len(targets) == 6
        assert telemetry.counter("stream_cache_hits_total").value == 0
        assert telemetry.counter("stream_cache_misses_total").value == 1
        # The stale entry was replaced: the next load is a valid hit.
        inputs, _ = narrower.load_shard(0, telemetry=telemetry)
        assert len(inputs) == 6
        assert telemetry.counter("stream_cache_hits_total").value == 1

    def test_matching_cache_hit_still_served(self, tmp_path):
        cache = ShardCache(tmp_path)
        telemetry = Telemetry()
        stream = StreamingDataset(UnderKeyedSource(8, 8), cache=cache)
        first, _ = stream.load_shard(0, telemetry=telemetry)
        hit, _ = stream.load_shard(0, telemetry=telemetry)
        np.testing.assert_array_equal(first, hit)
        assert telemetry.counter("stream_cache_hits_total").value == 1


class TestStreamingLoader:
    @pytest.mark.parametrize("prefetch_depth", [0, 1])
    def test_covers_every_row_exactly_once(self, prefetch_depth):
        dataset = make_dataset(37)
        stream = as_stream(dataset, 10, prefetch_depth=prefetch_depth)
        loader = StreamingLoader(stream, batch_size=4, seed=5)
        total = sum(len(x) for x, _ in loader)
        assert total == 37
        assert len(loader) == streaming_batch_count(37, 10, 4)

    def test_prefetch_does_not_change_the_batch_stream(self):
        dataset = make_dataset(41)
        plain = StreamingLoader(as_stream(dataset, 8, prefetch_depth=0), 4, seed=9)
        prefetched = StreamingLoader(as_stream(dataset, 8, prefetch_depth=1), 4, seed=9)
        for (x0, t0), (x1, t1) in zip(plain, prefetched, strict=True):
            np.testing.assert_array_equal(x0, x1)
            np.testing.assert_array_equal(t0["b"], t1["b"])

    def test_batches_never_cross_shard_boundaries(self):
        rows, chunk, batch = 22, 8, 8
        dataset = ArrayDataset(np.arange(rows, dtype=np.float64), np.zeros(rows))
        loader = StreamingLoader(
            as_stream(dataset, chunk), batch, shuffle=False
        )
        sizes = [len(x) for x, _ in loader]
        assert sizes == [8, 8, 6]  # the 6-row trailing shard stays partial

    def test_drop_last_is_per_shard(self):
        dataset = make_dataset(22)
        loader = StreamingLoader(as_stream(dataset, 8), 8, seed=0, drop_last=True)
        sizes = [len(x) for x, _ in loader]
        assert sizes == [8, 8]  # trailing 6-row shard yields no full batch
        assert len(loader) == 2

    def test_matches_batch_indices_draw_sequence(self):
        # The loader and the parallel trainer's index stream must consume
        # identical RNG draws, or parallel runs diverge from sequential.
        dataset = make_dataset(37)
        stream = as_stream(dataset, 10)
        loader_batches = list(
            StreamingLoader(stream, 4, rng=np.random.default_rng(11))
        )
        index_stream = stream.batch_indices(4, rng=np.random.default_rng(11))
        for (x, targets), idx in zip(loader_batches, index_stream, strict=True):
            x_ref, t_ref = dataset.batch(idx)
            np.testing.assert_array_equal(x, x_ref)
            np.testing.assert_array_equal(targets["a"], t_ref["a"])

    def test_early_exit_leaks_no_prefetch_thread(self):
        loader = StreamingLoader(as_stream(make_dataset(40), 4, prefetch_depth=1), 4)
        iterator = iter(loader)
        next(iterator)
        iterator.close()  # generator finally closes the prefetcher
        assert wait_for_no_prefetch_threads()

    def test_rejects_bad_arguments(self):
        stream = as_stream(make_dataset(10), 4)
        with pytest.raises(ValueError):
            StreamingLoader(stream, 0)
        with pytest.raises(ValueError):
            StreamingLoader(stream, 4, rng=np.random.default_rng(0), seed=1)


class TestShardPrefetcher:
    def test_yields_in_order_with_counters(self):
        telemetry = Telemetry()
        prefetcher = ShardPrefetcher(
            lambda index: index * 10, [2, 0, 1], telemetry=telemetry
        )
        assert list(prefetcher) == [(2, 20), (0, 0), (1, 10)]
        hits = telemetry.counter("stream_prefetch_hits_total").value
        stalls = telemetry.counter("stream_prefetch_stalls_total").value
        assert hits + stalls == 3
        assert prefetcher.closed

    def test_producer_error_reaches_the_consumer(self):
        def load(index):
            if index == 1:
                raise RuntimeError("generation failed")
            return index

        prefetcher = ShardPrefetcher(load, [0, 1, 2])
        with pytest.raises(RuntimeError, match="generation failed"):
            list(prefetcher)
        assert wait_for_no_prefetch_threads()

    def test_close_is_idempotent_and_stops_the_producer(self):
        started = threading.Event()

        def slow_load(index):
            started.set()
            time.sleep(0.01)
            return index

        prefetcher = ShardPrefetcher(slow_load, list(range(100)))
        started.wait(timeout=5)
        prefetcher.close()
        prefetcher.close()
        assert prefetcher.closed
        assert wait_for_no_prefetch_threads()

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ShardPrefetcher(lambda index: index, [0], depth=0)
