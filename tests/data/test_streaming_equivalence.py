"""Streaming-vs-eager equivalence: identical batches, identical training.

The eager path is the reference oracle: ``StreamingDataset.materialize()``
concatenates every shard, and :func:`~repro.data.as_stream` over that
dataset walks the *same* loader machinery with the same RNG draws — so a
streaming run and its materialized oracle must produce bit-identical
batches and (sequentially) bit-identical trained parameters, across
generators, gradient spaces, and the data-parallel trainer.
"""

import threading
import time
import tracemalloc

import numpy as np
import pytest

from repro.core.balancer import create_balancer
from repro.data import (
    ShardCache,
    StreamingLoader,
    as_stream,
    make_aliexpress_stream,
    make_movielens_stream,
    make_synthetic_stream,
)
from repro.training import MTLTrainer

GENRES = ("Crime", "Documentary")


def make_stream(name: str):
    if name == "aliexpress":
        return make_aliexpress_stream(
            num_records=384, chunk_size=128, val_records=32, test_records=32, seed=3
        )
    if name == "movielens":
        return make_movielens_stream(
            genres=GENRES,
            records_per_genre=192,
            chunk_size=64,
            val_records=32,
            test_records=32,
            seed=3,
        )
    if name == "synthetic":
        return make_synthetic_stream(
            num_samples=384, chunk_size=128, val_records=32, test_records=32, seed=3
        )
    raise ValueError(name)


def oracle_view(train_data):
    """The eager oracle: materialized shards behind the same loader."""
    if isinstance(train_data, dict):
        return {name: oracle_view(data) for name, data in train_data.items()}
    return as_stream(train_data.materialize(), train_data.chunk_size)


def fit_params(benchmark, train_data, grad_space="parameters", parallel=0):
    def factory():
        return benchmark.build_model("hps", np.random.default_rng(0))

    model = factory()
    kwargs = {}
    if parallel:
        kwargs.update(parallel=parallel, model_factory=factory)
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        create_balancer("equal", seed=0),
        mode=benchmark.mode,
        grad_space=grad_space,
        seed=0,
        **kwargs,
    )
    trainer.fit(train_data, epochs=2, batch_size=64)
    return np.concatenate([np.asarray(p.data).ravel() for p in model.parameters()])


def no_prefetch_threads(deadline_seconds: float = 5.0) -> bool:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if not any(
            t.name == "shard-prefetch" and t.is_alive() for t in threading.enumerate()
        ):
            return True
        time.sleep(0.01)
    return False


class TestBatchEquivalence:
    @pytest.mark.parametrize("name", ["aliexpress", "synthetic"])
    def test_streaming_batches_are_bit_identical_to_eager(self, name):
        train = make_stream(name).train
        oracle = oracle_view(train)
        stream_loader = StreamingLoader(train, 64, seed=11)
        oracle_loader = StreamingLoader(oracle, 64, seed=11)
        for (x_s, t_s), (x_o, t_o) in zip(stream_loader, oracle_loader, strict=True):
            np.testing.assert_array_equal(x_s, x_o)
            if isinstance(t_s, dict):
                for task in t_s:
                    np.testing.assert_array_equal(t_s[task], t_o[task])
            else:
                np.testing.assert_array_equal(t_s, t_o)

    def test_movielens_per_genre_streams_match_eager(self):
        train = make_stream("movielens").train
        assert set(train) == set(GENRES)
        for genre, dataset in train.items():
            oracle = oracle_view(dataset)
            for (x_s, t_s), (x_o, t_o) in zip(
                StreamingLoader(dataset, 32, seed=5),
                StreamingLoader(oracle, 32, seed=5),
                strict=True,
            ):
                np.testing.assert_array_equal(x_s, x_o)
                np.testing.assert_array_equal(t_s, t_o)


class TestCacheKeying:
    def test_movielens_cache_is_not_shared_across_relatedness(self, tmp_path):
        """Regression: relatedness shapes the world's genre rotations (and
        thus every rating), so two runs differing only in relatedness must
        not serve each other's cached shards."""

        def first_shard_targets(relatedness, cache):
            benchmark = make_movielens_stream(
                genres=GENRES,
                records_per_genre=64,
                chunk_size=64,
                relatedness=relatedness,
                val_records=8,
                test_records=8,
                seed=3,
                cache=cache,
            )
            _, targets = benchmark.train[GENRES[0]].load_shard(0)
            return np.array(targets)

        cache = ShardCache(tmp_path)
        low = first_shard_targets(0.3, cache)  # populates the shared cache
        high_cached = first_shard_targets(0.9, cache)
        high_fresh = first_shard_targets(0.9, None)
        np.testing.assert_array_equal(high_cached, high_fresh)
        assert not np.array_equal(high_cached, low)


class TestTrainingEquivalence:
    @pytest.mark.parametrize("name", ["aliexpress", "synthetic"])
    @pytest.mark.parametrize("grad_space", ["parameters", "features"])
    def test_single_input_stream_trains_identically_to_eager(self, name, grad_space):
        benchmark = make_stream(name)
        streamed = fit_params(benchmark, benchmark.train, grad_space=grad_space)
        eager = fit_params(benchmark, oracle_view(benchmark.train), grad_space=grad_space)
        np.testing.assert_array_equal(streamed, eager)

    def test_movielens_multi_input_stream_trains_identically_to_eager(self):
        benchmark = make_stream("movielens")
        streamed = fit_params(benchmark, benchmark.train)
        eager = fit_params(benchmark, oracle_view(benchmark.train))
        np.testing.assert_array_equal(streamed, eager)

    @pytest.mark.parametrize("name", ["aliexpress", "synthetic"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_streaming_matches_sequential(self, name, workers):
        benchmark = make_stream(name)
        sequential = fit_params(benchmark, benchmark.train)
        parallel = fit_params(benchmark, benchmark.train, parallel=workers)
        # Workers sum partial gradients in a different association order,
        # so equality is up to float round-off, not bitwise.
        np.testing.assert_allclose(parallel, sequential, rtol=0, atol=1e-9)


class TestTrainerShutdown:
    def test_step_exception_propagates_and_leaks_no_prefetch_thread(self, monkeypatch):
        benchmark = make_stream("synthetic")
        model = benchmark.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model, benchmark.tasks, create_balancer("equal", seed=0), seed=0
        )
        original = trainer.train_step_single
        calls = {"count": 0}

        def failing_step(x, targets):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("step exploded")
            return original(x, targets)

        monkeypatch.setattr(trainer, "train_step_single", failing_step)
        with pytest.raises(RuntimeError, match="step exploded"):
            trainer.fit(benchmark.train, epochs=1, batch_size=64)
        assert no_prefetch_threads()


class TestBoundedMemory:
    def test_streaming_peak_is_flat_when_rows_grow_10x(self):
        def peak_bytes(rows: int) -> int:
            tracemalloc.start()
            try:
                tracemalloc.reset_peak()
                benchmark = make_synthetic_stream(
                    num_samples=rows, chunk_size=128, val_records=8, test_records=8
                )
                for x, _ in StreamingLoader(benchmark.train, 64, seed=0):
                    x.sum()
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak

        base = peak_bytes(1024)
        grown = peak_bytes(10240)
        assert grown < 2 * base, (
            f"streaming peak grew from {base} to {grown} bytes across a "
            "10x row-count step — the working set is not bounded"
        )
