"""Tests for the generic synthetic MTL benchmark (the conflict dial)."""

import numpy as np
import pytest

from repro.data import make_synthetic_mtl, uniform_conflict_gram


class TestUniformConflictGram:
    def test_structure(self):
        gram = uniform_conflict_gram(3, 0.4)
        np.testing.assert_allclose(np.diag(gram), np.ones(3))
        assert gram[0, 1] == gram[1, 2] == 0.4

    def test_psd_feasibility_boundary(self):
        # cosine = −1/(K−1) is the PSD boundary; slightly below must raise.
        uniform_conflict_gram(3, -0.5)
        with pytest.raises(ValueError):
            uniform_conflict_gram(3, -0.6)

    def test_single_task(self):
        np.testing.assert_allclose(uniform_conflict_gram(1, 0.9), np.ones((1, 1)))


class TestSyntheticBenchmark:
    def test_regression_structure(self):
        bench = make_synthetic_mtl(num_tasks=3, num_samples=200, seed=0)
        assert bench.task_names == ["task0", "task1", "task2"]
        assert len(bench.train) + len(bench.val) + len(bench.test) == 200
        _, targets = bench.train.all()
        assert set(targets) == {"task0", "task1", "task2"}

    def test_ground_truth_cosines_exact(self):
        bench = make_synthetic_mtl(
            num_tasks=2, num_samples=100, pairwise_cosine=-0.7, seed=0
        )
        directions = bench.metadata["directions"]
        cosine = directions[0] @ directions[1] / (
            np.linalg.norm(directions[0]) * np.linalg.norm(directions[1])
        )
        assert cosine == pytest.approx(-0.7)

    def test_explicit_gram(self):
        gram = np.array([[1.0, 0.2, -0.3], [0.2, 1.0, 0.1], [-0.3, 0.1, 1.0]])
        bench = make_synthetic_mtl(num_tasks=3, num_samples=100, task_gram=gram, seed=0)
        directions = bench.metadata["directions"]
        np.testing.assert_allclose(directions @ directions.T, gram, atol=1e-10)

    def test_classification_labels_binary(self):
        bench = make_synthetic_mtl(
            num_tasks=2, num_samples=150, task_type="classification", seed=0
        )
        _, targets = bench.train.all()
        for labels in targets.values():
            assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_classification_learnable(self):
        from repro import MTLTrainer, create_balancer

        bench = make_synthetic_mtl(
            num_tasks=2,
            num_samples=600,
            pairwise_cosine=0.3,
            task_type="classification",
            seed=0,
        )
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(
            model, bench.tasks, create_balancer("equal"), lr=5e-3, seed=0
        )
        trainer.fit(bench.train, epochs=10, batch_size=32)
        metrics = trainer.evaluate(bench.test)
        assert all(m["auc"] > 0.7 for m in metrics.values())

    def test_regression_learnable(self):
        from repro import MTLTrainer, create_balancer

        bench = make_synthetic_mtl(num_tasks=2, num_samples=500, noise=0.1, seed=0)
        model = bench.build_model("hps", np.random.default_rng(0))
        trainer = MTLTrainer(model, bench.tasks, create_balancer("equal"), lr=5e-3, seed=0)
        history = trainer.fit(bench.train, epochs=10, batch_size=32)
        curve = history.average_loss_curve()
        assert curve[-1] < curve[0] / 3

    def test_conflict_dial_affects_joint_training(self):
        """Higher ground-truth conflict ⇒ worse joint multi-task error."""
        from repro import MTLTrainer, create_balancer

        errors = {}
        for cosine in (0.8, -0.8):
            bench = make_synthetic_mtl(
                num_tasks=2,
                num_samples=400,
                pairwise_cosine=cosine,
                noise=0.1,
                hidden=(8, 2),  # narrow bottleneck so conflict binds
                seed=0,
            )
            model = bench.build_model("hps", np.random.default_rng(0))
            trainer = MTLTrainer(model, bench.tasks, create_balancer("equal"), lr=5e-3, seed=0)
            trainer.fit(bench.train, epochs=12, batch_size=32)
            metrics = trainer.evaluate(bench.test)
            errors[cosine] = np.mean([m["rmse"] for m in metrics.values()])
        # Correlated tasks are easier to serve jointly than anti-correlated
        # ones through the same narrow trunk... unless the head flips signs;
        # what is guaranteed is that the dial changes the outcome.
        assert errors[0.8] != errors[-0.8]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_mtl(task_type="ranking")
        with pytest.raises(ValueError):
            make_synthetic_mtl(num_tasks=2, task_gram=np.eye(3))
        with pytest.raises(ValueError):
            make_synthetic_mtl(num_tasks=2).build_model("mmoe")
