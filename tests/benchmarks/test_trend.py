"""Unit tests for the bench-trend harness (benchmarks/trend.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def trend():
    """Load benchmarks/trend.py as a module (it is a script, not a package)."""
    sys.path.insert(0, str(BENCHMARKS_DIR))  # so `from benchlib import ...` resolves
    try:
        spec = importlib.util.spec_from_file_location("trend", BENCHMARKS_DIR / "trend.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))


def _write_reports(root: Path, grad_speedup=1.8, adam_speedup=6.0):
    (root / "BENCH_grad_collection.json").write_text(
        json.dumps(
            {
                "benchmark": "grad_collection",
                "schema": 2,
                "git_sha": "aaaaaaa",
                "results": [
                    {"num_tasks": 2, "speedup": 1.2},
                    {"num_tasks": 8, "speedup": grad_speedup},
                ],
            }
        )
    )
    (root / "BENCH_balancers.json").write_text(
        json.dumps(
            {
                "benchmark": "balancers",
                "schema": 2,
                "results": [
                    {"balancer": "mocograd", "num_tasks": 8, "speedup": 2.0,
                     "vectorized_kernel": True},
                    {"balancer": "mocograd", "num_tasks": 2, "speedup": 0.9,
                     "vectorized_kernel": False},
                ],
            }
        )
    )
    (root / "BENCH_optim.json").write_text(
        json.dumps(
            {
                "benchmark": "optim",
                "schema": 2,
                "results": [{"optimizer": "adam", "speedup": adam_speedup}],
                "train_step": {"speedup": 1.2},
            }
        )
    )


class TestExtraction:
    def test_labels_and_skipped_loop_dispatch_rows(self, trend, tmp_path):
        _write_reports(tmp_path)
        metrics = trend.collect_current(tmp_path)
        assert metrics == {
            "grad_collection/K2": 1.2,
            "grad_collection/K8": 1.8,
            "balancers/mocograd/K8": 2.0,  # vectorized_kernel false row skipped
            "optim/adam": 6.0,
            "optim/train_step": 1.2,
        }

    def test_serve_report_tracks_only_fast_paths(self, trend, tmp_path):
        (tmp_path / "BENCH_serve.json").write_text(
            json.dumps(
                {
                    "benchmark": "serve",
                    "schema": 2,
                    "results": [
                        {"mode": "sequential", "speedup": 1.0},
                        {"mode": "batched", "speedup": 3.5},
                        {"mode": "graph", "speedup": 1.0},
                        {"mode": "no_grad", "speedup": 1.6},
                    ],
                }
            )
        )
        metrics = trend.collect_current(tmp_path)
        assert metrics == {"serve/batched": 3.5, "serve/no_grad": 1.6}

    def test_trend_file_and_garbage_ignored(self, trend, tmp_path):
        _write_reports(tmp_path)
        (tmp_path / "BENCH_trend.json").write_text('{"schema": 1, "history": []}')
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        metrics = trend.collect_current(tmp_path)
        assert "optim/adam" in metrics and len(metrics) == 5


class TestGate:
    def test_first_run_records_baseline(self, trend, tmp_path, capsys):
        _write_reports(tmp_path)
        assert trend.main(["--root", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_trend.json").read_text())
        assert data["schema"] == trend.TREND_SCHEMA
        assert len(data["history"]) == 1
        assert data["history"][0]["metrics"]["optim/adam"] == 6.0
        assert "recording first entry" in capsys.readouterr().out

    def test_passes_when_numbers_hold(self, trend, tmp_path):
        _write_reports(tmp_path)
        history = [{"sha": "bbbbbbb", "ts": 0.0,
                    "metrics": trend.collect_current(tmp_path)}]
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": history})
        )
        assert trend.main(["--root", str(tmp_path), "--check"]) == 0

    def test_fails_on_injected_regression(self, trend, tmp_path, capsys):
        _write_reports(tmp_path)
        baseline = trend.collect_current(tmp_path)
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": [
                {"sha": "bbbbbbb", "ts": 0.0, "metrics": baseline}
            ]})
        )
        # Inject a synthetic regression: adam drops 6.0x -> 2.0x (-67%).
        _write_reports(tmp_path, adam_speedup=2.0)
        assert trend.main(["--root", str(tmp_path), "--check"]) == 1
        err = capsys.readouterr().err
        assert "optim/adam" in err and "FAIL" in err
        # --check never rewrites history, even on failure.
        data = json.loads((tmp_path / "BENCH_trend.json").read_text())
        assert data["history"][0]["metrics"]["optim/adam"] == 6.0

    def test_small_drift_within_threshold_passes(self, trend, tmp_path):
        _write_reports(tmp_path, adam_speedup=6.0)
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": [
                {"sha": "bbbbbbb", "ts": 0.0,
                 "metrics": trend.collect_current(tmp_path)}
            ]})
        )
        _write_reports(tmp_path, adam_speedup=5.0)  # -17% < default 30% gate
        assert trend.main(["--root", str(tmp_path), "--check"]) == 0

    def test_tighter_threshold_flags_same_drift(self, trend, tmp_path):
        _write_reports(tmp_path, adam_speedup=6.0)
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": [
                {"sha": "bbbbbbb", "ts": 0.0,
                 "metrics": trend.collect_current(tmp_path)}
            ]})
        )
        _write_reports(tmp_path, adam_speedup=5.0)
        assert trend.main(["--root", str(tmp_path), "--check", "--threshold", "0.1"]) == 1

    def test_reruns_at_same_sha_replace_entry(self, trend, tmp_path, monkeypatch):
        _write_reports(tmp_path)
        monkeypatch.setattr(trend, "git_sha", lambda short=True: "cafe123")
        assert trend.main(["--root", str(tmp_path)]) == 0
        assert trend.main(["--root", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_trend.json").read_text())
        assert [e["sha"] for e in data["history"]] == ["cafe123"]

    def test_no_reports_is_an_error(self, trend, tmp_path):
        assert trend.main(["--root", str(tmp_path)]) == 2

    def test_new_and_missing_metrics_do_not_fail(self, trend, tmp_path, capsys):
        _write_reports(tmp_path)
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": [
                {"sha": "bbbbbbb", "ts": 0.0,
                 "metrics": {"optim/adam": 6.0, "optim/retired": 2.0}}
            ]})
        )
        assert trend.main(["--root", str(tmp_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "missing" in out


class TestHistoryHygiene:
    def test_unknown_schema_starts_fresh(self, trend, tmp_path, capsys):
        _write_reports(tmp_path)
        (tmp_path / "BENCH_trend.json").write_text('{"schema": 99, "history": []}')
        assert trend.main(["--root", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_trend.json").read_text())
        assert data["schema"] == trend.TREND_SCHEMA and len(data["history"]) == 1

    def test_history_is_capped(self, trend, tmp_path, monkeypatch):
        _write_reports(tmp_path)
        history = [
            {"sha": f"sha{i}", "ts": float(i), "metrics": {"optim/adam": 6.0}}
            for i in range(trend.MAX_HISTORY + 10)
        ]
        (tmp_path / "BENCH_trend.json").write_text(
            json.dumps({"schema": 1, "history": history})
        )
        monkeypatch.setattr(trend, "git_sha", lambda short=True: "cafe123")
        assert trend.main(["--root", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "BENCH_trend.json").read_text())
        assert len(data["history"]) == trend.MAX_HISTORY
        assert data["history"][-1]["sha"] == "cafe123"
