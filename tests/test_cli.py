"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import ANALYSIS_RUNNERS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table2", "table3", "table4", "fig5"):
            assert identifier in out
        for identifier in ANALYSIS_RUNNERS:
            assert identifier in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["table1", "--preset", "huge"])

    def test_methods_argument_parsing(self, capsys, monkeypatch):
        captured = {}

        def fake_run_table(identifier, preset, methods):
            captured["methods"] = methods
            return "ok"

        monkeypatch.setattr("repro.__main__._run_table", fake_run_table)
        main(["table1", "--methods", "equal,mocograd"])
        assert captured["methods"] == ("equal", "mocograd")
        assert "ok" in capsys.readouterr().out


class TestTelemetryCLI:
    def test_telemetry_flag_streams_events(self, capsys, tmp_path, monkeypatch):
        """--telemetry installs a JSONL sink that real trainers write to."""
        from repro import obs

        def fake_run_table(identifier, preset, methods):
            # Simulate what any experiment does: train under the ambient sinks.
            telemetry = obs.Telemetry(sinks=obs.default_sinks())
            with telemetry.span("step", method="equal"):
                pass
            telemetry.counter("train_steps_total", method="equal").inc()
            telemetry.flush()
            return "ok"

        monkeypatch.setattr("repro.__main__._run_table", fake_run_table)
        path = str(tmp_path / "out.jsonl")
        assert main(["table1", "--telemetry", path]) == 0
        events = obs.load_events(path)
        types = {e["type"] for e in events}
        assert types == {"run", "span", "metric"}
        assert events[0]["experiment"] == "table1"
        # The global sink list is restored afterwards.
        assert obs.default_sinks() == []

    def test_sink_closed_even_when_run_raises(self, tmp_path, monkeypatch):
        from repro import obs

        def boom(identifier, preset, methods):
            raise RuntimeError("experiment failed")

        monkeypatch.setattr("repro.__main__._run_table", boom)
        path = str(tmp_path / "out.jsonl")
        with pytest.raises(RuntimeError):
            main(["table1", "--telemetry", path])
        assert obs.default_sinks() == []
        assert obs.load_events(path)[0]["type"] == "run"

    def test_report_renders_saved_run(self, capsys, tmp_path):
        from repro import obs

        path = str(tmp_path / "out.jsonl")
        sink = obs.JsonlSink(path)
        sink.emit({"type": "run", "experiment": "table1", "preset": "quick", "ts": 0.0})
        telemetry = obs.Telemetry(sinks=[sink])
        with telemetry.span("step", method="mocograd"):
            with telemetry.span("backward"):
                pass
        telemetry.counter("balancer_pairs_total", method="mocograd").inc(4)
        telemetry.counter("balancer_conflicts_total", method="mocograd").inc(1)
        telemetry.flush()
        sink.close()

        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "step/backward" in out
        assert "mocograd" in out

    def test_report_without_path_errors(self):
        with pytest.raises(SystemExit):
            main(["report"])
