"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import ANALYSIS_RUNNERS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table2", "table3", "table4", "fig5"):
            assert identifier in out
        for identifier in ANALYSIS_RUNNERS:
            assert identifier in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["table1", "--preset", "huge"])

    def test_methods_argument_parsing(self, capsys, monkeypatch):
        captured = {}

        def fake_run_table(identifier, preset, methods):
            captured["methods"] = methods
            return "ok"

        monkeypatch.setattr("repro.__main__._run_table", fake_run_table)
        main(["table1", "--methods", "equal,mocograd"])
        assert captured["methods"] == ("equal", "mocograd")
        assert "ok" in capsys.readouterr().out


class TestTelemetryCLI:
    def test_telemetry_flag_streams_events(self, capsys, tmp_path, monkeypatch):
        """--telemetry installs a JSONL sink that real trainers write to."""
        from repro import obs

        def fake_run_table(identifier, preset, methods):
            # Simulate what any experiment does: train under the ambient sinks.
            telemetry = obs.Telemetry(sinks=obs.default_sinks())
            with telemetry.span("step", method="equal"):
                pass
            telemetry.counter("train_steps_total", method="equal").inc()
            telemetry.flush()
            return "ok"

        monkeypatch.setattr("repro.__main__._run_table", fake_run_table)
        path = str(tmp_path / "out.jsonl")
        assert main(["table1", "--telemetry", path]) == 0
        events = obs.load_events(path)
        types = {e["type"] for e in events}
        assert types == {"run", "span", "metric"}
        assert events[0]["experiment"] == "table1"
        # The global sink list is restored afterwards.
        assert obs.default_sinks() == []

    def test_sink_closed_even_when_run_raises(self, tmp_path, monkeypatch):
        from repro import obs

        def boom(identifier, preset, methods):
            raise RuntimeError("experiment failed")

        monkeypatch.setattr("repro.__main__._run_table", boom)
        path = str(tmp_path / "out.jsonl")
        with pytest.raises(RuntimeError):
            main(["table1", "--telemetry", path])
        assert obs.default_sinks() == []
        assert obs.load_events(path)[0]["type"] == "run"

    def test_report_renders_saved_run(self, capsys, tmp_path):
        from repro import obs

        path = str(tmp_path / "out.jsonl")
        sink = obs.JsonlSink(path)
        sink.emit({"type": "run", "experiment": "table1", "preset": "quick", "ts": 0.0})
        telemetry = obs.Telemetry(sinks=[sink])
        with telemetry.span("step", method="mocograd"):
            with telemetry.span("backward"):
                pass
        telemetry.counter("balancer_pairs_total", method="mocograd").inc(4)
        telemetry.counter("balancer_conflicts_total", method="mocograd").inc(1)
        telemetry.flush()
        sink.close()

        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "step/backward" in out
        assert "mocograd" in out

    def test_report_without_path_errors(self):
        with pytest.raises(SystemExit):
            main(["report"])


class TestTrainStreaming:
    def test_streaming_flag_reports_pipeline_counters(self, capsys, tmp_path):
        cache_dir = tmp_path / "shards"
        argv = [
            "train",
            "--streaming",
            "--steps",
            "2",
            "--tasks",
            "2",
            "--chunk-size",
            "256",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "streaming: chunk=256" in out
        assert "prefetch hits=" in out
        assert "misses=2" in out  # 512 rows / 256-row chunks, cold cache
        assert len(list(cache_dir.glob("*.shard"))) == 2
        # A second run over the same cache serves every shard from disk.
        assert main(argv) == 0
        assert "cache hits=2 misses=0" in capsys.readouterr().out

    def test_streaming_defaults_skip_the_cache(self, capsys):
        assert main(["train", "--streaming", "--steps", "2", "--tasks", "2"]) == 0
        out = capsys.readouterr().out
        assert "cache hits=0 misses=0" in out


class TestServe:
    def test_serve_demo_reports_throughput_and_scenarios(self, capsys):
        argv = [
            "serve",
            "--requests", "24",
            "--rows", "2",
            "--clients", "2",
            "--scenarios", "ES,FR",
            "--max-wait-ms", "1.0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "served 24 requests × 2 rows" in out
        assert "rows/s" in out
        assert "batches:" in out
        assert "ES: 12 requests" in out
        assert "FR: 12 requests" in out

    def test_serve_checkpoint_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        save_argv = [
            "serve",
            "--requests", "4",
            "--scenarios", "ES",
            "--save-checkpoint", str(path),
        ]
        assert main(save_argv) == 0
        assert path.exists()
        assert "saved self-describing checkpoint" in capsys.readouterr().out
        load_argv = [
            "serve",
            "--requests", "4",
            "--scenarios", "ES",
            "--checkpoint", str(path),
        ]
        assert main(load_argv) == 0
        assert "served 4 requests" in capsys.readouterr().out

    def test_serve_rejects_empty_scenarios(self):
        with pytest.raises(SystemExit):
            main(["serve", "--scenarios", ","])
