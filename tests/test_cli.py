"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import ANALYSIS_RUNNERS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "table2", "table3", "table4", "fig5"):
            assert identifier in out
        for identifier in ANALYSIS_RUNNERS:
            assert identifier in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["table1", "--preset", "huge"])

    def test_methods_argument_parsing(self, capsys, monkeypatch):
        captured = {}

        def fake_run_table(identifier, preset, methods):
            captured["methods"] = methods
            return "ok"

        monkeypatch.setattr("repro.__main__._run_table", fake_run_table)
        main(["table1", "--methods", "equal,mocograd"])
        assert captured["methods"] == ("equal", "mocograd")
        assert "ok" in capsys.readouterr().out
