"""Step-protocol robustness: crashes, errors, timeouts, clean teardown."""

import multiprocessing as mp
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.core.balancer import create_balancer
from repro.parallel import WorkerCrashed, WorkerSpec, worker_sink_path
from repro.training import MTLTrainer

from tests.parallel import support


def _parallel_trainer(tasks=None, **kwargs):
    model = support.hps_factory()
    return MTLTrainer(
        model,
        tasks if tasks is not None else support.BENCH.tasks,
        create_balancer("mocograd", seed=3),
        seed=11,
        optimizer="sgd",
        parallel=2,
        model_factory=support.hps_factory,
        **kwargs,
    )


def _no_live_workers():
    return not [p for p in mp.active_children() if p.name.startswith("repro-worker")]


def test_killed_worker_process_raises_worker_crashed():
    trainer = _parallel_trainer()
    try:
        executor = trainer._start_executor(support.BENCH.train, 64)
        try:
            victim = executor.processes[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            executor.dispatch(0, np.arange(64, dtype=np.int64))
            with pytest.raises(WorkerCrashed, match="worker 1 failed at step 0"):
                executor.wait(0)
        finally:
            executor.shutdown()
    finally:
        trainer.close()
    assert _no_live_workers()


def test_worker_crashed_carries_worker_and_step():
    error = WorkerCrashed(3, 17, "boom")
    assert error.worker == 3
    assert error.step == 17
    assert error.detail == "boom"
    assert "worker 3 failed at step 17: boom" in str(error)


def test_worker_exception_surfaces_traceback():
    trainer = _parallel_trainer(
        tasks=support.tasks_with_first_loss(support.erroring_loss)
    )
    try:
        with pytest.raises(WorkerCrashed, match="intentional failure"):
            trainer.fit(
                support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=2
            )
    finally:
        trainer.close()
    assert _no_live_workers()


def test_worker_hard_exit_surfaces_as_crash():
    trainer = _parallel_trainer(
        tasks=support.tasks_with_first_loss(support.exiting_loss)
    )
    try:
        with pytest.raises(WorkerCrashed, match="process died"):
            trainer.fit(
                support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=2
            )
    finally:
        trainer.close()
    assert _no_live_workers()


def test_step_timeout_raises_worker_crashed():
    trainer = _parallel_trainer(
        tasks=support.tasks_with_first_loss(support.slow_loss), step_timeout=1.5
    )
    try:
        with pytest.raises(WorkerCrashed, match="no ack within"):
            trainer.fit(
                support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=1
            )
    finally:
        trainer.close()
    assert _no_live_workers()


def test_fit_then_close_leaves_no_children():
    trainer = _parallel_trainer()
    try:
        trainer.fit(support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=2)
    finally:
        trainer.close()
    assert _no_live_workers()


def test_executor_shutdown_is_idempotent():
    trainer = _parallel_trainer()
    try:
        executor = trainer._start_executor(support.BENCH.train, 64)
        executor.shutdown()
        executor.shutdown()
    finally:
        trainer.close()
    assert _no_live_workers()


def test_trainer_close_is_idempotent():
    trainer = _parallel_trainer()
    trainer.close()
    trainer.close()


def test_trainer_context_manager_closes():
    with _parallel_trainer() as trainer:
        trainer.fit(support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=1)
    assert trainer.shared_buffers is None
    assert _no_live_workers()


def test_parallel_requires_model_factory():
    model = support.hps_factory()
    with pytest.raises(ValueError, match="model_factory"):
        MTLTrainer(
            model,
            support.BENCH.tasks,
            create_balancer("mocograd", seed=3),
            parallel=2,
        )


def test_parallel_requires_arena_and_multi_root():
    for bad_kwargs, match in [
        ({"use_arena": False}, "use_arena"),
        ({"backward_mode": "per_task"}, "multi_root"),
        ({"grad_space": "features"}, "grad_space"),
    ]:
        model = support.hps_factory()
        with pytest.raises(ValueError, match=match):
            MTLTrainer(
                model,
                support.BENCH.tasks,
                create_balancer("mocograd", seed=3),
                parallel=2,
                model_factory=support.hps_factory,
                **bad_kwargs,
            )


def test_worker_spec_validates_task_loss_arity():
    with pytest.raises(ValueError, match="task names"):
        WorkerSpec(
            model_factory=support.hps_factory,
            task_names=["a", "b"],
            loss_fns=[support.erroring_loss],
            dataset=support.BENCH.train,
        )


def test_worker_sink_path_naming():
    assert worker_sink_path(Path("/tmp/run.jsonl"), 0) == Path("/tmp/run.worker0.jsonl")
    assert worker_sink_path("out/telemetry.jsonl", 3) == Path(
        "out/telemetry.worker3.jsonl"
    )


def test_worker_telemetry_writes_per_worker_files(tmp_path):
    from repro.obs import load_run_events, summarize_events

    base = tmp_path / "run.jsonl"
    trainer = _parallel_trainer(worker_telemetry=str(base))
    try:
        trainer.fit(support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=3)
    finally:
        trainer.close()
    worker_files = sorted(tmp_path.glob("run.worker*.jsonl"))
    assert [p.name for p in worker_files] == ["run.worker0.jsonl", "run.worker1.jsonl"]
    events = load_run_events([str(p) for p in worker_files])
    summary = summarize_events(events)
    per_worker = summary["counters"]["worker_steps_total"]
    assert sum(per_worker.values()) == 6  # 3 steps × 2 workers, summed across files
    assert len(per_worker) == 2  # one labelled series per worker
