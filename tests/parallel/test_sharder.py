import numpy as np
import pytest

from repro.parallel import shard_bounds, shard_weights


def test_shard_bounds_even_split():
    assert shard_bounds(64, 4) == [0, 16, 32, 48, 64]


def test_shard_bounds_remainder_goes_to_leading_shards():
    # 10 over 4 → sizes 3, 3, 2, 2
    assert shard_bounds(10, 4) == [0, 3, 6, 8, 10]


def test_shard_bounds_more_workers_than_samples():
    bounds = shard_bounds(2, 4)
    assert bounds == [0, 1, 2, 2, 2]
    sizes = np.diff(bounds)
    assert sizes.sum() == 2 and sizes.max() <= 1


def test_shard_bounds_empty_batch():
    assert shard_bounds(0, 3) == [0, 0, 0, 0]


def test_shard_bounds_cover_every_sample():
    for n in range(0, 40):
        for w in range(1, 6):
            bounds = shard_bounds(n, w)
            assert len(bounds) == w + 1
            assert bounds[0] == 0 and bounds[-1] == n
            sizes = np.diff(bounds)
            assert (sizes >= 0).all()
            assert sizes.max() - sizes.min() <= 1


def test_shard_bounds_validation():
    with pytest.raises(ValueError):
        shard_bounds(8, 0)
    with pytest.raises(ValueError):
        shard_bounds(-1, 2)


def test_shard_weights_sum_to_one():
    weights = shard_weights([0, 3, 6, 8, 10])
    np.testing.assert_allclose(weights, [0.3, 0.3, 0.2, 0.2])
    assert float(np.sum(weights)) == pytest.approx(1.0)


def test_shard_weights_power_of_two_split_is_exact():
    weights = shard_weights([0, 16, 32, 48, 64])
    assert all(w == 0.25 for w in weights)


def test_shard_weights_empty_batch_all_zero():
    weights = shard_weights([0, 0, 0, 0])
    assert not np.any(weights)
