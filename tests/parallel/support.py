"""Module-level factories and losses for the parallel test suite.

Everything a worker needs under the ``spawn`` start method must be
picklable by reference, so the factories and loss functions live here at
module level (pytest imports this as ``tests.parallel.support``, which
spawned children can re-import).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.arch import MMoE, LinearHead, MLPEncoder
from repro.data import TaskSpec, make_synthetic_mtl

NUM_TASKS = 4
IN_FEATURES = 20
HIDDEN = 24

#: clearly-conflicting synthetic tasks (negative pairwise cosine) so the
#: conflict-aware balancers exercise their calibration paths
BENCH = make_synthetic_mtl(
    num_tasks=NUM_TASKS,
    num_samples=512,
    in_features=IN_FEATURES,
    pairwise_cosine=-0.2,
    hidden=(HIDDEN,),
    seed=7,
)


def hps_factory():
    return BENCH.build_model("hps", np.random.default_rng(7))


def mmoe_factory():
    rng = np.random.default_rng(7)
    return MMoE(
        expert_factory=lambda: MLPEncoder(IN_FEATURES, [HIDDEN], rng),
        num_experts=3,
        heads={f"task{k}": LinearHead(HIDDEN, 1, rng) for k in range(NUM_TASKS)},
        gate_in_features=IN_FEATURES,
        rng=rng,
    )


FACTORIES = {"hps": hps_factory, "mmoe": mmoe_factory}


def exiting_loss(pred, target):
    """Kills the worker process outright (no exception, no ack)."""
    os._exit(23)


def erroring_loss(pred, target):
    raise ValueError("intentional failure for the crash test")


def slow_loss(pred, target):
    time.sleep(30.0)
    raise RuntimeError("slow_loss should have been timed out")


def tasks_with_first_loss(loss_fn) -> list[TaskSpec]:
    """The benchmark's tasks with task0's loss swapped for ``loss_fn``."""
    return [
        TaskSpec(
            task.name,
            loss_fn if index == 0 else task.loss_fn,
            dict(task.metrics),
            dict(task.higher_is_better),
        )
        for index, task in enumerate(BENCH.tasks)
    ]
