"""Parallel training must match the sequential oracle to ≤ 1e-12.

The determinism contract (see ``repro.parallel.sharder``): the parent
draws batches from the same RNG stream as a sequential ``DataLoader``,
shards them contiguously, and reduces with exact ``n_w / n`` weights —
so N-worker runs reproduce the sequential parameter trajectory up to
floating-point reassociation of the per-shard sums.
"""

import numpy as np
import pytest

from repro.core.balancer import create_balancer
from repro.nn.utils import parameter_vector
from repro.training import MTLTrainer

from tests.parallel import support

TOL = 1e-12


def _train(
    factory,
    balancer: str,
    *,
    workers: int = 0,
    steps: int = 6,
    accumulate: int = 1,
    optimizer: str = "sgd",
    start_method: str | None = None,
) -> np.ndarray:
    model = factory()
    kwargs = {}
    if workers:
        kwargs.update(
            parallel=workers, model_factory=factory, start_method=start_method
        )
    trainer = MTLTrainer(
        model,
        support.BENCH.tasks,
        create_balancer(balancer, seed=3),
        seed=11,
        optimizer=optimizer,
        accumulate_steps=accumulate,
        **kwargs,
    )
    try:
        trainer.fit(
            support.BENCH.train, epochs=1, batch_size=64, max_steps_per_epoch=steps
        )
    finally:
        trainer.close()
    return parameter_vector(model.parameters())


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("balancer", ["mocograd", "pcgrad"])
@pytest.mark.parametrize("arch", ["hps", "mmoe"])
def test_parallel_matches_sequential(arch, balancer, workers):
    factory = support.FACTORIES[arch]
    sequential = _train(factory, balancer)
    parallel = _train(factory, balancer, workers=workers)
    assert float(np.max(np.abs(sequential - parallel))) <= TOL


def test_parallel_matches_sequential_adam():
    sequential = _train(support.hps_factory, "mocograd", optimizer="adam")
    parallel = _train(support.hps_factory, "mocograd", workers=2, optimizer="adam")
    assert float(np.max(np.abs(sequential - parallel))) <= TOL


def test_parallel_accumulate_matches_sequential_accumulate():
    sequential = _train(support.hps_factory, "mocograd", accumulate=2, steps=8)
    parallel = _train(
        support.hps_factory, "mocograd", workers=2, accumulate=2, steps=8
    )
    assert float(np.max(np.abs(sequential - parallel))) <= TOL


def test_parallel_matches_sequential_spawn():
    """Lean spawn-start-method case; CI selects it with ``-k spawn``."""
    sequential = _train(support.hps_factory, "mocograd", steps=3)
    parallel = _train(
        support.hps_factory, "mocograd", workers=2, steps=3, start_method="spawn"
    )
    assert float(np.max(np.abs(sequential - parallel))) <= TOL


def test_parallel_training_actually_moves_parameters():
    before = parameter_vector(support.hps_factory().parameters())
    after = _train(support.hps_factory, "mocograd", workers=2, steps=2)
    assert float(np.max(np.abs(after - before))) > 0.0
