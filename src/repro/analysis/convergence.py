"""Fig. 6 — training-loss convergence curves on NYUv2.

Trains every method on the same NYUv2 instance and returns per-epoch loss
curves for each task plus the across-task average (the paper's panels a–d).
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import create_balancer
from ..data.nyuv2 import make_nyuv2
from ..experiments.runner import METHODS
from ..training.trainer import MTLTrainer

__all__ = ["convergence_curves"]


def convergence_curves(
    methods=METHODS,
    num_scenes: int = 120,
    epochs: int = 6,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
) -> dict:
    """Per-method loss curves: ``{method: {task: [per-epoch loss], "average": [...]}}``."""
    benchmark = make_nyuv2(num_scenes=num_scenes, seed=seed)
    curves: dict[str, dict[str, list[float]]] = {}
    for method in methods:
        model = benchmark.build_model("hps", np.random.default_rng(seed))
        trainer = MTLTrainer(
            model,
            benchmark.tasks,
            create_balancer(method, seed=seed),
            mode=benchmark.mode,
            lr=lr,
            seed=seed,
        )
        history = trainer.fit(benchmark.train, epochs, batch_size)
        curves[method] = {
            task.name: history.task_loss_curve(task.name).tolist()
            for task in benchmark.tasks
        }
        curves[method]["average"] = history.average_loss_curve().tolist()
    return {"curves": curves, "epochs": epochs, "tasks": benchmark.task_names}
