"""Fig. 7 — MoCoGrad under five MTL architectures on CityScapes.

For each architecture (HPS, Cross-stitch, MTAN, MMoE, CGC) trains MoCoGrad
on the CityScapes benchmark and reports ΔM relative to the single-task
baseline, reproducing the paper's finding that MoCoGrad helps under every
architecture and composes with the richer ones.
"""

from __future__ import annotations

from ..arch import ARCHITECTURES
from ..data.cityscapes import make_cityscapes
from ..experiments.runner import RunConfig, run_method
from ..metrics.delta import delta_m_from_results
from ..training.stl import train_stl_all

__all__ = ["architecture_sweep"]


def architecture_sweep(
    architectures=ARCHITECTURES,
    method: str = "mocograd",
    num_scenes: int = 120,
    epochs: int = 4,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
) -> dict:
    """ΔM of ``method`` under each architecture: ``{arch: delta_m}``."""
    benchmark = make_cityscapes(num_scenes=num_scenes, seed=seed)
    stl = train_stl_all(benchmark, epochs, batch_size, lr=lr, seed=seed)
    directions = {t.name: dict(t.higher_is_better) for t in benchmark.tasks}
    deltas: dict[str, float] = {}
    metrics_by_arch: dict[str, dict] = {}
    for architecture in architectures:
        config = RunConfig(
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
            architecture=architecture,
        )
        metrics = run_method(benchmark, method, config)
        metrics_by_arch[architecture] = metrics
        deltas[architecture] = delta_m_from_results(metrics, stl, directions)
    return {"delta_m": deltas, "metrics": metrics_by_arch, "stl": stl}
