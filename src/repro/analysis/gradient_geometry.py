"""Gradient-geometry instrumentation over training runs.

Turns the trainer's ``track_conflicts`` stream and on-demand gradient
probes into the summary statistics the paper's Section III reasons about:
per-epoch conflict trajectories, pairwise conflict matrices, and
before/after comparisons of what a balancer does to the gradient geometry.
"""

from __future__ import annotations

import numpy as np

from ..core.conflict import conflict_fraction, pairwise_gcd

__all__ = [
    "conflict_trajectory",
    "probe_pairwise_conflicts",
    "balancer_geometry_effect",
]


def conflict_trajectory(trainer, window: int = 1) -> dict:
    """Summarize a ``track_conflicts=True`` run.

    Returns per-window means of (GCD, conflicting-pair fraction) plus
    overall statistics.  ``window`` groups consecutive steps (e.g. set it
    to steps-per-epoch for per-epoch curves).
    """
    if not trainer.conflict_stats:
        raise ValueError("trainer has no conflict history (track_conflicts=False?)")
    history = np.asarray(trainer.conflict_stats)  # (steps, 2)
    if window < 1:
        raise ValueError("window must be ≥ 1")
    steps = history.shape[0]
    num_windows = (steps + window - 1) // window
    gcd_curve, fraction_curve = [], []
    for w in range(num_windows):
        chunk = history[w * window : (w + 1) * window]
        gcd_curve.append(float(chunk[:, 0].mean()))
        fraction_curve.append(float(chunk[:, 1].mean()))
    return {
        "gcd_curve": gcd_curve,
        "conflict_fraction_curve": fraction_curve,
        "mean_gcd": float(history[:, 0].mean()),
        "mean_conflict_fraction": float(history[:, 1].mean()),
        "max_gcd": float(history[:, 0].max()),
        "steps": steps,
    }


def probe_pairwise_conflicts(trainer, dataset, batch_size: int = 64, num_batches: int = 5, seed: int = 0) -> dict:
    """Average pairwise GCD matrix over fresh batches (single-input data)."""
    rng = np.random.default_rng(seed)
    matrices = []
    for _ in range(num_batches):
        idx = rng.choice(len(dataset), size=min(batch_size, len(dataset)), replace=False)
        inputs, targets = dataset.batch(idx)
        grads = trainer.task_gradients(inputs, targets)
        matrices.append(pairwise_gcd(grads))
    mean_matrix = np.mean(matrices, axis=0)
    task_names = [task.name for task in trainer.tasks]
    num_tasks = len(task_names)
    pairs = {}
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            pairs[(task_names[i], task_names[j])] = float(mean_matrix[i, j])
    return {
        "matrix": mean_matrix,
        "pairs": pairs,
        "most_conflicting_pair": max(pairs, key=pairs.get) if pairs else None,
    }


def balancer_geometry_effect(balancer, grads: np.ndarray, losses: np.ndarray | None = None) -> dict:
    """What one balancing step does to the gradient geometry.

    Compares the naive sum against the balanced update: norm ratio, cosine
    to the naive direction, and worst-task alignment (min_k ⟨g_k, d⟩ —
    CAGrad's objective), before/after.  Works with any balancer.
    """
    grads = np.asarray(grads, dtype=np.float64)
    if losses is None:
        losses = np.ones(grads.shape[0])
    naive = grads.sum(axis=0)
    balanced = balancer.balance(grads, np.asarray(losses, dtype=np.float64))
    naive_norm = float(np.linalg.norm(naive))
    balanced_norm = float(np.linalg.norm(balanced))
    if naive_norm > 1e-12 and balanced_norm > 1e-12:
        cosine = float(naive @ balanced / (naive_norm * balanced_norm))
    else:
        cosine = 0.0
    return {
        "input_conflict_fraction": conflict_fraction(grads),
        "norm_ratio": balanced_norm / max(naive_norm, 1e-12),
        "cosine_to_naive": cosine,
        "worst_task_alignment_naive": float((grads @ naive).min()),
        "worst_task_alignment_balanced": float((grads @ balanced).min()),
    }
