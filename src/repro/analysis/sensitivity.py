"""Fig. 9 — sensitivity of MoCoGrad to the calibration strength λ.

Sweeps λ over the paper's range on the Office-Home benchmark and reports
the across-domain average accuracy per value; the paper finds an interior
optimum around λ = 0.12 with degradation at both extremes.
"""

from __future__ import annotations

import numpy as np

from ..data.officehome import make_officehome
from ..experiments.runner import RunConfig, run_method

__all__ = ["lambda_sensitivity", "DEFAULT_LAMBDA_GRID"]

DEFAULT_LAMBDA_GRID = (0.03, 0.06, 0.09, 0.12, 0.15, 0.18)


def lambda_sensitivity(
    lambda_grid=DEFAULT_LAMBDA_GRID,
    num_classes: int = 8,
    samples_per_domain: int = 80,
    domain_conflict: float = 0.4,
    style_strength: float = 0.8,
    epochs: int = 25,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
    num_seeds: int = 2,
) -> dict:
    """Average accuracy per λ: ``{"lambda": [...], "avg_accuracy": [...]}``.

    Runs in the same near-convergence conflicted regime as the Fig. 5
    reproduction so that the calibration strength is a live parameter.
    """
    benchmark = make_officehome(
        num_classes=num_classes,
        samples_per_domain=samples_per_domain,
        domain_conflict=domain_conflict,
        style_strength=style_strength,
        seed=seed,
    )
    averages = []
    for lam in lambda_grid:
        config = RunConfig(
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
            num_seeds=num_seeds,
            balancer_kwargs={"calibration": lam},
        )
        metrics = run_method(benchmark, "mocograd", config)
        averages.append(float(np.mean([m["accuracy"] for m in metrics.values()])))
    return {"lambda": list(lambda_grid), "avg_accuracy": averages}
