"""Fig. 8 — backward time per optimization step, by method.

Consumes the trainer's :mod:`repro.obs` span data instead of re-timing:
the ``step`` span gives whole-step wall-clock and the ``step/backward``
span gives the *backward-only* time the paper's Fig. 8 actually plots
(the seed implementation conflated the two).  The expected ordering:
Nash-MTL slowest (inner solve), MGDA/CAGrad in between, the
projection-style methods (PCGrad, GradVac, MoCoGrad) comparable to plain
joint training.

Also exposes the paper's feature-level speedup (``grad_space="features"``)
for comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import create_balancer
from ..data.aliexpress import make_aliexpress
from ..experiments.runner import METHODS
from ..obs import Telemetry
from ..training.trainer import MTLTrainer

__all__ = ["backward_time_study"]


def backward_time_study(
    methods=METHODS,
    num_records: int = 1500,
    steps: int = 30,
    batch_size: int = 128,
    lr: float = 1e-3,
    seed: int = 0,
    grad_space: str = "parameters",
) -> dict:
    """Median step/backward seconds per method from telemetry spans.

    Returns ``{"seconds_per_step": {method: s}, "backward_seconds_per_step":
    {method: s}, "steps": n, "grad_space": ...}``.
    """
    benchmark = make_aliexpress("ES", num_records=num_records, seed=seed)
    step_timings: dict[str, float] = {}
    backward_timings: dict[str, float] = {}
    for method in methods:
        model = benchmark.build_model("hps", np.random.default_rng(seed))
        # A private telemetry per method keeps span populations separate
        # (no sinks: only the in-memory durations are needed here).
        trainer = MTLTrainer(
            model,
            benchmark.tasks,
            create_balancer(method, seed=seed),
            mode=benchmark.mode,
            grad_space=grad_space,
            lr=lr,
            seed=seed,
            telemetry=Telemetry(),
        )
        # Warm-up step excluded from the statistics (first-call overheads).
        trainer.fit(benchmark.train, 1, batch_size, max_steps_per_epoch=1)
        trainer.telemetry.reset_timings()
        remaining = steps
        while remaining > 0:
            chunk = min(remaining, max(1, len(benchmark.train) // batch_size))
            trainer.fit(benchmark.train, 1, batch_size, max_steps_per_epoch=chunk)
            remaining -= chunk
        step_timings[method] = trainer.median_step_seconds
        backward_timings[method] = trainer.median_backward_seconds
    return {
        "seconds_per_step": step_timings,
        "backward_seconds_per_step": backward_timings,
        "steps": steps,
        "grad_space": grad_space,
    }
