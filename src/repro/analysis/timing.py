"""Fig. 8 — backward time per optimization step, by method.

Measures the mean wall-clock seconds of one full balanced optimization step
(K backward passes + balancing + update) on the AliExpress stack for every
method, reproducing the paper's ordering: Nash-MTL slowest (inner solve),
MGDA/CAGrad in between, the projection-style methods (PCGrad, GradVac,
MoCoGrad) comparable to plain joint training.

Also exposes the paper's feature-level speedup (``grad_source="features"``)
for comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import create_balancer
from ..data.aliexpress import make_aliexpress
from ..experiments.runner import METHODS
from ..training.trainer import MTLTrainer

__all__ = ["backward_time_study"]


def backward_time_study(
    methods=METHODS,
    num_records: int = 1500,
    steps: int = 30,
    batch_size: int = 128,
    lr: float = 1e-3,
    seed: int = 0,
    grad_source: str = "params",
) -> dict:
    """Mean seconds per optimization step per method: ``{method: seconds}``."""
    benchmark = make_aliexpress("ES", num_records=num_records, seed=seed)
    timings: dict[str, float] = {}
    for method in methods:
        model = benchmark.build_model("hps", np.random.default_rng(seed))
        trainer = MTLTrainer(
            model,
            benchmark.tasks,
            create_balancer(method, seed=seed),
            mode=benchmark.mode,
            grad_source=grad_source,
            lr=lr,
            seed=seed,
        )
        # Warm-up step excluded from the average (first-call overheads).
        trainer.fit(benchmark.train, 1, batch_size, max_steps_per_epoch=1)
        trainer.backward_seconds_total = 0.0
        trainer.step_count = 0
        trainer.step_seconds = []
        remaining = steps
        while remaining > 0:
            chunk = min(remaining, max(1, len(benchmark.train) // batch_size))
            trainer.fit(benchmark.train, 1, batch_size, max_steps_per_epoch=chunk)
            remaining -= chunk
        timings[method] = trainer.median_step_seconds
    return {"seconds_per_step": timings, "steps": steps, "grad_source": grad_source}
