"""``repro.analysis`` — drivers for the paper's analysis figures (1, 2, 6–9)."""

from .architectures import architecture_sweep
from .conflict_experiment import (
    SharedOutputRegressor,
    task_interference_curve,
    tci_gcd_correlation,
)
from .convergence import convergence_curves
from .gradient_geometry import (
    balancer_geometry_effect,
    conflict_trajectory,
    probe_pairwise_conflicts,
)
from .sensitivity import DEFAULT_LAMBDA_GRID, lambda_sensitivity
from .timing import backward_time_study

__all__ = [
    "task_interference_curve",
    "tci_gcd_correlation",
    "SharedOutputRegressor",
    "convergence_curves",
    "architecture_sweep",
    "backward_time_study",
    "lambda_sensitivity",
    "DEFAULT_LAMBDA_GRID",
    "conflict_trajectory",
    "probe_pairwise_conflicts",
    "balancer_geometry_effect",
]
