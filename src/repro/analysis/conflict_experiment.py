"""Fig. 1 & Fig. 2 — the paper's empirical task-conflict investigation.

- **Fig. 1** trains task A (a MovieLens genre) alone, with one partner
  (A+B) and with two partners (A+B+C) under HPS and MMoE, showing how task
  A's RMSE degrades as more tasks join.
- **Fig. 2** correlates Task Conflict Intensity (Definition 2) with the
  Gradient Conflict Degree (Definition 3) measured during joint training:
  sweeping the inter-task relatedness knob of the synthetic generator
  produces (GCD, TCI) pairs whose positive correlation reproduces the
  paper's finding that gradient conflict drives performance degradation.
"""

from __future__ import annotations

import numpy as np

from ..arch.base import MTLModel
from ..arch.encoders import MLPEncoder
from ..arch.heads import LinearHead
from ..balancers.equal import EqualWeighting
from ..core.conflict import pairwise_gcd, task_conflict_intensity
from ..data.base import ArrayDataset, TaskSpec
from ..data.latent import correlated_task_matrix
from ..data.movielens import GENRES, make_movielens
from ..metrics.regression import rmse
from ..nn.functional import mse_loss
from ..training.stl import train_stl
from ..training.trainer import MTLTrainer

__all__ = ["task_interference_curve", "tci_gcd_correlation", "SharedOutputRegressor"]


def _train_joint(
    benchmark, epochs: int, batch_size: int, lr: float, seed: int, architecture: str
):
    model = benchmark.build_model(architecture, np.random.default_rng(seed))
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        EqualWeighting(),
        mode=benchmark.mode,
        lr=lr,
        seed=seed,
    )
    trainer.fit(benchmark.train, epochs, batch_size)
    return trainer


def task_interference_curve(
    target_genre: str = GENRES[0],
    partner_genres: tuple[str, ...] = GENRES[1:3],
    architecture: str = "hps",
    records_per_genre: int = 300,
    relatedness: float = 0.1,
    epochs: int = 6,
    batch_size: int = 48,
    lr: float = 3e-3,
    seed: int = 0,
) -> dict:
    """Fig. 1: RMSE of ``target_genre`` as partner tasks are added.

    Returns ``{"task_sets": [...], "rmse": [...]}`` where entry i jointly
    trains the target with the first i partners (entry 0 is STL).
    """
    results = {"task_sets": [], "rmse": []}
    for count in range(len(partner_genres) + 1):
        genres = (target_genre,) + tuple(partner_genres[:count])
        benchmark = make_movielens(
            genres=genres,
            records_per_genre=records_per_genre,
            relatedness=relatedness,
            seed=seed,
        )
        if count == 0:
            metrics = train_stl(benchmark, target_genre, epochs, batch_size, lr=lr, seed=seed)
        else:
            trainer = _train_joint(benchmark, epochs, batch_size, lr, seed, architecture)
            metrics = trainer.evaluate(benchmark.test)[target_genre]
        results["task_sets"].append("+".join(genres))
        results["rmse"].append(metrics["rmse"])
    return results


class SharedOutputRegressor(MTLModel):
    """A shared trunk whose single output serves every task.

    The instrumented model behind the TCI–GCD study: with no task-specific
    parameters at all, conflicting targets compete for exactly the same
    function, so the gradient geometry cleanly reflects the ground-truth
    task angle.  (In a deep model with task heads the conflict signal is
    diluted over near-orthogonal high-dimensional gradients — see
    EXPERIMENTS.md for the measurement discussion.)
    """

    def __init__(self, task_names, in_features: int, rng: np.random.Generator) -> None:
        super().__init__(task_names)
        self.encoder = MLPEncoder(in_features, [16, 8], rng)
        self.head = LinearHead(8, 1, rng)

    def forward(self, x, task: str):
        self._check_task(task)
        return self.head(self.encoder(x))

    def forward_all(self, x):
        out = self.head(self.encoder(x))
        return {task: out for task in self.task_names}

    def shared_parameters(self):
        return self.encoder.parameters() + self.head.parameters()

    def task_specific_parameters(self, task: str):
        self._check_task(task)
        return []


def tci_gcd_correlation(
    cosine_grid: tuple[float, ...] = (0.9, 0.6, 0.3, 0.0, -0.3, -0.6, -0.9),
    num_samples: int = 300,
    in_features: int = 10,
    noise: float = 0.2,
    epochs: int = 15,
    batch_size: int = 32,
    lr: float = 5e-3,
    seeds: int = 3,
    gcd_probes: int = 4,
) -> dict:
    """Fig. 2(b–d): (mean GCD, TCI) pairs across ground-truth conflict levels.

    Substitution note (DESIGN.md): the paper measures this on MovieLens
    task pairs; here the conflict level is *instrumented* — two regression
    tasks whose true directions have an exact cosine (the grid), served by
    a shared-output trunk so they compete for the same function.  GCD is
    probed on per-task gradients in the second half of training, TCI is the
    target task's test-RMSE gap to its single-task twin, both seed-averaged.
    """
    gcds, tcis = [], []
    tasks = [
        TaskSpec(
            name,
            mse_loss,
            {"rmse": lambda outputs, targets: rmse(outputs, targets)},
            {"rmse": False},
        )
        for name in ("t0", "t1")
    ]
    for cosine in cosine_grid:
        level_gcd, level_tci = [], []
        for seed in range(seeds):
            rng = np.random.default_rng(seed)
            corr = np.array([[1.0, cosine], [cosine, 1.0]])
            directions = correlated_task_matrix(2, in_features, corr, rng)
            inputs = rng.normal(size=(num_samples, in_features))
            eval_inputs = rng.normal(size=(num_samples, in_features))
            train_set = ArrayDataset(
                inputs,
                {
                    "t0": inputs @ directions[0] + noise * rng.normal(size=num_samples),
                    "t1": inputs @ directions[1] + noise * rng.normal(size=num_samples),
                },
            )
            test_set = ArrayDataset(
                eval_inputs,
                {"t0": eval_inputs @ directions[0], "t1": eval_inputs @ directions[1]},
            )
            stl_model = SharedOutputRegressor(["t0"], in_features, np.random.default_rng(seed))
            stl_trainer = MTLTrainer(stl_model, tasks[:1], EqualWeighting(), lr=lr, seed=seed)
            stl_trainer.fit(train_set, epochs, batch_size)
            stl_rmse = stl_trainer.evaluate(test_set)["t0"]["rmse"]

            model = SharedOutputRegressor(["t0", "t1"], in_features, np.random.default_rng(seed))
            trainer = MTLTrainer(model, tasks, EqualWeighting(), lr=lr, seed=seed)
            probes = []
            probe_rng = np.random.default_rng(10_000 + seed)
            for epoch in range(epochs):
                trainer.fit(train_set, 1, batch_size)
                if epoch >= epochs // 2:
                    for _ in range(gcd_probes):
                        idx = probe_rng.choice(num_samples, size=min(64, num_samples), replace=False)
                        x, y = train_set.batch(idx)
                        probes.append(pairwise_gcd(trainer.task_gradients(x, y))[0, 1])
            joint_rmse = trainer.evaluate(test_set)["t0"]["rmse"]
            level_gcd.append(float(np.mean(probes)))
            level_tci.append(task_conflict_intensity(joint_rmse, stl_rmse))
        gcds.append(float(np.mean(level_gcd)))
        tcis.append(float(np.mean(level_tci)))
    gcd_array, tci_array = np.asarray(gcds), np.asarray(tcis)
    correlation = float(np.corrcoef(gcd_array, tci_array)[0, 1]) if len(gcds) > 1 else np.nan
    return {
        "cosine": list(cosine_grid),
        "gcd": gcds,
        "tci": tcis,
        "pearson_r": correlation,
    }


def _probe_gcd(trainer: MTLTrainer, benchmark, batch_size: int, num_batches: int = 5) -> float:
    """Mean off-diagonal GCD of per-task gradients over several fresh batches."""
    values = []
    for batch_index in range(num_batches):
        rng = np.random.default_rng(1000 + batch_index)
        if benchmark.mode == "multi_input":
            grads = _multi_input_gradients(trainer, benchmark, batch_size, rng)
        else:
            idx = rng.choice(
                len(benchmark.train), size=min(batch_size, len(benchmark.train)), replace=False
            )
            inputs, targets = benchmark.train.batch(idx)
            grads = trainer.task_gradients(inputs, targets)
        matrix = pairwise_gcd(grads)
        values.append(float(matrix[np.triu_indices(matrix.shape[0], k=1)].mean()))
    return float(np.mean(values))


def _multi_input_gradients(trainer, benchmark, batch_size, rng) -> np.ndarray:
    from ..nn.utils import grad_vector

    shared = trainer.model.shared_parameters()
    grads = np.empty((len(trainer.tasks), sum(p.size for p in shared)))
    trainer.model.train()
    trainer.model.zero_grad()
    for k, task in enumerate(trainer.tasks):
        dataset = benchmark.train[task.name]
        idx = rng.choice(len(dataset), size=min(batch_size, len(dataset)), replace=False)
        inputs, targets = dataset.batch(idx)
        loss = task.loss_fn(trainer.model.forward(inputs, task.name), targets)
        for param in shared:
            param.zero_grad()
        loss.backward()
        grads[k] = grad_vector(shared)
    trainer.model.zero_grad()
    return grads
