"""Scenario-routed serving facade over per-model micro-batchers.

The AliExpress benchmark serves four country scenarios (ES/FR/NL/US);
depending on the deployment each scenario may have its own fine-tuned
model or several scenarios may share one.  :class:`Server` hides that
topology: callers address requests by scenario key, and the facade routes
to one :class:`~repro.serve.batcher.MicroBatcher` **per distinct model**
— scenarios that share a model share its batcher, so their traffic
coalesces into common batches while latency histograms stay labelled per
scenario.

Configuration follows the repo's config-dict idiom: a module-level
``serve_default_config`` holds every knob with its default, callers pass
a partial override dict, and unknown keys fail loudly.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Mapping

import numpy as np

from ..arch.base import MTLModel
from ..nn.tensor import inference_mode
from ..obs.metrics import SECONDS_BUCKETS, Histogram
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .batcher import BATCH_ROWS_BUCKETS, MicroBatcher

__all__ = ["Server", "serve_default_config"]

#: Every serving knob with its default; ``Server(config={...})`` overrides
#: a subset, and unknown keys raise ``ValueError``.
serve_default_config: dict = {
    # Rows per coalesced batch before it ships.
    "max_batch_size": 64,
    # Latency budget (ms) from a batch's first request to its forward.
    "max_wait_ms": 2.0,
    # Scenario used when a request names none; None → only legal when the
    # server has exactly one scenario.
    "default_scenario": None,
}


def _merge_config(overrides: Mapping | None) -> dict:
    config = dict(serve_default_config)
    if overrides:
        unknown = set(overrides) - set(config)
        if unknown:
            raise ValueError(
                f"unknown serve config keys {sorted(unknown)}; "
                f"known: {sorted(config)}"
            )
        config.update(overrides)
    return config


class Server:
    """Route scenario-keyed requests to micro-batched models.

    Parameters
    ----------
    models:
        ``{scenario: model}`` — the routing table.  The same model object
        may back several scenarios; it gets exactly one batcher (and one
        worker thread), so cross-scenario traffic coalesces.  A bare
        :class:`~repro.arch.base.MTLModel` is accepted as shorthand for
        ``{"default": model}``.
    config:
        Partial override of :data:`serve_default_config`.
    telemetry:
        Receives per-scenario latency histograms, batch-size histograms,
        queue-depth gauges, and the enqueue/coalesce/forward/scatter
        spans; defaults to the shared no-op instance.
    """

    def __init__(
        self,
        models: Mapping[str, MTLModel] | MTLModel,
        config: Mapping | None = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if isinstance(models, MTLModel):
            models = {"default": models}
        if not models:
            raise ValueError("Server needs at least one scenario → model entry")
        self.config = _merge_config(config)
        self.telemetry = telemetry
        self._models: dict[str, MTLModel] = dict(models)
        for model in self._models.values():
            model.eval()
        # One batcher per distinct model object: shared models coalesce.
        batcher_by_model: dict[int, MicroBatcher] = {}
        self._batchers: dict[str, MicroBatcher] = {}
        for scenario, model in self._models.items():
            batcher = batcher_by_model.get(id(model))
            if batcher is None:
                batcher = MicroBatcher(
                    model,
                    max_batch_size=self.config["max_batch_size"],
                    max_wait_ms=self.config["max_wait_ms"],
                    telemetry=telemetry,
                )
                batcher_by_model[id(model)] = batcher
            self._batchers[scenario] = batcher
        self._closed = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def scenarios(self) -> list[str]:
        """Served scenario keys, sorted."""
        return sorted(self._batchers)

    def _resolve(self, scenario: str | None) -> str:
        if scenario is None:
            scenario = self.config["default_scenario"]
        if scenario is None:
            if len(self._batchers) == 1:
                return next(iter(self._batchers))
            raise ValueError(
                "request names no scenario and no default_scenario is "
                f"configured; served scenarios: {self.scenarios()}"
            )
        if scenario not in self._batchers:
            raise KeyError(
                f"unknown scenario {scenario!r}; served: {self.scenarios()}"
            )
        return scenario

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def submit(self, rows: np.ndarray, scenario: str | None = None) -> Future:
        """Enqueue rows for a scenario; future resolves to ``{task: ndarray}``."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed Server")
        scenario = self._resolve(scenario)
        with self.telemetry.span("serve_enqueue", scenario=scenario):
            return self._batchers[scenario].submit(rows, scenario=scenario)

    def predict(self, rows: np.ndarray, scenario: str | None = None) -> dict[str, np.ndarray]:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(rows, scenario).result()

    def predict_sequential(
        self, rows: np.ndarray, scenario: str | None = None
    ) -> dict[str, np.ndarray]:
        """Reference oracle: forward each row individually, no batching.

        Bypasses the queue entirely — one single-row ``forward_all`` per
        input row, outputs concatenated in order.  The batched path is
        equivalence-tested against this (``tests/serve/``); it is also the
        "unbatched" baseline in ``benchmarks/bench_serve.py``.
        """
        scenario = self._resolve(scenario)
        model = self._models[scenario]
        rows = np.asarray(rows)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        per_row: list[dict[str, np.ndarray]] = []
        with inference_mode():
            for i in range(rows.shape[0]):
                outputs = model.forward_all(rows[i : i + 1])
                per_row.append({task: out.data for task, out in outputs.items()})
        tasks = model.task_names
        return {
            task: np.concatenate([row[task] for row in per_row], axis=0)
            for task in tasks
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Latency/batching digest from the telemetry registry.

        Per-scenario request percentiles (bucket resolution, in seconds),
        an ``overall`` series merged across scenarios via
        :meth:`~repro.obs.metrics.Histogram.merge`, and batch-shape
        aggregates.  Empty when telemetry is disabled.
        """
        if not self.telemetry.enabled:
            return {}
        registry = self.telemetry.registry
        overall = Histogram("serve_request_seconds", (), SECONDS_BUCKETS)
        scenarios: dict[str, dict] = {}
        for scenario in self.scenarios():
            histogram = registry.histogram(
                "serve_request_seconds", scenario=scenario
            )
            overall.merge(histogram)
            scenarios[scenario] = {
                "requests": histogram.count,
                "mean_seconds": histogram.mean,
                "p50_seconds": histogram.percentile(50),
                "p99_seconds": histogram.percentile(99),
            }
        rows = registry.histogram("serve_batch_rows", buckets=BATCH_ROWS_BUCKETS)
        return {
            "scenarios": scenarios,
            "overall": {
                "requests": overall.count,
                "mean_seconds": overall.mean,
                "p50_seconds": overall.percentile(50),
                "p99_seconds": overall.percentile(99),
            },
            "batches": {
                "count": rows.count,
                "mean_rows": rows.mean,
                "p99_rows": rows.percentile(99),
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and join every batcher (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for batcher in {id(b): b for b in self._batchers.values()}.values():
            batcher.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Server(scenarios={self.scenarios()}, {state})"
