"""Model registry: checkpoint → ready-to-serve module, spec-driven.

A *model spec* is the JSON-serializable recipe stored in a checkpoint's
metadata under the ``"model"`` key::

    {"builder": "mlp", "config": {"architecture": "hps", "in_features": 16,
                                  "hidden": [24, 12], "tasks": ["task0"], "seed": 0}}

:meth:`ModelRegistry.load` reads the checkpoint, looks the builder up,
constructs a structurally identical module from the config, loads the saved
parameter state over it, switches it to eval mode, and caches it by name.
Built-in builders cover the repo's single-input families (see
:mod:`repro.arch.factory`); serving a custom architecture means registering
a builder for it with :meth:`ModelRegistry.register_builder`.

:func:`save_model` is the producer half: it embeds the spec while writing
the checkpoint, so a file saved with it is loadable with no code beyond
``registry.load(path)``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Mapping

from ..arch.factory import build_mlp_model, build_tabular_model
from ..nn.module import Module
from ..nn.serialization import load_state, save_checkpoint

__all__ = ["ModelRegistry", "model_spec", "save_model"]

_SPEC_KEY = "model"

#: Builders every registry starts with: name → ``fn(**config) -> Module``.
DEFAULT_BUILDERS: dict[str, Callable[..., Module]] = {
    "mlp": build_mlp_model,
    "tabular": build_tabular_model,
}


def model_spec(builder: str, **config) -> dict:
    """Build the spec dict :func:`save_model` embeds in checkpoint metadata."""
    if not builder:
        raise ValueError("builder name must be non-empty")
    return {"builder": builder, "config": dict(config)}


def save_model(model: Module, path, spec: Mapping, metadata: Mapping | None = None) -> Path:
    """Write a self-describing checkpoint: parameters + model spec.

    ``spec`` comes from :func:`model_spec`; extra ``metadata`` entries are
    stored alongside it (the ``"model"`` key is reserved for the spec).
    """
    if "builder" not in spec or "config" not in spec:
        raise ValueError("spec must carry 'builder' and 'config' keys (see model_spec)")
    payload = dict(metadata or {})
    if _SPEC_KEY in payload:
        raise ValueError(f"metadata key {_SPEC_KEY!r} is reserved for the model spec")
    payload[_SPEC_KEY] = dict(spec)
    return save_checkpoint(model, path, payload)


class ModelRegistry:
    """Named store of ready-to-serve models with spec-driven loading."""

    def __init__(self) -> None:
        self._builders: dict[str, Callable[..., Module]] = dict(DEFAULT_BUILDERS)
        self._models: dict[str, Module] = {}
        self._metadata: dict[str, dict] = {}
        self._specs: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def register_builder(self, name: str, builder: Callable[..., Module]) -> None:
        """Register ``builder(**config) -> Module`` under ``name``."""
        if not name:
            raise ValueError("builder name must be non-empty")
        self._builders[name] = builder

    def build(self, spec: Mapping) -> Module:
        """Construct a fresh (un-restored) module from a model spec."""
        builder_name = spec.get("builder")
        builder = self._builders.get(builder_name)
        if builder is None:
            raise KeyError(
                f"unknown model builder {builder_name!r}; registered: "
                f"{sorted(self._builders)}"
            )
        return builder(**spec.get("config", {}))

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def load(self, path, name: str | None = None) -> Module:
        """Reconstruct + restore the model checkpointed at ``path``.

        The checkpoint must have been written by :func:`save_model` (its
        metadata carries the model spec).  The restored model is switched
        to eval mode and cached under ``name`` (default: the file stem).
        """
        path = Path(path)
        state, metadata = load_state(path)
        spec = metadata.get(_SPEC_KEY)
        if not isinstance(spec, Mapping):
            raise ValueError(
                f"checkpoint {path} carries no model spec; save it with "
                "repro.serve.save_model (or register the model directly via add())"
            )
        model = self.build(spec)
        model.load_state_dict(state)
        model.eval()
        key = name if name is not None else path.stem
        self._models[key] = model
        self._metadata[key] = {k: v for k, v in metadata.items() if k != _SPEC_KEY}
        self._specs[key] = dict(spec)
        return model

    def add(self, name: str, model: Module) -> Module:
        """Register an already-constructed model (switched to eval mode)."""
        if not name:
            raise ValueError("model name must be non-empty")
        model.eval()
        self._models[name] = model
        self._metadata.setdefault(name, {})
        return model

    def get(self, name: str) -> Module:
        """Look a registered model up by name."""
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"unknown model {name!r}; registered: {sorted(self._models)}"
            ) from None

    def metadata(self, name: str) -> dict:
        """Extra (non-spec) checkpoint metadata stored when ``name`` loaded."""
        self.get(name)
        return dict(self._metadata.get(name, {}))

    def spec(self, name: str) -> dict:
        """The model spec ``name`` was loaded from (empty if added directly)."""
        self.get(name)
        return dict(self._specs.get(name, {}))

    def names(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __repr__(self) -> str:
        return (
            f"ModelRegistry({len(self._models)} models, "
            f"builders={sorted(self._builders)})"
        )
