"""Dynamic micro-batching: coalesce concurrent requests into one forward.

Throughput on a numpy/BLAS backend comes from batched matmuls: forwarding
64 rows at once costs far less than 64 single-row forwards.  The batcher
turns independent requests into exactly that — callers enqueue rows and
get a :class:`~concurrent.futures.Future` back; a dedicated worker thread
coalesces whatever is queued into one batch, runs a single
:func:`~repro.nn.inference_mode` forward over all tasks, and scatters the
per-task output rows back to each request's future.

Two knobs bound the batching:

- ``max_batch_size`` — a batch closes as soon as it holds this many rows;
- ``max_wait_ms`` — the *latency budget*: a batch closes no later than
  this many milliseconds after it **opens** (the worker dequeuing its
  first request), even if the batch is still small.  Under low traffic
  the worker is idle, pickup is immediate, and a request pays at most
  ``max_wait_ms`` of batching delay; under load the queued backlog is
  drained greedily into the batch without spending the budget at all.

Equivalence: coalescing is row concatenation and scattering is row
slicing, so the batched outputs are the same forward the rows would get
individually up to BLAS reduction order (tested to ≤ 1e-12 against the
sequential oracle in ``tests/serve/test_batcher.py``).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from ..arch.base import MTLModel
from ..nn.tensor import inference_mode
from ..obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["BATCH_ROWS_BUCKETS", "MicroBatcher"]

#: Bucket bounds for the ``serve_batch_rows`` histogram (rows per batch).
BATCH_ROWS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_SHUTDOWN = object()


class _Request:
    """One enqueued unit of work: rows + the future its outputs resolve."""

    __slots__ = ("rows", "scenario", "future", "enqueued_at")

    def __init__(self, rows: np.ndarray, scenario: str) -> None:
        self.rows = rows
        self.scenario = scenario
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()


class MicroBatcher:
    """Queue + worker thread coalescing requests into batched forwards.

    Parameters
    ----------
    model:
        The served :class:`~repro.arch.base.MTLModel`; must be in eval
        mode (the registry and server guarantee this).  Inputs are raw
        ndarrays — float features for MLP-family models, integer field
        matrices for tabular models — exactly what ``forward_all`` eats.
    max_batch_size:
        Row budget per batch; a batch ships once it reaches this size.
    max_wait_ms:
        Latency budget per batch, measured from the moment the worker
        opens it.  ``0`` disables waiting: every batch ships with
        whatever is immediately available (minimum latency, still
        coalescing backlog under load).
    telemetry:
        Where latency/batch-size/queue-depth instrumentation lands;
        defaults to the shared no-op instance.
    """

    def __init__(
        self,
        model: MTLModel,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be ≥ 1; got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be ≥ 0; got {max_wait_ms}")
        self.model = model
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.telemetry = telemetry
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Enqueue side
    # ------------------------------------------------------------------
    def submit(self, rows: np.ndarray, scenario: str = "default") -> Future:
        """Enqueue one request; the future resolves to ``{task: ndarray}``.

        ``rows`` may be a single feature row ``(features,)`` or a block
        ``(n, features)``; the resolved per-task arrays cover exactly the
        submitted rows, in order (a 1-D submission gets 1-row outputs).
        """
        rows = np.asarray(rows)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        if rows.ndim != 2 or rows.shape[0] == 0:
            raise ValueError(
                f"rows must be (features,) or (n, features) with n ≥ 1; got shape {rows.shape}"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            request = _Request(rows, scenario)
            self._queue.put(request)
        self.telemetry.counter("serve_requests_total", scenario=scenario).inc()
        self.telemetry.gauge("serve_queue_depth").set(self._queue.qsize())
        return request.future

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            rows = first.rows.shape[0]
            # Coalesce until the row budget fills or the latency budget
            # expires.  The budget is anchored when the batch OPENS (first
            # dequeue), not when its first request was enqueued: under
            # backlog an enqueue-anchored budget is already spent by
            # pickup time, degenerating every batch to a single request.
            # The backlog itself is drained greedily (no timed waits), so
            # under load batches fill without consuming the budget at all.
            deadline = time.monotonic() + self.max_wait_s
            stop = False
            while rows < self.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _SHUTDOWN:
                    stop = True
                    break
                batch.append(item)
                rows += item.rows.shape[0]
            self._dispatch(batch)
            if stop:
                self._drain()
                return

    def _drain(self) -> None:
        """Ship everything still queued (post-shutdown) in final batches."""
        batch: list[_Request] = []
        rows = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            batch.append(item)
            rows += item.rows.shape[0]
            if rows >= self.max_batch_size:
                self._dispatch(batch)
                batch, rows = [], 0
        if batch:
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Request]) -> None:
        telemetry = self.telemetry
        # Transition every future to RUNNING before doing work: a future
        # that was cancelled while queued is dropped here, and the rest can
        # no longer be cancelled, so the scatter loop's set_result cannot
        # raise InvalidStateError and poison batch-mates.
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not batch:
            return
        multi = len(batch) > 1
        try:
            with telemetry.span("serve_batch", requests=len(batch)):
                with telemetry.span("coalesce"):
                    if multi:
                        inputs = np.concatenate([r.rows for r in batch], axis=0)
                    else:
                        inputs = batch[0].rows
                with telemetry.span("forward"):
                    with inference_mode():
                        outputs = {
                            task: out.data
                            for task, out in self.model.forward_all(inputs).items()
                        }
                with telemetry.span("scatter"):
                    done = time.monotonic()
                    start = 0
                    for request in batch:
                        stop = start + request.rows.shape[0]
                        # Copy per-request slices in coalesced batches so no
                        # two callers alias the shared batch output buffer.
                        request.future.set_result(
                            {
                                task: out[start:stop].copy() if multi else out
                                for task, out in outputs.items()
                            }
                        )
                        telemetry.histogram(
                            "serve_request_seconds", scenario=request.scenario
                        ).observe(done - request.enqueued_at)
                        start = stop
        except BaseException as error:  # noqa: BLE001 — worker must survive
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
        finally:
            telemetry.counter("serve_batches_total").inc()
            telemetry.histogram(
                "serve_batch_rows", buckets=BATCH_ROWS_BUCKETS
            ).observe(sum(r.rows.shape[0] for r in batch))
            telemetry.gauge("serve_queue_depth").set(self._queue.qsize())

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MicroBatcher({type(self.model).__name__}, "
            f"max_batch_size={self.max_batch_size}, "
            f"max_wait_ms={self.max_wait_s * 1000.0:g}, {state})"
        )
