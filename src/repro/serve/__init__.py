"""``repro.serve`` — high-throughput inference serving for trained MTL models.

The training stack can fit MoCoGrad-balanced models fast; this package
answers queries with them.  Four layers (see DESIGN.md, "Serving"):

- **Fast path** — every served forward runs under
  :func:`repro.nn.inference_mode`, which skips autograd graph construction
  and adjoint bookkeeping entirely;
- **Registry** (:mod:`repro.serve.registry`) — load models from
  ``repro.nn.serialization`` checkpoints, reconstructing the architecture
  from the checkpoint's embedded model spec;
- **Micro-batcher** (:mod:`repro.serve.batcher`) — requests enqueue
  individually; a worker thread coalesces them into one batched forward
  under a configurable latency budget and scatters per-task outputs back
  to per-request futures;
- **Server facade** (:mod:`repro.serve.server`) — scenario-keyed routing
  (e.g. the four AliExpress countries ES/FR/NL/US) to per-scenario or
  shared models, configured through the ``serve_default_config`` dict
  idiom, instrumented with :mod:`repro.obs` latency histograms, queue
  gauges, and tracing spans.

The single-request sequential path (:meth:`Server.predict_sequential`)
is the reference oracle: batched serving is equivalence-tested against
it to ≤ 1e-12 (``tests/serve/``), and ``benchmarks/bench_serve.py``
gates batched-vs-unbatched throughput and the no-autograd forward in CI.
"""

from .batcher import BATCH_ROWS_BUCKETS, MicroBatcher
from .registry import ModelRegistry, model_spec, save_model
from .server import Server, serve_default_config

__all__ = [
    "BATCH_ROWS_BUCKETS",
    "MicroBatcher",
    "ModelRegistry",
    "model_spec",
    "save_model",
    "Server",
    "serve_default_config",
]
