"""Worker process: an arena-packed model replica over shared memory.

Each worker builds its own model from ``spec.model_factory`` and packs it
into a :class:`~repro.nn.arena.ParameterArena` whose *data* buffer is the
shared ``params`` region (``load=True`` — the replica adopts the parent's
published weights, and every later optimizer step is visible without any
copy) and whose *grad* buffer is the worker's private row of the shared
``worker_grads`` slab.  A step then runs entirely in-place:

1. zero the grad slab;
2. forward + multi-root backward on the shard ``indices[lo:hi]``;
3. write the ``(K, ds)`` per-task shared-partition gradients into
   ``task_grads[worker]`` and the per-task losses into ``losses[worker]``
   (full-model gradients land in ``worker_grads[worker]`` as autograd's
   side effect);
4. ack ``(worker, step, "ok", compute_seconds)``.

No gradient, parameter, or batch data is ever pickled — the queues carry
only small command/ack tuples.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..data.base import ArrayDataset
from ..nn.arena import ParameterArena
from ..nn.module import Parameter
from ..nn.tensor import backward_multi
from ..nn.utils import grad_vector_from_slots
from ..obs import NULL_TELEMETRY, JsonlSink, Telemetry
from .shm import ArenaDims, SharedArenaBuffers, SharedIndexBuffer

__all__ = ["WorkerSpec", "arena_order", "worker_sink_path", "worker_main"]


def arena_order(model) -> tuple[list[Parameter], list[Parameter]]:
    """``(ordered, shared)`` — the canonical packing order of a model.

    Shared parameters first (so the balancer's partition is one contiguous
    arena prefix), task-specific parameters after, duplicates dropped by
    identity.  Parent and workers both pack in this order, which is what
    makes their flat buffers element-compatible.
    """
    shared = model.shared_parameters()
    shared_ids = {id(p) for p in shared}
    ordered = list(shared) + [p for p in model.parameters() if id(p) not in shared_ids]
    return ordered, shared


def worker_sink_path(base: str | os.PathLike, index: int) -> Path:
    """Per-worker JSONL path: ``run.jsonl`` → ``run.worker<i>.jsonl``.

    Workers must not share the parent's sink file (interleaved writes from
    multiple processes tear JSONL lines); ``repro report`` accepts the
    whole file set and merges it.
    """
    base = Path(base)
    return base.with_name(f"{base.stem}.worker{index}{base.suffix}")


@dataclass
class WorkerSpec:
    """Everything a worker needs to reconstruct its replica.

    ``model_factory`` must deterministically rebuild the parent's model
    *structure* (same parameters, shapes, packing order); the replica's
    initial values are discarded in favour of the shared buffer.  Under
    the ``spawn`` start method every field must be picklable — use
    module-level factories and loss functions, not closures or lambdas.
    """

    model_factory: Callable[[], object]
    task_names: list[str]
    loss_fns: list[Callable]
    dataset: ArrayDataset
    telemetry_base: str | None = field(default=None)

    def __post_init__(self) -> None:
        if len(self.task_names) != len(self.loss_fns):
            raise ValueError(
                f"{len(self.task_names)} task names but {len(self.loss_fns)} loss fns"
            )


def worker_main(
    spec: WorkerSpec,
    index: int,
    arena_name: str,
    dims: ArenaDims,
    index_name: str,
    index_capacity: int,
    command_queue,
    ack_queue,
) -> None:
    """Worker process entry point: attach, replicate, serve step commands.

    Commands: ``("step", step, lo, hi)`` computes shard ``[lo, hi)`` of the
    current index buffer and acks; ``("stop",)`` exits the loop.  Any
    exception during a step is acked as ``("error", traceback)`` so the
    parent can surface it instead of hanging on the barrier.
    """
    buffers = SharedArenaBuffers.attach(arena_name, dims)
    indices = SharedIndexBuffer.attach(index_name, index_capacity)
    telemetry = NULL_TELEMETRY
    if spec.telemetry_base is not None:
        sink_path = worker_sink_path(spec.telemetry_base, index)
        telemetry = Telemetry(sinks=[JsonlSink(str(sink_path))])
    try:
        model = spec.model_factory()
        ordered, shared = arena_order(model)
        arena = ParameterArena(
            ordered, data=buffers.params, grad=buffers.worker_grads[index], load=True
        )
        model.train()
        task_grads = buffers.task_grads[index]
        losses_row = buffers.losses[index]
        while True:
            command = command_queue.get()
            if command[0] == "stop":
                break
            _, step, lo, hi = command
            started = time.perf_counter()
            try:
                with telemetry.span("worker_step", worker=str(index)):
                    if hi <= lo:
                        arena.zero_grad()
                        task_grads.fill(0.0)
                        losses_row.fill(0.0)
                    else:
                        shard = indices.indices[lo:hi]
                        arena.zero_grad()
                        inputs, targets = spec.dataset.batch(shard)
                        with telemetry.span("forward"):
                            outputs = model.forward_all(inputs)
                            loss_tensors = [
                                loss_fn(outputs[name], targets[name])
                                for name, loss_fn in zip(spec.task_names, spec.loss_fns)
                            ]
                            for k, loss in enumerate(loss_tensors):
                                losses_row[k] = loss.item()
                        with telemetry.span("backward"):
                            slots = backward_multi(loss_tensors, per_root=shared)
                            for k in range(len(loss_tensors)):
                                grad_vector_from_slots(shared, slots, k, out=task_grads[k])
                if telemetry.enabled:
                    telemetry.counter("worker_steps_total", worker=str(index)).inc()
            except Exception:
                ack_queue.put((index, step, "error", traceback.format_exc()))
                continue
            ack_queue.put((index, step, "ok", time.perf_counter() - started))
    finally:
        if telemetry.enabled:
            telemetry.flush()
        indices.close(unlink=False)
        buffers.close(unlink=False)
