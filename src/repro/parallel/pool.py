"""Parent-side worker pool: step protocol, reduce, crash detection.

The protocol is a strict barrier per step:

1. **dispatch** — the parent writes the step's batch indices into the
   shared index buffer, computes contiguous shard bounds, and puts one
   ``("step", step, lo, hi)`` command on every worker's queue;
2. **wait** — the parent drains the shared ack queue until every worker
   has answered for this step, polling process liveness in between so a
   dead worker raises :class:`WorkerCrashed` (naming the worker and the
   step) instead of hanging the barrier forever;
3. **reduce** — a deterministic ascending-worker flat-sum over the shared
   slabs with per-shard weights ``n_w / n``, written into caller-provided
   output buffers (the balancer's ``(K, ds)`` matrix, the parent arena's
   grad buffer, and the loss vector).

Shutdown sends ``("stop",)`` to every live worker, joins with a timeout,
and escalates to ``terminate()`` for stragglers; after a crash the pool
tears everything down before raising, so no zombie ever outlives a failed
step.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import time

import numpy as np

from .sharder import shard_bounds, shard_weights
from .shm import ArenaDims, SharedArenaBuffers, SharedIndexBuffer
from .worker import WorkerSpec, worker_main

__all__ = ["WorkerCrashed", "ParallelExecutor", "default_start_method"]


class WorkerCrashed(RuntimeError):
    """A worker died, errored, or timed out mid-step.

    Attributes ``worker`` (index) and ``step`` identify where; the message
    carries the failure detail (exit report, timeout, or the worker's
    traceback).
    """

    def __init__(self, worker: int, step: int, detail: str) -> None:
        super().__init__(f"worker {worker} failed at step {step}: {detail}")
        self.worker = worker
        self.step = step
        self.detail = detail


def default_start_method() -> str:
    """``fork`` where available (zero-cost spec transfer), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class ParallelExecutor:
    """Owns the worker processes and the per-``fit`` index buffer.

    Parameters
    ----------
    spec:
        The picklable worker recipe (model factory, tasks, dataset).
    buffers:
        The parent-owned :class:`SharedArenaBuffers` (NOT owned here —
        the trainer created it alongside its arena and closes it).
    batch_size:
        Capacity of the shared index buffer (one batch per step).
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``, default
        :func:`default_start_method`.
    step_timeout:
        Seconds to wait for the step barrier before declaring the
        slowest outstanding worker crashed.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        buffers: SharedArenaBuffers,
        batch_size: int,
        start_method: str | None = None,
        step_timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> None:
        dims: ArenaDims = buffers.dims
        self.num_workers = dims.num_workers
        self.buffers = buffers
        self.step_timeout = step_timeout
        self.poll_interval = poll_interval
        self.start_method = start_method or default_start_method()
        self._indices = SharedIndexBuffer.create(batch_size)
        self._bounds: list[int] | None = None
        self._closed = False
        ctx = mp.get_context(self.start_method)
        self._command_queues = [ctx.Queue() for _ in range(self.num_workers)]
        self._ack_queue = ctx.Queue()
        self.processes = []
        try:
            for index in range(self.num_workers):
                process = ctx.Process(
                    target=worker_main,
                    args=(
                        spec,
                        index,
                        buffers.name,
                        dims,
                        self._indices.name,
                        batch_size,
                        self._command_queues[index],
                        self._ack_queue,
                    ),
                    daemon=True,
                    name=f"repro-worker-{index}",
                )
                process.start()
                self.processes.append(process)
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Step protocol
    # ------------------------------------------------------------------
    def dispatch(self, step: int, batch_indices: np.ndarray) -> list[int]:
        """Publish one batch and command every worker to compute its shard."""
        n = int(batch_indices.size)
        if n > self._indices.capacity:
            raise ValueError(
                f"batch of {n} exceeds index buffer capacity {self._indices.capacity}"
            )
        self._indices.indices[:n] = batch_indices
        bounds = shard_bounds(n, self.num_workers)
        for worker, command_queue in enumerate(self._command_queues):
            command_queue.put(("step", step, bounds[worker], bounds[worker + 1]))
        self._bounds = bounds
        return bounds

    def wait(self, step: int) -> list[float]:
        """Barrier: collect every worker's ack for ``step``.

        Returns per-worker compute seconds.  Raises :class:`WorkerCrashed`
        (after tearing the pool down) when a worker acks an error, its
        process dies, or the barrier exceeds ``step_timeout``.
        """
        remaining = set(range(self.num_workers))
        seconds = [0.0] * self.num_workers
        deadline = time.monotonic() + self.step_timeout
        while remaining:
            try:
                worker, ack_step, status, payload = self._ack_queue.get(
                    timeout=self.poll_interval
                )
            except queue.Empty:
                for worker in sorted(remaining):
                    if not self.processes[worker].is_alive():
                        code = self.processes[worker].exitcode
                        self._terminate()
                        raise WorkerCrashed(
                            worker, step, f"process died (exit code {code})"
                        )
                if time.monotonic() > deadline:
                    worker = sorted(remaining)[0]
                    self._terminate()
                    raise WorkerCrashed(
                        worker, step, f"no ack within {self.step_timeout:.0f}s"
                    )
                continue
            if ack_step != step:
                continue  # stale ack from an aborted earlier step
            if status == "error":
                self._terminate()
                raise WorkerCrashed(worker, step, payload)
            seconds[worker] = float(payload)
            remaining.discard(worker)
        return seconds

    def reduce(
        self,
        task_grads_out: np.ndarray,
        full_grad_out: np.ndarray,
        losses_out: np.ndarray,
        accumulate_full: bool = False,
    ) -> None:
        """Weighted flat-sum of the worker slabs into parent buffers.

        Ascending worker order with weights ``n_w / n`` from the last
        dispatch — fully deterministic.  ``task_grads_out`` (the balancer's
        ``(K, ds)`` matrix) and ``losses_out`` are always overwritten;
        ``accumulate_full=True`` *adds* the full-model gradient into
        ``full_grad_out`` instead, so micro-steps of an accumulation window
        sum into the parent arena exactly as skipped ``zero_grad`` calls do
        in single-process mode (the caller guarantees it starts zeroed).
        """
        if self._bounds is None:
            raise RuntimeError("reduce() before any dispatch()")
        weights = shard_weights(self._bounds)
        buffers = self.buffers
        for worker in range(self.num_workers):
            weight = float(weights[worker])
            if worker == 0:
                np.multiply(buffers.task_grads[0], weight, out=task_grads_out)
                np.multiply(buffers.losses[0], weight, out=losses_out)
                if accumulate_full:
                    full_grad_out += weight * buffers.worker_grads[0]
                else:
                    np.multiply(buffers.worker_grads[0], weight, out=full_grad_out)
            elif weight != 0.0:
                task_grads_out += weight * buffers.task_grads[worker]
                losses_out += weight * buffers.losses[worker]
                full_grad_out += weight * buffers.worker_grads[worker]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and release the index buffer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker, process in enumerate(self.processes):
            if process.is_alive():
                try:
                    self._command_queues[worker].put(("stop",))
                except (OSError, ValueError):
                    pass
        for process in self.processes:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        for command_queue in self._command_queues:
            command_queue.close()
        self._ack_queue.close()
        self._indices.close()

    def _terminate(self) -> None:
        """Hard teardown after a crash: kill everything, then clean up."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        self.shutdown(timeout=1.0)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
