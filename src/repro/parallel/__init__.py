"""``repro.parallel`` — shared-memory data-parallel training.

N worker processes hold arena-packed replicas of the model over one
``multiprocessing.shared_memory`` block: the parent's fused flat-vector
optimizer step writes the shared ``params`` region in place (the step *is*
the broadcast), workers run forward + multi-root backward on deterministic
contiguous shards of each batch and land their ``(K, d_shared)`` per-task
gradient matrices directly in shared slabs, and the parent reduces with a
deterministic weighted flat-sum before balancing once and stepping once.
No gradients, parameters, or batches are ever pickled.

Entry point: ``MTLTrainer(..., parallel=N, model_factory=...)``; the
building blocks (buffer pool, sharder, worker loop, step protocol) live
here.  See DESIGN.md ("Data-parallel training") for the layout diagram,
protocol, and determinism contract.
"""

from .pool import ParallelExecutor, WorkerCrashed, default_start_method
from .sharder import shard_bounds, shard_weights
from .shm import ArenaDims, SharedArenaBuffers, SharedIndexBuffer
from .worker import WorkerSpec, arena_order, worker_main, worker_sink_path

__all__ = [
    "ArenaDims",
    "SharedArenaBuffers",
    "SharedIndexBuffer",
    "ParallelExecutor",
    "WorkerCrashed",
    "WorkerSpec",
    "arena_order",
    "default_start_method",
    "shard_bounds",
    "shard_weights",
    "worker_main",
    "worker_sink_path",
]
