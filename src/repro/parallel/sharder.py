"""Deterministic batch sharding for data-parallel workers.

The parent draws each step's batch indices from the *same* generator
stream a sequential :class:`~repro.data.base.DataLoader` would consume
(via :func:`~repro.data.base.batch_index_iter`), then cuts the index
vector into contiguous near-equal shards.  Determinism contract: given
the same seed, batch size, and dataset length, the concatenation of the
workers' shards at every step equals the sequential batch — which is why
parallel training can be checked against a sequential large-batch oracle
to 1e-12 (see ``tests/parallel/test_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_bounds", "shard_weights"]


def shard_bounds(num_samples: int, num_workers: int) -> list[int]:
    """Contiguous near-equal split points: shard w is ``[b[w], b[w+1])``.

    The first ``num_samples % num_workers`` shards take one extra sample;
    trailing shards may be empty when the (last) batch is smaller than the
    worker count — workers ack empty shards with zeroed slabs.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be ≥ 1; got {num_workers}")
    if num_samples < 0:
        raise ValueError(f"num_samples must be ≥ 0; got {num_samples}")
    base, extra = divmod(num_samples, num_workers)
    bounds = [0]
    for worker in range(num_workers):
        bounds.append(bounds[-1] + base + (1 if worker < extra else 0))
    return bounds


def shard_weights(bounds: list[int]) -> np.ndarray:
    """Per-shard reduce weights ``n_w / n`` (empty batch → all zeros).

    Per-sample mean losses compose exactly under these weights:
    ``sum_w (n_w / n) * mean_shard_w == mean_batch``.  With power-of-two
    batch sizes and worker counts every weight is exact in float64, making
    the reduce bit-compatible with the sequential whole-batch mean.
    """
    total = bounds[-1]
    sizes = np.diff(np.asarray(bounds, dtype=np.float64))
    if total == 0:
        return sizes  # already zeros
    return sizes / float(total)
