"""Shared-memory buffer pool for data-parallel arena training.

One :class:`SharedArenaBuffers` block carries everything the step protocol
moves between the parent and its workers — laid out as flat float64 regions
over a single ``multiprocessing.shared_memory`` segment:

====================  ==============  =====================================
region                shape           role
====================  ==============  =====================================
``params``            ``(d,)``        the ONE copy of the model weights.
                                      The parent's :class:`~repro.nn.arena.
                                      ParameterArena` packs into it, so the
                                      fused optimizer step *is* the
                                      broadcast; every worker replica's
                                      ``param.data`` views alias it.
``parent_grad``       ``(d,)``        the parent arena's grad buffer; the
                                      reduce writes the weighted full-model
                                      gradient here for the optimizer.
``worker_grads``      ``(W, d)``      per-worker arena grad slabs — each
                                      worker's autograd accumulates
                                      directly into its own row.
``task_grads``        ``(W, K, ds)``  per-worker per-task shared-parameter
                                      gradient matrices (``ds`` = shared
                                      partition length), reduced into the
                                      balancer's ``(K, ds)`` input.
``losses``            ``(W, K)``      per-worker per-task loss values.
====================  ==============  =====================================

Shard indices travel through a separate :class:`SharedIndexBuffer` (int64)
created per ``fit()`` once the batch size is known.  Nothing that scales
with ``d`` ever crosses a queue: the step protocol pickles only small
command/ack tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ArenaDims", "SharedArenaBuffers", "SharedIndexBuffer"]

_FLOAT = np.dtype(np.float64)
_INDEX = np.dtype(np.int64)


@dataclass(frozen=True)
class ArenaDims:
    """Everything needed to map the float64 regions of one buffer block."""

    num_workers: int
    num_tasks: int
    dim_total: int
    dim_shared: int

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be ≥ 1; got {self.num_workers}")
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be ≥ 1; got {self.num_tasks}")
        if self.dim_total < 1 or self.dim_shared < 1:
            raise ValueError("dim_total and dim_shared must be ≥ 1")
        if self.dim_shared > self.dim_total:
            raise ValueError(
                f"dim_shared {self.dim_shared} exceeds dim_total {self.dim_total}"
            )

    @property
    def total_floats(self) -> int:
        w, k, d, ds = self.num_workers, self.num_tasks, self.dim_total, self.dim_shared
        return 2 * d + w * d + w * k * ds + w * k


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    CPython ≤ 3.12 registers *every* ``SharedMemory`` handle with the
    resource tracker, attaches included.  Workers inherit the parent's
    tracker process (both fork and spawn pass its fd down), whose cache is
    a name-keyed *set* — the attach-time register is a duplicate no-op and
    the parent's ``unlink()`` clears the single entry, so no unregister
    gymnastics are needed here (an explicit per-worker unregister would in
    fact delete the parent's registration and make later unregisters
    KeyError inside the tracker).
    """
    return shared_memory.SharedMemory(name=name)


class SharedArenaBuffers:
    """Float64 regions of one shared-memory block (see module docstring).

    The parent constructs with :meth:`create` (owns the segment, must
    :meth:`close` with ``unlink=True``); workers use :meth:`attach` with
    the ``(name, dims)`` pair received in their start arguments.
    """

    def __init__(self, shm: shared_memory.SharedMemory, dims: ArenaDims, owner: bool) -> None:
        self._shm = shm
        self.dims = dims
        self.owner = owner
        self.name = shm.name
        flat = np.ndarray((dims.total_floats,), dtype=_FLOAT, buffer=shm.buf)
        w, k, d, ds = dims.num_workers, dims.num_tasks, dims.dim_total, dims.dim_shared
        offset = 0
        #: ``(d,)`` — the single shared copy of the model weights
        self.params = flat[offset : offset + d]
        offset += d
        #: ``(d,)`` — the parent arena's gradient buffer (reduce target)
        self.parent_grad = flat[offset : offset + d]
        offset += d
        #: ``(W, d)`` — per-worker arena gradient slabs
        self.worker_grads = flat[offset : offset + w * d].reshape(w, d)
        offset += w * d
        #: ``(W, K, ds)`` — per-worker per-task shared-partition gradients
        self.task_grads = flat[offset : offset + w * k * ds].reshape(w, k, ds)
        offset += w * k * ds
        #: ``(W, K)`` — per-worker per-task loss values
        self.losses = flat[offset : offset + w * k].reshape(w, k)

    @classmethod
    def create(cls, dims: ArenaDims) -> "SharedArenaBuffers":
        """Allocate a fresh zero-filled block (parent side)."""
        shm = shared_memory.SharedMemory(create=True, size=dims.total_floats * _FLOAT.itemsize)
        buffers = cls(shm, dims, owner=True)
        np.ndarray((dims.total_floats,), dtype=_FLOAT, buffer=shm.buf).fill(0.0)
        return buffers

    @classmethod
    def attach(cls, name: str, dims: ArenaDims) -> "SharedArenaBuffers":
        """Map an existing block by name (worker side; never unlinks)."""
        return cls(_attach(name), dims, owner=False)

    def close(self, unlink: bool | None = None) -> None:
        """Release the mapping; the owner also unlinks the segment.

        Safe to call more than once.  Numpy views into the block become
        invalid after the first call — drop them first.
        """
        # The views pin shm.buf; break our references so close() can
        # release the memoryview without BufferError.
        for attr in ("params", "parent_grad", "worker_grads", "task_grads", "losses"):
            if hasattr(self, attr):
                delattr(self, attr)
        try:
            self._shm.close()
        except BufferError:
            pass
        if unlink if unlink is not None else self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return f"SharedArenaBuffers(name={self.name!r}, dims={self.dims})"


class SharedIndexBuffer:
    """An int64 shared array carrying each step's batch index vector.

    The parent writes the step's (already shuffled) sample indices into
    ``indices[:n]``; workers slice ``indices[lo:hi]`` per the bounds in
    their step command.  Capacity is the training batch size, so the block
    is created per ``fit()``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int, owner: bool) -> None:
        self._shm = shm
        self.capacity = capacity
        self.owner = owner
        self.name = shm.name
        #: ``(capacity,)`` int64 — the current step's sample indices
        self.indices = np.ndarray((capacity,), dtype=_INDEX, buffer=shm.buf)

    @classmethod
    def create(cls, capacity: int) -> "SharedIndexBuffer":
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1; got {capacity}")
        shm = shared_memory.SharedMemory(create=True, size=capacity * _INDEX.itemsize)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "SharedIndexBuffer":
        return cls(_attach(name), capacity, owner=False)

    def close(self, unlink: bool | None = None) -> None:
        """Release the mapping; the owner also unlinks (idempotent)."""
        if hasattr(self, "indices"):
            del self.indices
        try:
            self._shm.close()
        except BufferError:
            pass
        if unlink if unlink is not None else self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return f"SharedIndexBuffer(name={self.name!r}, capacity={self.capacity})"
