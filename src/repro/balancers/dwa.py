"""DWA — Dynamic Weight Average (Liu et al., CVPR 2019).

Task weights follow the rate of loss descent:

    w_k(t) = K · exp(r_k(t) / T) / Σ_j exp(r_j(t) / T),
    r_k(t) = L_k(t−1) / L_k(t−2)

so tasks whose loss recently stalled get up-weighted.  ``T`` is the softmax
temperature (the original paper uses 2).  For the first two steps, before
two loss snapshots exist, all weights are 1 (equal weighting).
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["DWA"]


@register_balancer("dwa")
class DWA(GradientBalancer):
    """Dynamic weight average over task losses."""

    def __init__(self, temperature: float = 2.0, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self._loss_history: list[np.ndarray] = []

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._loss_history = []

    def weights(self) -> np.ndarray:
        """Current task weights (sums to K)."""
        if len(self._loss_history) < 2:
            return np.ones(self.num_tasks)
        previous, before = self._loss_history[-1], self._loss_history[-2]
        rate = previous / np.maximum(before, 1e-12)
        logits = rate / self.temperature
        logits -= logits.max()  # numerical stability
        exp = np.exp(logits)
        return self.num_tasks * exp / exp.sum()

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, losses = self._check_inputs(grads, losses)
        weights = self.weights()
        self._loss_history.append(losses.copy())
        if len(self._loss_history) > 2:
            self._loss_history.pop(0)
        return weights @ grads
