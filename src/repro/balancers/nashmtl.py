"""Nash-MTL — Multi-task learning as a bargaining game (Navon et al., ICML 2022).

The update direction Δθ = Σ α_k g_k is the Nash bargaining solution of the
game where each task's utility is its local improvement ⟨g_k, Δθ⟩.  The
first-order optimality condition is

    Gᵀ G α = 1 / α   (element-wise),   α > 0,

with G the matrix whose columns are task gradients.  The reference
implementation solves a sequence of convex approximations with CVXPY; this
reproduction solves the same fixed-point with a damped Newton / least-squares
iteration on the residual  F(α) = (GᵀG) α − 1/α  (scipy), which agrees with
the analytic solution in the 1- and 2-task cases and satisfies the
optimality condition to high precision for larger K.

As in the reference implementation, the solve runs every
``update_weights_every`` steps and reuses the latest α in between, and the
combined gradient can be norm-capped (``max_norm``).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["NashMTL", "solve_nash_weights"]

_EPS = 1e-10


def solve_nash_weights(gram: np.ndarray, max_iter: int = 40) -> np.ndarray:
    """Solve ``M α = 1/α`` for α > 0 with M = GᵀG (PSD).

    Uses scipy's trust-region least squares on the residual with a
    positivity bound; falls back to uniform weights when the gradient matrix
    is degenerate.
    """
    num_tasks = gram.shape[0]
    diag = np.clip(np.diag(gram), _EPS, None)
    # Initialize from the decoupled solution α_k = 1/‖g_k‖.
    alpha0 = 1.0 / np.sqrt(diag)

    def residual(alpha: np.ndarray) -> np.ndarray:
        return gram @ alpha - 1.0 / np.clip(alpha, _EPS, None)

    try:
        result = least_squares(
            residual,
            alpha0,
            bounds=(np.full(num_tasks, _EPS), np.full(num_tasks, np.inf)),
            max_nfev=max_iter * num_tasks * 4,
            xtol=1e-12,
            ftol=1e-12,
        )
        alpha = result.x
    except Exception:  # pragma: no cover - scipy failure safeguard
        alpha = alpha0
    if not np.all(np.isfinite(alpha)) or np.any(alpha <= 0):
        alpha = alpha0
    return alpha


@register_balancer("nashmtl")
class NashMTL(GradientBalancer):
    """Nash bargaining combination of task gradients."""

    def __init__(
        self,
        update_weights_every: int = 1,
        max_norm: float | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if update_weights_every < 1:
            raise ValueError("update_weights_every must be ≥ 1")
        self.update_weights_every = update_weights_every
        self.max_norm = max_norm
        self._alpha: np.ndarray | None = None
        self._step = 0

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._alpha = None
        self._step = 0

    @property
    def weights(self) -> np.ndarray | None:
        """Most recent bargaining weights α."""
        return self._alpha

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        needs_solve = (
            self._alpha is None
            or self._alpha.size != num_tasks
            or self._step % self.update_weights_every == 0
        )
        if needs_solve:
            # Shared per-step cache: the same GEMM the conflict telemetry
            # and other pairwise consumers read.
            gram = self.gradstats.gram
            if float(np.trace(gram)) < _EPS:
                self._alpha = np.ones(num_tasks)
            else:
                self._alpha = solve_nash_weights(gram)
        self._step += 1
        combined = self._alpha @ grads
        if self.max_norm is not None:
            norm = float(np.linalg.norm(combined))
            if norm > self.max_norm:
                combined = combined * (self.max_norm / norm)
        return combined
