"""Uncertainty weighting (Kendall, Gal & Cipolla, CVPR 2018).

The paper cites this ([38]) among the loss-balancing family.  Each task's
loss is weighted by a learned homoscedastic-uncertainty term:

    L = Σ_k ( exp(−s_k) · L_k + s_k / 2 ),   s_k = log σ_k².

In balancer form the state ``s`` descends its own closed-form gradient
(∂L/∂s_k = −exp(−s_k) L_k + 1/2) and the combined update is the
``exp(−s_k)``-weighted gradient sum — tasks with noisy (large) losses get
automatically down-weighted.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["UncertaintyWeighting"]


@register_balancer("uncertainty")
class UncertaintyWeighting(GradientBalancer):
    """Homoscedastic-uncertainty loss weighting as a gradient balancer."""

    def __init__(self, s_lr: float = 0.025, clamp: float = 10.0, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if s_lr <= 0:
            raise ValueError("s_lr must be positive")
        if clamp <= 0:
            raise ValueError("clamp must be positive")
        self.s_lr = s_lr
        self.clamp = clamp
        self._log_variance: np.ndarray | None = None

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._log_variance = np.zeros(num_tasks)

    @property
    def log_variance(self) -> np.ndarray | None:
        """The learned s = log σ² per task."""
        return self._log_variance

    def weights(self) -> np.ndarray:
        """Current task weights exp(−s)."""
        if self._log_variance is None:
            raise RuntimeError("balancer not reset yet")
        return np.exp(-self._log_variance)

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, losses = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        if self._log_variance is None or self._log_variance.size != num_tasks:
            self._log_variance = np.zeros(num_tasks)
        weights = np.exp(-self._log_variance)
        # Closed-form descent on s: ∂/∂s_k [e^{−s_k} L_k + s_k/2].
        s_grad = -weights * losses + 0.5
        self._log_variance = np.clip(
            self._log_variance - self.s_lr * s_grad, -self.clamp, self.clamp
        )
        return weights @ grads
