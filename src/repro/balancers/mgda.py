"""MGDA — Multiple Gradient Descent Algorithm (Sener & Koltun, NeurIPS 2018).

Casts MTL as multi-objective optimization: find the minimum-norm point in
the convex hull of the task gradients,

    min_w ‖ Σ_k w_k g_k ‖²   s.t.  w ≥ 0, Σ w = 1,

whose solution is a common descent direction (or zero at Pareto-stationary
points).  Solved with the Frank–Wolfe iteration of the original paper, with
the exact analytic line search for the two-point subproblem.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["MGDA", "min_norm_point"]


def _two_point_min_norm(v1v1: float, v1v2: float, v2v2: float) -> float:
    """γ* minimizing ‖γ v1 + (1−γ) v2‖² on γ ∈ [0, 1] (analytic)."""
    denominator = v1v1 - 2.0 * v1v2 + v2v2
    if denominator <= 1e-15:
        return 0.5
    gamma = (v2v2 - v1v2) / denominator
    return float(np.clip(gamma, 0.0, 1.0))


def min_norm_point(grads: np.ndarray, max_iter: int = 250, tol: float = 1e-7) -> np.ndarray:
    """Weights of the min-norm point in the convex hull of the rows of ``grads``.

    Frank–Wolfe on the simplex using the Gram matrix only (O(K²) per step).
    """
    grads = np.asarray(grads, dtype=np.float64)
    num_tasks = grads.shape[0]
    if num_tasks == 1:
        return np.ones(1)
    gram = grads @ grads.T
    if num_tasks == 2:
        gamma = _two_point_min_norm(gram[0, 0], gram[0, 1], gram[1, 1])
        return np.array([gamma, 1.0 - gamma])

    weights = np.full(num_tasks, 1.0 / num_tasks)
    for _ in range(max_iter):
        gradient = gram @ weights  # ∇ of 0.5‖Σ w g‖² w.r.t. w
        descent_idx = int(np.argmin(gradient))
        vertex = np.zeros(num_tasks)
        vertex[descent_idx] = 1.0
        # Line search between current point (v2) and vertex (v1).
        v1v1 = gram[descent_idx, descent_idx]
        v1v2 = float(vertex @ gram @ weights)
        v2v2 = float(weights @ gram @ weights)
        gamma = _two_point_min_norm(v1v1, v1v2, v2v2)
        new_weights = gamma * vertex + (1.0 - gamma) * weights
        if np.abs(new_weights - weights).sum() < tol:
            weights = new_weights
            break
        weights = new_weights
    return weights


@register_balancer("mgda")
class MGDA(GradientBalancer):
    """Min-norm-point gradient combination (Pareto descent direction).

    ``normalization`` matches the options of the reference implementation:
    ``"none"`` uses raw gradients, ``"l2"`` normalizes each task gradient,
    ``"loss"`` divides each gradient by its loss value ("loss+" scheme).
    """

    def __init__(self, normalization: str = "none", seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if normalization not in ("none", "l2", "loss"):
            raise ValueError("normalization must be one of: none, l2, loss")
        self.normalization = normalization

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, losses = self._check_inputs(grads, losses)
        scaled = grads
        if self.normalization == "l2":
            norms = np.maximum(np.linalg.norm(grads, axis=1, keepdims=True), 1e-12)
            scaled = grads / norms
        elif self.normalization == "loss":
            scaled = grads / np.maximum(losses[:, None], 1e-12)
        weights = min_norm_point(scaled)
        return weights @ grads
