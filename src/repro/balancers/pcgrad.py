"""PCGrad — Projecting Conflicting Gradients (Yu et al., NeurIPS 2020).

When task i's gradient conflicts with task j's (negative cosine), PCGrad
removes the conflicting component by projecting g_i onto the normal plane of
g_j (paper Eq. 5):

    g_i' = g_i − (g_i · g_j / ‖g_j‖²) g_j

Each task's gradient is "surgered" against all other tasks in random order,
then the surgered gradients are summed.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["PCGrad", "project_conflicting"]

_EPS = 1e-12


def project_conflicting(grad_i: np.ndarray, grad_j: np.ndarray) -> np.ndarray:
    """Project ``grad_i`` onto the normal plane of ``grad_j`` if they conflict."""
    dot = float(np.dot(grad_i, grad_j))
    if dot >= 0.0:
        return grad_i
    norm_sq = float(np.dot(grad_j, grad_j))
    if norm_sq < _EPS:
        return grad_i
    return grad_i - (dot / norm_sq) * grad_j


@register_balancer("pcgrad")
class PCGrad(GradientBalancer):
    """Gradient surgery via projection onto normal planes."""

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        surgered = grads.copy()
        for i in range(num_tasks):
            partners = [j for j in range(num_tasks) if j != i]
            self.rng.shuffle(partners)
            for j in partners:
                # Project the running surgered gradient against the *raw*
                # partner gradient, as in the reference implementation.
                surgered[i] = project_conflicting(surgered[i], grads[j])
        return surgered.sum(axis=0)
