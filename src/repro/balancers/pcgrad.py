"""PCGrad — Projecting Conflicting Gradients (Yu et al., NeurIPS 2020).

When task i's gradient conflicts with task j's (negative cosine), PCGrad
removes the conflicting component by projecting g_i onto the normal plane of
g_j (paper Eq. 5):

    g_i' = g_i − (g_i · g_j / ‖g_j‖²) g_j

Each task's gradient is "surgered" against all other tasks in random order,
then the surgered gradients are summed.

Kernels: the surgery is *order-dependent* — each projection changes the
running g_i' whose inner products gate later projections — so it cannot
collapse to one matrix product.  The fast path (``pairwise_mode=
"vectorized"``, default) keeps the partner loop but removes every
d-length BLAS-1 call from it: partner norms² and the initial inner
products come from the shared :class:`~repro.core.gradstats.GradStats`
Gram, each projection updates the running inner-product row incrementally
in O(K) (``⟨g_i' − c·g_j, g_l⟩ = ⟨g_i', g_l⟩ − c·Gram[j, l]``), and the
accumulated projection coefficients are applied at the end as a single
``(K, K) @ (K, d)`` GEMM.  ``pairwise_mode="loop"`` keeps the original
per-pair reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["PCGrad", "project_conflicting"]

_EPS = 1e-12


def project_conflicting(grad_i: np.ndarray, grad_j: np.ndarray) -> np.ndarray:
    """Project ``grad_i`` onto the normal plane of ``grad_j`` if they conflict."""
    dot = float(np.dot(grad_i, grad_j))
    if dot >= 0.0:
        return grad_i
    norm_sq = float(np.dot(grad_j, grad_j))
    if norm_sq < _EPS:
        return grad_i
    return grad_i - (dot / norm_sq) * grad_j


@register_balancer("pcgrad")
class PCGrad(GradientBalancer):
    """Gradient surgery via projection onto normal planes."""

    #: PCGrad's loop kernel is the cheapest pairwise loop in the registry
    #: (two BLAS-1 calls per pair, no norms or cosines), so the vectorized
    #: kernel only clearly wins from ~6 tasks; K=4 sits at parity.
    vectorize_min_tasks = 6

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        if not self._use_vectorized(num_tasks):
            surgered = grads.copy()
            for i in range(num_tasks):
                partners = [j for j in range(num_tasks) if j != i]
                self.rng.shuffle(partners)
                for j in partners:
                    # Project the running surgered gradient against the *raw*
                    # partner gradient, as in the reference implementation.
                    surgered[i] = project_conflicting(surgered[i], grads[j])
            return surgered.sum(axis=0)

        stats = self.gradstats
        gram = stats.gram
        norms_sq = stats.norms_sq
        coef = np.zeros((num_tasks, num_tasks))
        projected_any = False
        for i in range(num_tasks):
            partners = [j for j in range(num_tasks) if j != i]
            self.rng.shuffle(partners)
            dots = gram[i].copy()  # ⟨g_i', g_l⟩ for the running g_i'
            for j in partners:
                dot = dots[j]
                if dot >= 0.0 or norms_sq[j] < _EPS:
                    continue
                c = dot / norms_sq[j]
                coef[i, j] = c
                dots -= c * gram[j]
                projected_any = True
        if not projected_any:
            return grads.sum(axis=0)
        surgered = grads - coef @ grads
        return surgered.sum(axis=0)
