"""RLW — Random Loss Weighting (Lin et al., TMLR 2022).

At every step, sample task weights by drawing logits from a standard normal
and passing them through a softmax.  Surprisingly competitive, and used by
the paper as a "litmus test" baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["RLW"]


@register_balancer("rlw")
class RLW(GradientBalancer):
    """Random loss weighting with normal-softmax weights."""

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        logits = self.rng.standard_normal(grads.shape[0])
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        # Scale by K so the expected step magnitude matches summed losses.
        return (grads.shape[0] * weights) @ grads
