"""``repro.balancers`` — the ten comparison methods from the paper's Table I.

All balancers implement :class:`repro.core.GradientBalancer` and register
themselves under the names used throughout the experiments:

====================  =======================================
name                  method
====================  =======================================
``equal``             vanilla joint training (Σ g_k)
``dwa``               Dynamic Weight Average
``mgda``              Multiple Gradient Descent Algorithm
``pcgrad``            Projecting Conflicting Gradients
``graddrop``          Gradient Sign Dropout
``gradvac``           Gradient Vaccine
``cagrad``            Conflict-Averse Gradient descent
``imtl``              Impartial Multi-Task Learning
``rlw``               Random Loss Weighting
``nashmtl``           Nash-MTL bargaining
``mocograd``          MoCoGrad (in :mod:`repro.core`)
====================  =======================================

STL (single-task learning) is not a balancer — use
:class:`repro.training.STLTrainer`.
"""

from ..core.mocograd import MoCoGrad
from .cagrad import CAGrad
from .dwa import DWA
from .equal import EqualWeighting
from .graddrop import GradDrop
from .gradnorm import GradNorm
from .gradvac import GradVac, gradvac_coefficient
from .imtl import IMTL
from .mgda import MGDA, min_norm_point
from .nashmtl import NashMTL, solve_nash_weights
from .pcgrad import PCGrad, project_conflicting
from .rlw import RLW
from .uncertainty import UncertaintyWeighting

__all__ = [
    "EqualWeighting",
    "DWA",
    "MGDA",
    "min_norm_point",
    "PCGrad",
    "project_conflicting",
    "GradDrop",
    "GradNorm",
    "GradVac",
    "gradvac_coefficient",
    "CAGrad",
    "IMTL",
    "RLW",
    "NashMTL",
    "solve_nash_weights",
    "MoCoGrad",
    "UncertaintyWeighting",
]
