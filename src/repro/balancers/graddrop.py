"""GradDrop — Gradient Sign Dropout (Chen et al., NeurIPS 2020).

Per coordinate, compute the positive-sign purity

    P = 0.5 · (1 + Σ_k g_k / Σ_k |g_k|) ∈ [0, 1]

then sample one sign per coordinate: with probability P keep only positive
task contributions, otherwise keep only negative ones.  Coordinates where
all tasks agree are untouched; contested coordinates are resolved
probabilistically in proportion to the gradient mass on each side.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["GradDrop"]

_EPS = 1e-12


@register_balancer("graddrop")
class GradDrop(GradientBalancer):
    """Probabilistic sign-consistency masking of task gradients.

    ``leak`` ∈ [0, 1] blends the masked gradient with the raw sum
    (0 = pure GradDrop, 1 = equal weighting), matching the leak parameter
    of the original paper.
    """

    def __init__(self, leak: float = 0.0, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= leak <= 1.0:
            raise ValueError("leak must be in [0, 1]")
        self.leak = leak

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        total = grads.sum(axis=0)
        mass = np.abs(grads).sum(axis=0)
        purity = 0.5 * (1.0 + total / np.maximum(mass, _EPS))
        keep_positive = self.rng.random(grads.shape[1]) < purity
        positive_part = np.where(grads > 0, grads, 0.0).sum(axis=0)
        negative_part = np.where(grads < 0, grads, 0.0).sum(axis=0)
        masked = np.where(keep_positive, positive_part, negative_part)
        if self.leak > 0.0:
            masked = self.leak * total + (1.0 - self.leak) * masked
        return masked
