"""Equal weighting — plain joint training (the unmodified MTL baseline).

Summing per-task gradients is exactly what back-propagating the summed loss
of Eq. (1) does.  Every gradient-manipulation method in the paper is a
modification of this update; it is also the "MTL" model used when measuring
TCI in Section III.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["EqualWeighting"]


@register_balancer("equal")
class EqualWeighting(GradientBalancer):
    """``g = Σ_k g_k`` — vanilla multi-task gradient descent."""

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        return grads.sum(axis=0)
