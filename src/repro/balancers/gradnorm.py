"""GradNorm — Gradient Normalization (Chen et al., ICML 2018).

Cited by the paper as one of the gradient-based MTL family ([44]); included
here as an extension baseline beyond the ten compared methods.

GradNorm learns positive loss weights ``w_k`` so every task's *weighted*
gradient norm tracks a common target that favours slower-training tasks:

    target_k = mean_norm · r_k^α,
    r_k = (L_k / L_k(0)) / mean_j(L_j / L_j(0))   (inverse training rate)

The weights descend the L1 gap |‖w_k g_k‖ − target_k| and are renormalized
to sum to K each step (the original paper's protocol).  ``α`` controls the
strength of the asymmetry; the original paper uses α ∈ [0.12, 3].
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["GradNorm"]

_EPS = 1e-12


@register_balancer("gradnorm")
class GradNorm(GradientBalancer):
    """Adaptive loss weighting via gradient-norm balancing."""

    def __init__(self, alpha: float = 1.5, weight_lr: float = 0.025, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if alpha < 0:
            raise ValueError("alpha must be ≥ 0")
        if weight_lr <= 0:
            raise ValueError("weight_lr must be positive")
        self.alpha = alpha
        self.weight_lr = weight_lr
        self._weights: np.ndarray | None = None
        self._initial_losses: np.ndarray | None = None

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._weights = np.ones(num_tasks)
        self._initial_losses = None

    @property
    def weights(self) -> np.ndarray | None:
        """Current loss weights (sum to K)."""
        return self._weights

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, losses = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        if self._weights is None or self._weights.size != num_tasks:
            self._weights = np.ones(num_tasks)
        if self._initial_losses is None:
            self._initial_losses = np.maximum(losses.copy(), _EPS)

        norms = np.linalg.norm(grads, axis=1)
        weighted_norms = self._weights * norms
        mean_norm = weighted_norms.mean()
        progress = losses / self._initial_losses
        inverse_rate = progress / max(progress.mean(), _EPS)
        targets = mean_norm * inverse_rate**self.alpha
        # ∂/∂w_k |w_k‖g_k‖ − target_k| = sign(…)·‖g_k‖ (targets detached).
        weight_grad = np.sign(weighted_norms - targets) * norms
        self._weights = self._weights - self.weight_lr * weight_grad
        self._weights = np.maximum(self._weights, _EPS)
        self._weights *= num_tasks / self._weights.sum()
        return self._weights @ grads
