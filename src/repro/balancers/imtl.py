"""IMTL — Impartial Multi-Task Learning (Liu et al., ICLR 2021), IMTL-G.

Finds combination weights α (Σα = 1) such that the aggregated gradient has
*equal projections* onto every task's unit gradient:

    g = Σ_k α_k g_k   with   gᵀ u_i = gᵀ u_j  ∀ i, j,   u_k = g_k/‖g_k‖.

Closed form (original paper, Eq. 6): with D the matrix of rows (g₁ − g_k)
and U the matrix of rows (u₁ − u_k) for k = 2..K,

    α_{2:K} = g₁ Uᵀ (D Uᵀ)⁻¹,     α₁ = 1 − Σ_{k≥2} α_k.

The loss-balance part (IMTL-L) scales each task loss by a learned e^{s_k};
here it is an optional exponentiated-gradient update on s maintained inside
the balancer (``use_loss_balance=True`` gives the hybrid IMTL the paper's
experiments use).
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["IMTL"]

_EPS = 1e-12


@register_balancer("imtl")
class IMTL(GradientBalancer):
    """Impartial gradient (and optional loss) balancing."""

    def __init__(
        self,
        use_loss_balance: bool = True,
        loss_lr: float = 0.1,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self.use_loss_balance = use_loss_balance
        self.loss_lr = loss_lr
        self._log_scale: np.ndarray | None = None

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._log_scale = np.zeros(num_tasks)

    def loss_scales(self) -> np.ndarray:
        """Current IMTL-L loss scales ``e^{s_k}``."""
        if self._log_scale is None:
            raise RuntimeError("balancer not reset yet")
        return np.exp(self._log_scale)

    def _imtl_g_weights(self, grads: np.ndarray) -> np.ndarray:
        num_tasks = grads.shape[0]
        if num_tasks == 1:
            return np.ones(1)
        norms = np.maximum(np.linalg.norm(grads, axis=1), _EPS)
        units = grads / norms[:, None]
        d_matrix = grads[0][None, :] - grads[1:]  # (K-1, d), rows g₁−g_k
        u_matrix = units[0][None, :] - units[1:]  # (K-1, d), rows u₁−u_k
        # Equal-projection condition: Σ_k α_k (g₁−g_k)·(u₁−u_j) = g₁·(u₁−u_j)
        # for j = 2..K ⇒ (U Dᵀ) α_rest = U g₁.
        lhs = u_matrix @ d_matrix.T  # (K-1, K-1)
        rhs = u_matrix @ grads[0]  # (K-1,)
        try:
            alpha_rest = np.linalg.solve(lhs, rhs)
        except np.linalg.LinAlgError:
            alpha_rest, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
        alpha = np.empty(num_tasks)
        alpha[1:] = alpha_rest
        alpha[0] = 1.0 - alpha_rest.sum()
        # Degenerate gradient sets (zero / duplicated directions) make the
        # system singular; fall back to impartial uniform weights.
        if not np.all(np.isfinite(alpha)) or np.abs(alpha).max() > 1e6:
            alpha = np.full(num_tasks, 1.0 / num_tasks)
        return alpha

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, losses = self._check_inputs(grads, losses)
        if self.use_loss_balance:
            if self._log_scale is None or self._log_scale.size != grads.shape[0]:
                self._log_scale = np.zeros(grads.shape[0])
            scales = np.exp(self._log_scale)
            # d/ds_k of (e^{s_k} L_k − s_k) = e^{s_k} L_k − 1: push every
            # scaled loss toward 1 so all tasks live on a comparable scale.
            scale_grad = scales * losses - 1.0
            self._log_scale -= self.loss_lr * scale_grad
            grads = grads * scales[:, None]
        alpha = self._imtl_g_weights(grads)
        return alpha @ grads
