"""GradVac — Gradient Vaccine (Wang et al., ICLR 2021).

Rather than only fixing *negative* cosine similarity (PCGrad), GradVac sets
an *adaptive* similarity target φ̂_ij per task pair, tracked as an EMA of the
observed similarity.  Whenever the current similarity falls below the
target, g_i is pulled toward g_j with the Law-of-Sines coefficient (the
MoCoGrad paper's Eq. 7):

    α = ‖g_i‖ (φ̂ √(1−φ²) − φ √(1−φ̂²)) / (‖g_j‖ √(1−φ̂²)),
    g_i' = g_i + α g_j

which makes the manipulated gradient's similarity to g_j exactly φ̂.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer
from ..core.conflict import cosine_similarity

__all__ = ["GradVac", "gradvac_coefficient"]

_EPS = 1e-12


def gradvac_coefficient(
    norm_i: float, norm_j: float, cos_current: float, cos_target: float
) -> float:
    """The α of Eq. (7) aligning g_i to similarity ``cos_target`` with g_j."""
    sin_target = np.sqrt(max(1.0 - cos_target**2, 0.0))
    if sin_target < _EPS or norm_j < _EPS:
        return 0.0
    sin_current = np.sqrt(max(1.0 - cos_current**2, 0.0))
    numerator = norm_i * (cos_target * sin_current - cos_current * sin_target)
    return float(numerator / (norm_j * sin_target))


@register_balancer("gradvac")
class GradVac(GradientBalancer):
    """Adaptive gradient-similarity vaccination.

    ``ema_beta`` is the update rate of the per-pair similarity targets
    (the original paper's β; it uses 1e-2 for stability, larger values adapt
    faster on short synthetic runs).
    """

    def __init__(self, ema_beta: float = 0.01, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 < ema_beta <= 1.0:
            raise ValueError("ema_beta must be in (0, 1]")
        self.ema_beta = ema_beta
        self._targets: np.ndarray | None = None

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._targets = np.zeros((num_tasks, num_tasks))

    @property
    def similarity_targets(self) -> np.ndarray | None:
        """Current per-pair EMA similarity targets φ̂ (``(K, K)``)."""
        return self._targets

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        if self._targets is None or self._targets.shape[0] != num_tasks:
            self._targets = np.zeros((num_tasks, num_tasks))
        adjusted = grads.copy()
        for i in range(num_tasks):
            partners = [j for j in range(num_tasks) if j != i]
            self.rng.shuffle(partners)
            for j in partners:
                cos_current = cosine_similarity(adjusted[i], grads[j])
                cos_target = self._targets[i, j]
                if cos_current < cos_target:
                    alpha = gradvac_coefficient(
                        float(np.linalg.norm(adjusted[i])),
                        float(np.linalg.norm(grads[j])),
                        cos_current,
                        cos_target,
                    )
                    adjusted[i] = adjusted[i] + alpha * grads[j]
                self._targets[i, j] = (
                    1.0 - self.ema_beta
                ) * cos_target + self.ema_beta * cos_current
        return adjusted.sum(axis=0)
