"""GradVac — Gradient Vaccine (Wang et al., ICLR 2021).

Rather than only fixing *negative* cosine similarity (PCGrad), GradVac sets
an *adaptive* similarity target φ̂_ij per task pair, tracked as an EMA of the
observed similarity.  Whenever the current similarity falls below the
target, g_i is pulled toward g_j with the Law-of-Sines coefficient (the
MoCoGrad paper's Eq. 7):

    α = ‖g_i‖ (φ̂ √(1−φ²) − φ √(1−φ̂²)) / (‖g_j‖ √(1−φ̂²)),
    g_i' = g_i + α g_j

which makes the manipulated gradient's similarity to g_j exactly φ̂.

Kernels: like PCGrad the surgery is order-dependent (each pull changes
the running g_i' whose cosine gates later pulls), so the fast path
(``pairwise_mode="vectorized"``, default) keeps the partner loop but
feeds it from the shared :class:`~repro.core.gradstats.GradStats` cache:
partner norms come from the cached row reduction, and the running
``⟨g_i', g_l⟩`` row and ``‖g_i'‖²`` update incrementally in O(K) per pull
(``g_i' += α g_j`` ⇒ ``dots += α·Gram[j]``,
``‖g_i'‖² += 2α·⟨g_i', g_j⟩ + α²·‖g_j‖²``) instead of re-running d-length
norm/dot kernels per pair.  The accumulated pull coefficients are applied
at the end as one ``(K, K) @ (K, d)`` GEMM.  ``pairwise_mode="loop"``
keeps the original reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..core.balancer import GradientBalancer, register_balancer
from ..core.conflict import _cosine_pair

__all__ = ["GradVac", "gradvac_coefficient"]

_EPS = 1e-12


def gradvac_coefficient(
    norm_i: float, norm_j: float, cos_current: float, cos_target: float
) -> float:
    """The α of Eq. (7) aligning g_i to similarity ``cos_target`` with g_j."""
    sin_target = np.sqrt(max(1.0 - cos_target**2, 0.0))
    if sin_target < _EPS or norm_j < _EPS:
        return 0.0
    sin_current = np.sqrt(max(1.0 - cos_current**2, 0.0))
    numerator = norm_i * (cos_target * sin_current - cos_current * sin_target)
    return float(numerator / (norm_j * sin_target))


@register_balancer("gradvac")
class GradVac(GradientBalancer):
    """Adaptive gradient-similarity vaccination.

    ``ema_beta`` is the update rate of the per-pair similarity targets
    (the original paper's β; it uses 1e-2 for stability, larger values adapt
    faster on short synthetic runs).
    """

    def __init__(
        self,
        ema_beta: float = 0.01,
        pairwise_mode: str = "vectorized",
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed, pairwise_mode=pairwise_mode)
        if not 0.0 < ema_beta <= 1.0:
            raise ValueError("ema_beta must be in (0, 1]")
        self.ema_beta = ema_beta
        self._targets: np.ndarray | None = None

    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._targets = np.zeros((num_tasks, num_tasks))

    @property
    def similarity_targets(self) -> np.ndarray | None:
        """Current per-pair EMA similarity targets φ̂ (``(K, K)``)."""
        return self._targets

    def _check_targets(self, num_tasks: int) -> np.ndarray:
        """The EMA target matrix, validated against the task count.

        A mismatched matrix used to be silently zero-reset here, throwing
        away the similarity history mid-run without any signal; like
        MoCoGrad's momentum state, a mismatch now raises and the caller
        decides (``reset()`` is the recovery path).
        """
        if self._targets is None:
            self._targets = np.zeros((num_tasks, num_tasks))
        elif self._targets.shape != (num_tasks, num_tasks):
            self.telemetry.counter("gradvac_targets_shape_mismatch_total").inc()
            raise ValueError(
                f"similarity-target matrix has shape {self._targets.shape} but the "
                f"step has {num_tasks} tasks; the task count changed mid-run — "
                "call reset() to start a fresh EMA history"
            )
        return self._targets

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        targets = self._check_targets(num_tasks)

        if not self._use_vectorized(num_tasks):
            adjusted = grads.copy()
            for i in range(num_tasks):
                partners = [j for j in range(num_tasks) if j != i]
                self.rng.shuffle(partners)
                for j in partners:
                    cos_current = _cosine_pair(adjusted[i], grads[j])
                    cos_target = targets[i, j]
                    if cos_current < cos_target:
                        alpha = gradvac_coefficient(
                            float(np.linalg.norm(adjusted[i])),
                            float(np.linalg.norm(grads[j])),
                            cos_current,
                            cos_target,
                        )
                        adjusted[i] = adjusted[i] + alpha * grads[j]
                    targets[i, j] = (
                        1.0 - self.ema_beta
                    ) * cos_target + self.ema_beta * cos_current
            return adjusted.sum(axis=0)

        stats = self.gradstats
        gram = stats.gram
        norms = stats.norms
        coef = np.zeros((num_tasks, num_tasks))
        pulled_any = False
        for i in range(num_tasks):
            partners = [j for j in range(num_tasks) if j != i]
            self.rng.shuffle(partners)
            dots = gram[i].copy()  # ⟨g_i', g_l⟩ for the running g_i'
            norm_sq_i = gram[i, i]  # ‖g_i'‖²
            for j in partners:
                norm_i = float(np.sqrt(max(norm_sq_i, 0.0)))
                if norm_i < _EPS or norms[j] < _EPS:
                    cos_current = 0.0
                else:
                    cos_current = float(dots[j] / (norm_i * norms[j]))
                cos_target = targets[i, j]
                if cos_current < cos_target:
                    alpha = gradvac_coefficient(norm_i, float(norms[j]), cos_current, cos_target)
                    coef[i, j] = alpha
                    norm_sq_i += 2.0 * alpha * dots[j] + alpha * alpha * gram[j, j]
                    dots += alpha * gram[j]
                    pulled_any = True
                targets[i, j] = (1.0 - self.ema_beta) * cos_target + self.ema_beta * cos_current
        if not pulled_any:
            return grads.sum(axis=0)
        adjusted = grads + coef @ grads
        return adjusted.sum(axis=0)
