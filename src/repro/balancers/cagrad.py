"""CAGrad — Conflict-Averse Gradient descent (Liu et al., NeurIPS 2021).

Searches for an update d near the average gradient g₀ that maximizes the
worst-case local improvement across tasks:

    max_d min_k ⟨g_k, d⟩   s.t.  ‖d − g₀‖ ≤ c‖g₀‖.

Its dual reduces to a problem over simplex weights w (g_w = Σ w_k g_k):

    min_w  ⟨g_w, g₀⟩ + √φ · ‖g_w‖,   φ = c²‖g₀‖²,

solved here with SLSQP over the simplex using the Gram matrix — read from
the shared per-step :class:`~repro.core.gradstats.GradStats` cache rather
than recomputed, so the same GEMM feeds the base class's conflict
telemetry and this solve.  The final
update is  d = g₀ + (√φ / ‖g_w‖) · g_w,  optionally rescaled by 1/(1+c²)
as in the reference implementation.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..core.balancer import GradientBalancer, register_balancer

__all__ = ["CAGrad"]

_EPS = 1e-12


@register_balancer("cagrad")
class CAGrad(GradientBalancer):
    """Conflict-averse gradient combination.

    Parameters
    ----------
    c:
        Radius parameter ∈ (0, 1); the reference default is 0.4/0.5.
    rescale:
        If True, divide the update by (1 + c²) as in the authors' code so
        the step magnitude is comparable to plain averaging.
    """

    def __init__(self, c: float = 0.5, rescale: bool = True, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 < c < 1.0:
            raise ValueError("c must be in (0, 1)")
        self.c = c
        self.rescale = rescale

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        grads, _ = self._check_inputs(grads, losses)
        num_tasks = grads.shape[0]
        average = grads.mean(axis=0)
        gram = self.gradstats.gram
        avg_dot = gram.mean(axis=0)  # ⟨g_k, g₀⟩ for each k
        phi = self.c**2 * float(average @ average)
        sqrt_phi = np.sqrt(max(phi, 0.0))

        def objective(w: np.ndarray) -> float:
            gw_norm_sq = float(w @ gram @ w)
            return float(w @ avg_dot) + sqrt_phi * np.sqrt(max(gw_norm_sq, _EPS))

        w0 = np.full(num_tasks, 1.0 / num_tasks)
        constraints = {"type": "eq", "fun": lambda w: w.sum() - 1.0}
        bounds = [(0.0, 1.0)] * num_tasks
        result = minimize(
            objective,
            w0,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 60, "ftol": 1e-10},
        )
        weights = result.x if result.success else w0
        weights = np.clip(weights, 0.0, None)
        total = weights.sum()
        weights = weights / total if total > 0 else w0

        gw = weights @ grads
        gw_norm = float(np.linalg.norm(gw))
        if gw_norm < _EPS or sqrt_phi == 0.0:
            update = average
        else:
            update = average + (sqrt_phi / gw_norm) * gw
        if self.rescale:
            update = update / (1.0 + self.c**2)
        return update
