"""Streaming shard pipeline: chunked generation with bounded memory.

The eager generators materialize every row up front, so epoch memory grows
linearly with dataset size — fine at reproduction scale, fatal at the
~100M-row scale of the real AliExpress logs.  This module is the
streaming counterpart:

- :class:`ChunkedSource` — a generator that produces fixed-size *chunks*
  (shards) on demand.  Shard ``i`` is a pure function of
  ``(seed, shard_index)`` via :func:`~repro.data.base.shard_rng`, so any
  consumer — the sequential loader, a prefetch thread, a data-parallel
  worker, a warm cache — reconstructs identical bytes independently.
- :class:`StreamingDataset` — the dataset view over a source: global-index
  ``batch()`` access through a tiny shard LRU, an optional
  :class:`~repro.data.shardcache.ShardCache` (write-once ``np.memmap``
  files), and :meth:`~StreamingDataset.materialize`, the **eager oracle**:
  the concatenation of all shards as a plain
  :class:`~repro.data.base.ArrayDataset`.  Streaming and eager paths walk
  bit-identical rows by construction.
- :class:`ShardPrefetcher` — the double buffer: a background thread
  generates shard ``i+1`` while the trainer consumes shard ``i``, hiding
  generation latency behind compute.  Instrumented with
  :mod:`repro.obs` spans (``prefetch_shard`` on the producer thread,
  ``shard_wait`` on the consumer) so the overlap is visible in the
  Chrome trace.
- :class:`StreamingLoader` — bounded-memory epoch iteration: shard order
  and within-shard batch order are shuffled from one seeded generator,
  consuming the *same* RNG draws as
  :meth:`StreamingDataset.batch_indices` — which is how the parallel
  trainer's sharded runs stay on the sequential batch stream.

Ordering contract: batches never cross shard boundaries (each shard's
trailing ``shard_len % batch_size`` rows form a partial batch unless
``drop_last``), so one live shard bounds the working set.  The eager
oracle for equivalence tests is the *same* loader over
:func:`as_stream` of the materialized arrays — identical index draws,
identical batches, different storage.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict
from typing import Callable, Iterator, Mapping

import numpy as np

from ..obs import NULL_TELEMETRY
from .base import (
    DEFAULT_DATA_SEED,
    ArrayDataset,
    batch_count,
    batch_index_iter,
    shard_rng,
)

__all__ = [
    "ChunkedSource",
    "EagerSource",
    "StreamingDataset",
    "StreamingLoader",
    "ShardPrefetcher",
    "as_stream",
    "num_shards",
    "shard_row_range",
    "shard_batch_index_iter",
    "streaming_batch_count",
]

#: Shards a :class:`StreamingDataset` keeps materialized for global-index
#: ``batch()`` access.  Two covers the dominant access patterns: repeated
#: batches within one shard (the shard-ordered stream) and an eval pass
#: straddling one shard boundary.
_SHARD_LRU_CAPACITY = 2


def num_shards(total_rows: int, chunk_size: int) -> int:
    """Shard count for ``total_rows`` rows in ``chunk_size`` chunks.

    The last shard holds the ``total_rows % chunk_size`` remainder (a
    *partial shard* — every consumer must handle it; see the regression
    tests in ``tests/data/test_streaming.py``).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1; got {chunk_size}")
    if total_rows < 0:
        raise ValueError(f"total_rows must be ≥ 0; got {total_rows}")
    return -(-total_rows // chunk_size)


def shard_row_range(total_rows: int, chunk_size: int, index: int) -> tuple[int, int]:
    """Global row interval ``[start, stop)`` of shard ``index``."""
    shards = num_shards(total_rows, chunk_size)
    if not 0 <= index < max(shards, 1):
        raise IndexError(f"shard index {index} out of range for {shards} shards")
    start = index * chunk_size
    return start, min(start + chunk_size, total_rows)


def streaming_batch_count(
    total_rows: int, chunk_size: int, batch_size: int, drop_last: bool = False
) -> int:
    """Batches one epoch of the shard-ordered stream yields.

    Batches never cross shard boundaries, so the count is per-shard —
    NOT ``ceil(total/batch)``: a 960-row dataset in 400-row chunks at
    batch 128 yields ``4+4+2`` batches, not 8.  With ``drop_last`` each
    shard's trailing partial batch is dropped (a shard smaller than the
    batch size then contributes zero batches).
    """
    count = 0
    for index in range(num_shards(total_rows, chunk_size)):
        start, stop = shard_row_range(total_rows, chunk_size, index)
        count += batch_count(stop - start, batch_size, drop_last)
    return count


def shard_batch_index_iter(
    total_rows: int,
    chunk_size: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(shard_index, within-shard positions)`` batches.

    The bounded-memory index stream behind :class:`StreamingLoader` and
    :meth:`StreamingDataset.batch_indices`: shard order is one
    permutation draw, then each shard's rows are batched with
    :func:`~repro.data.base.batch_index_iter` — O(chunk_size) live index
    memory instead of the eager loader's O(n) permutation.  Both
    consumers share this exact generator-call sequence, so sequential
    streaming and data-parallel runs at equal seeds walk identical
    batches.
    """
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_DATA_SEED)
    shards = num_shards(total_rows, chunk_size)
    order = np.arange(shards)
    if shuffle:
        rng.shuffle(order)
    for index in order:
        start, stop = shard_row_range(total_rows, chunk_size, int(index))
        for positions in batch_index_iter(
            stop - start, batch_size, rng=rng, shuffle=shuffle, drop_last=drop_last
        ):
            yield int(index), positions


# ----------------------------------------------------------------------
# Structure helpers: (inputs, targets) trees of ndarray / tuple / dict
# ----------------------------------------------------------------------
def _tree_index(struct, idx: np.ndarray):
    """Row-index an inputs/targets structure (fancy indexing copies)."""
    if isinstance(struct, tuple):
        return tuple(np.asarray(part)[idx] for part in struct)
    if isinstance(struct, Mapping):
        return {name: np.asarray(part)[idx] for name, part in struct.items()}
    return np.asarray(struct)[idx]


def _tree_concat(parts: list):
    """Concatenate a list of same-shaped structures along the row axis."""
    head = parts[0]
    if isinstance(head, tuple):
        return tuple(
            np.concatenate([part[i] for part in parts], axis=0)
            for i in range(len(head))
        )
    if isinstance(head, Mapping):
        return {
            name: np.concatenate([part[name] for part in parts], axis=0)
            for name in head
        }
    return np.concatenate(parts, axis=0)


def _tree_rows(struct) -> int:
    """Row count of an inputs/targets structure."""
    if isinstance(struct, tuple):
        return len(struct[0])
    if isinstance(struct, Mapping):
        return len(next(iter(struct.values())))
    return len(struct)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class ChunkedSource:
    """A dataset generator that produces fixed-size chunks on demand.

    Subclasses set ``total_rows``, ``chunk_size`` and ``seed`` (the shard
    stream seed) and implement :meth:`generate_chunk`, which must be a
    *pure function* of ``(self.seed, index)`` — typically by drawing every
    random value from ``shard_rng(self.seed, index)``.  World-level state
    (latent tables, task directions) is computed in ``__init__`` from the
    seed alone, so a pickled source regenerates identical shards in any
    process (the data-parallel workers rely on this).

    ``cache_key()`` returns a string identifying the generated
    *distribution* (generator name + every parameter that changes the
    bytes) for the mmap shard cache, or ``None`` to opt out of caching.
    """

    total_rows: int
    chunk_size: int
    seed: int

    @property
    def num_shards(self) -> int:
        """Total shard count for this source."""
        return num_shards(self.total_rows, self.chunk_size)

    def shard_range(self, index: int) -> tuple[int, int]:
        """Global row interval ``[start, stop)`` of shard ``index``."""
        return shard_row_range(self.total_rows, self.chunk_size, index)

    def shard_length(self, index: int) -> int:
        """Row count of shard ``index`` (< chunk_size only for the last)."""
        start, stop = self.shard_range(index)
        return stop - start

    def generate_chunk(self, index: int):
        """Return ``(inputs, targets)`` for shard ``index`` (pure)."""
        raise NotImplementedError

    def cache_key(self) -> str | None:
        """Distribution identity for the mmap cache; ``None`` = don't cache."""
        return None

    def shard_generator(self, index: int) -> np.random.Generator:
        """The per-shard RNG: ``shard_rng(self.seed, index)``."""
        return shard_rng(self.seed, index)


class EagerSource(ChunkedSource):
    """Chunk view over an in-memory :class:`ArrayDataset`.

    The eager fallback for generators without a chunked core (the
    image-like datasets) and the oracle adapter for equivalence tests:
    any materialized dataset streams through the same loader/prefetcher
    machinery by slicing rows.  Never cached — the data already lives in
    memory.
    """

    def __init__(self, dataset: ArrayDataset, chunk_size: int, seed: int = 0) -> None:
        self.dataset = dataset
        self.total_rows = len(dataset)
        self.chunk_size = int(chunk_size)
        self.seed = int(seed)
        num_shards(self.total_rows, self.chunk_size)  # validates chunk_size

    def generate_chunk(self, index: int):
        """Slice shard ``index`` out of the wrapped in-memory dataset."""
        start, stop = self.shard_range(index)
        return self.dataset.batch(np.arange(start, stop))


def as_stream(
    dataset: ArrayDataset, chunk_size: int, **kwargs
) -> "StreamingDataset":
    """Wrap an eager dataset as a :class:`StreamingDataset` (oracle view)."""
    return StreamingDataset(EagerSource(dataset, chunk_size), **kwargs)


# ----------------------------------------------------------------------
# Dataset
# ----------------------------------------------------------------------
class StreamingDataset:
    """Dataset view over a :class:`ChunkedSource` with caching and LRU.

    Duck-types the :class:`ArrayDataset` surface the trainer and the
    data-parallel workers touch (``__len__``, ``batch``), plus the
    shard-level API the streaming loader and prefetcher consume.

    Parameters
    ----------
    source:
        The chunk generator.
    cache:
        Optional :class:`~repro.data.shardcache.ShardCache`; generated
        shards are written once per ``(cache_key, seed, shard)`` and
        memory-mapped on every later load, so repeated epochs and
        repeated benchmark runs pay generation cost once.  Ignored when
        the source opts out (``cache_key() is None``).
    prefetch_depth:
        Shards the background prefetcher may hold ready ahead of the
        consumer (``1`` = classic double buffering, the default).  ``0``
        disables the prefetch thread — shards generate synchronously on
        the consumer thread.
    telemetry:
        Default :class:`repro.obs.Telemetry` for cache/generation
        instrumentation; the trainer's loader overrides it per-fit.
        Dropped on pickling (workers count into their own sinks).
    """

    def __init__(
        self,
        source: ChunkedSource,
        cache=None,
        prefetch_depth: int = 1,
        telemetry=None,
    ) -> None:
        if prefetch_depth < 0:
            raise ValueError(f"prefetch_depth must be ≥ 0; got {prefetch_depth}")
        self.source = source
        self.cache = cache
        self.prefetch_depth = int(prefetch_depth)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._lru: OrderedDict[int, tuple] = OrderedDict()

    # -- pickling: telemetry and the LRU are process-local ---------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["telemetry"] = None
        state["_lru"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.telemetry = NULL_TELEMETRY
        self._lru = OrderedDict()

    # -- sizes -----------------------------------------------------------
    def __len__(self) -> int:
        return self.source.total_rows

    @property
    def chunk_size(self) -> int:
        """Rows per shard (the last shard may be shorter)."""
        return self.source.chunk_size

    @property
    def num_shards(self) -> int:
        """Total shard count of the underlying source."""
        return self.source.num_shards

    def shard_length(self, index: int) -> int:
        """Row count of shard ``index``."""
        return self.source.shard_length(index)

    # -- shard access ----------------------------------------------------
    def load_shard(self, index: int, telemetry=None):
        """Load shard ``index``: cache hit → mmap, miss → generate + store.

        Returns the raw ``(inputs, targets)`` pair.  Cache traffic is
        counted as ``stream_cache_{hits,misses}_total``; generation runs
        under a ``shard_generate`` span so the Chrome trace shows where
        shards come from.
        """
        telemetry = telemetry if telemetry is not None else self.telemetry
        expected = self.shard_length(index)
        key = self.source.cache_key() if self.cache is not None else None
        if key is not None:
            cached = self.cache.load(key, self.source.seed, index)
            if cached is not None and _tree_rows(cached[0]) == expected:
                telemetry.counter("stream_cache_hits_total").inc()
                return cached
            if cached is not None:
                # Structurally valid file, wrong row count: a mis-keyed or
                # under-specified cache entry.  Never trust it — drop and
                # regenerate through the validated path below.
                self.cache.discard(key, self.source.seed, index)
            telemetry.counter("stream_cache_misses_total").inc()
        with telemetry.span("shard_generate", shard=index):
            inputs, targets = self.source.generate_chunk(index)
        rows = _tree_rows(inputs)
        if rows != expected:
            raise ValueError(
                f"source {type(self.source).__name__} generated {rows} rows for "
                f"shard {index}, expected {expected}"
            )
        if key is not None:
            self.cache.store(key, self.source.seed, index, inputs, targets)
        return inputs, targets

    def shard(self, index: int, telemetry=None):
        """LRU-cached :meth:`load_shard` (capacity {cap})."""
        hit = self._lru.get(index)
        if hit is not None:
            self._lru.move_to_end(index)
            return hit
        data = self.load_shard(index, telemetry=telemetry)
        self._lru[index] = data
        if len(self._lru) > _SHARD_LRU_CAPACITY:
            self._lru.popitem(last=False)
        return data

    if shard.__doc__:  # stripped under python -OO
        shard.__doc__ = shard.__doc__.format(cap=_SHARD_LRU_CAPACITY)

    # -- ArrayDataset-compatible surface --------------------------------
    def batch(self, idx: np.ndarray):
        """``(inputs[idx], targets[idx])`` by global row positions.

        Positions are grouped by shard; each touched shard is loaded once
        through the LRU.  Row order of ``idx`` is preserved exactly, so
        this is a drop-in for :meth:`ArrayDataset.batch` — the
        data-parallel workers call it with their contiguous slice of the
        step's batch.
        """
        idx = np.asarray(idx)
        if idx.size == 0:
            raise ValueError("batch requires at least one index")
        shard_ids = idx // self.chunk_size
        unique = np.unique(shard_ids)
        if unique.size == 1:
            inputs, targets = self.shard(int(unique[0]))
            rel = idx - int(unique[0]) * self.chunk_size
            return _tree_index(inputs, rel), _tree_index(targets, rel)
        # Stable-sort positions by shard, gather per shard, then restore
        # the caller's row order with one inverse permutation.
        order = np.argsort(shard_ids, kind="stable")
        inputs_parts, targets_parts = [], []
        for shard_id in unique:
            members = order[shard_ids[order] == shard_id]
            inputs, targets = self.shard(int(shard_id))
            rel = idx[members] - int(shard_id) * self.chunk_size
            inputs_parts.append(_tree_index(inputs, rel))
            targets_parts.append(_tree_index(targets, rel))
        inverse = np.empty(idx.size, dtype=np.int64)
        inverse[order] = np.arange(idx.size)
        return (
            _tree_index(_tree_concat(inputs_parts), inverse),
            _tree_index(_tree_concat(targets_parts), inverse),
        )

    def materialize(self) -> ArrayDataset:
        """The eager oracle: all shards concatenated, in shard order.

        Streaming row ``i`` and ``materialize()`` row ``i`` are identical
        bytes — the equivalence suites compare streaming runs against
        loaders over this dataset.
        """
        if self.num_shards == 0:
            raise ValueError("cannot materialize an empty stream")
        inputs_parts, targets_parts = [], []
        for index in range(self.num_shards):
            inputs, targets = self.load_shard(index)
            inputs_parts.append(inputs)
            targets_parts.append(targets)
        return ArrayDataset(_tree_concat(inputs_parts), _tree_concat(targets_parts))

    # -- index stream for the parallel trainer --------------------------
    def batch_indices(
        self,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> Iterator[np.ndarray]:
        """Global-position batch arrays on the shard-ordered stream.

        Consumes the exact RNG draws of :class:`StreamingLoader`'s epoch,
        so a parallel run dispatching these indices and a sequential
        streaming run at the same seed train on identical batches.
        """
        for index, positions in shard_batch_index_iter(
            self.source.total_rows,
            self.chunk_size,
            batch_size,
            rng=rng,
            shuffle=shuffle,
            drop_last=drop_last,
        ):
            yield index * self.chunk_size + positions


# ----------------------------------------------------------------------
# Prefetcher
# ----------------------------------------------------------------------
_SHARD, _DONE, _ERROR = "shard", "done", "error"


class ShardPrefetcher:
    """Double-buffered background shard loading.

    A daemon thread walks ``order`` calling ``load`` (under a
    ``prefetch_shard`` span on its own thread-local span stack) and
    parks results in a bounded queue; with ``depth=1`` the producer is
    always at most one shard ahead — generation of shard ``i+1`` overlaps
    consumption of shard ``i`` and memory stays bounded at
    ``depth + 2`` live shards (``depth`` queued, at worst one more
    finished in the producer blocked on ``put``, one in the consumer).

    Iterate to receive ``(shard_index, data)`` in order.  A queue that
    already holds the next shard counts a ``stream_prefetch_hits_total``;
    an empty queue counts a ``stream_prefetch_stalls_total`` and the wait
    is timed under a ``shard_wait`` span.  A producer exception is
    re-raised on the consumer thread at the next ``__next__`` — never
    swallowed, never masking a consumer-side exception (:meth:`close` is
    silent).  Always :meth:`close` (or exhaust) the iterator; the
    streaming loader does so in a ``finally``.
    """

    def __init__(
        self,
        load: Callable[[int], object],
        order,
        depth: int = 1,
        telemetry=None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be ≥ 1; got {depth}")
        self._load = load
        self._order = [int(index) for index in order]
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._produce, name="shard-prefetch", daemon=True
        )
        self._thread.start()

    # -- producer thread -------------------------------------------------
    def _produce(self) -> None:
        try:
            for index in self._order:
                if self._stop.is_set():
                    return
                with self._telemetry.span("prefetch_shard", shard=index):
                    data = self._load(index)
                if not self._put((_SHARD, index, data)):
                    return
            self._put((_DONE, None, None))
        except BaseException as exc:  # noqa: BLE001 — relayed to consumer
            self._put((_ERROR, None, exc))

    def _put(self, item) -> bool:
        """Park ``item``, abandoning (returns False) once stopped."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    # -- consumer side ---------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, object]]:
        try:
            while True:
                ready = not self._queue.empty()
                with self._telemetry.span("shard_wait"):
                    kind, index, payload = self._queue.get()
                if kind == _DONE:
                    return
                if kind == _ERROR:
                    raise payload
                self._telemetry.counter(
                    "stream_prefetch_hits_total"
                    if ready
                    else "stream_prefetch_stalls_total"
                ).inc()
                yield index, payload
        finally:
            self.close()

    def close(self) -> None:
        """Stop the producer and join its thread (idempotent, silent)."""
        self._stop.set()
        # Drain so a producer blocked in put() observes the stop flag.
        while self._thread.is_alive():
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            self._thread.join(timeout=0.05)
        self._thread.join()

    @property
    def closed(self) -> bool:
        """True once the producer thread has terminated."""
        return not self._thread.is_alive()


# ----------------------------------------------------------------------
# Loader
# ----------------------------------------------------------------------
class StreamingLoader:
    """Bounded-memory minibatch iterator over a :class:`StreamingDataset`.

    The streaming counterpart of :class:`~repro.data.base.DataLoader`:
    each ``iter()`` re-shuffles shard order and within-shard order from
    the loader's generator (reproducible from the seed), batches never
    cross shard boundaries, and at most ``prefetch_depth + 2`` shards are
    alive at once (see :class:`ShardPrefetcher` for the bound).  Closing semantics: the epoch iterator shuts the
    prefetch thread down in a ``finally``, so breaking out mid-epoch —
    or an exception unwinding through the consuming loop — leaks no
    thread and keeps the original exception.
    """

    def __init__(
        self,
        dataset: StreamingDataset,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int | None = None,
        telemetry=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be ≥ 1")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.telemetry = telemetry if telemetry is not None else dataset.telemetry
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng(DEFAULT_DATA_SEED if seed is None else seed)
        )

    def __len__(self) -> int:
        return streaming_batch_count(
            len(self.dataset), self.dataset.chunk_size, self.batch_size, self.drop_last
        )

    def __iter__(self) -> Iterator:
        # Same draw sequence as shard_batch_index_iter: one shard-order
        # permutation up front (the prefetcher needs the order), then each
        # shard's batch positions as it is consumed.
        order = np.arange(self.dataset.num_shards)
        if self.shuffle:
            self.rng.shuffle(order)
        prefetcher = None
        if self.dataset.prefetch_depth > 0:
            load = lambda index: self.dataset.load_shard(index, telemetry=self.telemetry)  # noqa: E731
            prefetcher = ShardPrefetcher(
                load,
                order,
                depth=self.dataset.prefetch_depth,
                telemetry=self.telemetry,
            )
            shards = iter(prefetcher)
        else:
            shards = (
                (int(index), self.dataset.load_shard(int(index), telemetry=self.telemetry))
                for index in order
            )
        try:
            for index, (inputs, targets) in shards:
                for positions in batch_index_iter(
                    self.dataset.shard_length(index),
                    self.batch_size,
                    rng=self.rng,
                    shuffle=self.shuffle,
                    drop_last=self.drop_last,
                ):
                    yield _tree_index(inputs, positions), _tree_index(targets, positions)
        finally:
            if prefetcher is not None:
                prefetcher.close()
