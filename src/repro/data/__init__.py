"""``repro.data`` — six synthetic stand-ins for the paper's benchmarks.

See DESIGN.md for the substitution rationale of each generator.
"""

from .aliexpress import COUNTRIES, make_aliexpress, make_aliexpress_suite
from .base import (
    MULTI_INPUT,
    SINGLE_INPUT,
    ArrayDataset,
    Benchmark,
    DataLoader,
    TaskSpec,
    batch_count,
    batch_index_iter,
    shard_rng,
    train_val_test_split,
)
from .cityscapes import make_cityscapes
from .latent import correlated_task_matrix, orthogonal_complement_mix, task_directions
from .movielens import GENRES, make_movielens
from .nyuv2 import make_nyuv2
from .officehome import DOMAINS, make_officehome
from .qm9 import PROPERTIES, generate_molecule, make_qm9, molecule_properties
from .shardcache import ShardCache
from .streaming import (
    ChunkedSource,
    EagerSource,
    ShardPrefetcher,
    StreamingDataset,
    StreamingLoader,
    as_stream,
    num_shards,
    shard_batch_index_iter,
    shard_row_range,
    streaming_batch_count,
)
from .streams import (
    AliExpressStream,
    MovieLensGenreStream,
    SyntheticStream,
    make_aliexpress_stream,
    make_movielens_stream,
    make_synthetic_stream,
)
from .synthetic import make_synthetic_mtl, uniform_conflict_gram

__all__ = [
    "TaskSpec",
    "ArrayDataset",
    "DataLoader",
    "Benchmark",
    "train_val_test_split",
    "batch_count",
    "batch_index_iter",
    "shard_rng",
    "SINGLE_INPUT",
    "MULTI_INPUT",
    "task_directions",
    "correlated_task_matrix",
    "orthogonal_complement_mix",
    "COUNTRIES",
    "make_aliexpress",
    "make_aliexpress_suite",
    "GENRES",
    "make_movielens",
    "PROPERTIES",
    "make_qm9",
    "generate_molecule",
    "molecule_properties",
    "make_nyuv2",
    "make_cityscapes",
    "DOMAINS",
    "make_officehome",
    "make_synthetic_mtl",
    "uniform_conflict_gram",
    "ShardCache",
    "ChunkedSource",
    "EagerSource",
    "ShardPrefetcher",
    "StreamingDataset",
    "StreamingLoader",
    "as_stream",
    "num_shards",
    "shard_batch_index_iter",
    "shard_row_range",
    "streaming_batch_count",
    "AliExpressStream",
    "MovieLensGenreStream",
    "SyntheticStream",
    "make_aliexpress_stream",
    "make_movielens_stream",
    "make_synthetic_stream",
]
