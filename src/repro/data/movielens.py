"""Synthetic MovieLens-style per-genre rating regression (Fig. 1/2, Table II).

The paper follows Hu et al. and treats rating regression for movies of each
selected genre as a separate task (9 genres ⇒ 9 tasks), trained with a
BST-style shared encoder.  Each genre has its own (user, movie) records, so
this is **multi-input** MTL.

Generator structure:

- global user and movie latent vectors;
- per-genre *taste rotations*: the rating of user u for movie m in genre g
  is ``μ_g + uᵀ R_g v + noise`` clipped to the 1–5 star range.  The
  rotations share a controlled common component (``relatedness``), which
  sets how much the genres conflict — the knob behind Fig. 1's degradation
  of task A when more genres join the run;
- behaviour sequences: each record carries the user's recent movie ids
  (biased toward movies the user rates highly), consumed by the BST
  encoder exactly as in the paper's MovieLens stack.
"""

from __future__ import annotations

import numpy as np

from ..arch.encoders import BSTEncoder
from ..arch.heads import LinearHead
from ..arch.hps import HardParameterSharing
from ..arch.mmoe import MMoE
from ..metrics.regression import mae, rmse
from ..nn.functional import mse_loss
from ..nn.tensor import Tensor
from .base import MULTI_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split

__all__ = ["GENRES", "make_movielens"]

GENRES = (
    "Crime",
    "Documentary",
    "Fantasy",
    "FilmNoir",
    "Horror",
    "Mystery",
    "Thriller",
    "War",
    "Western",
)

_LATENT_DIM = 10
_SEQ_LEN = 4


class _World:
    """Shared ground truth: users, movies, genre rotations."""

    def __init__(
        self,
        num_users: int,
        num_movies: int,
        genres: tuple[str, ...],
        relatedness: float,
        rng: np.random.Generator,
        shared_movie_pool: bool = False,
    ) -> None:
        self.num_users = num_users
        self.num_movies = num_movies
        self.genres = genres
        self.relatedness = float(relatedness)
        self.users = rng.normal(scale=1.0, size=(num_users, _LATENT_DIM))
        self.movies = rng.normal(scale=1.0, size=(num_movies, _LATENT_DIM))
        common = rng.normal(size=(_LATENT_DIM, _LATENT_DIM))
        self.rotations = {}
        self.biases = {}
        for genre in genres:
            unique = rng.normal(size=(_LATENT_DIM, _LATENT_DIM))
            blend = np.sqrt(relatedness) * common + np.sqrt(1.0 - relatedness) * unique
            # Orthogonalize so every genre's map preserves scale.
            q, _ = np.linalg.qr(blend)
            self.rotations[genre] = q
            self.biases[genre] = 3.0 + 0.4 * rng.normal()
        # Genre → movie pool: disjoint slices by default (like real genre
        # labels); a shared pool when the conflict analysis needs both
        # tasks to exercise the same embeddings (Fig. 2).
        if shared_movie_pool:
            self.pools = {genre: np.arange(num_movies) for genre in genres}
        else:
            per_genre = num_movies // len(genres)
            self.pools = {
                genre: np.arange(i * per_genre, (i + 1) * per_genre)
                for i, genre in enumerate(genres)
            }

    def rating(self, user: np.ndarray, movie: np.ndarray, genre: str, rng) -> np.ndarray:
        affinity = np.einsum(
            "nd,de,ne->n", self.users[user], self.rotations[genre], self.movies[movie]
        ) / np.sqrt(_LATENT_DIM)
        raw = self.biases[genre] + affinity + 0.3 * rng.normal(size=len(user))
        return np.clip(raw, 1.0, 5.0)

    def history(self, user: np.ndarray, rng) -> np.ndarray:
        """Recent movie ids per user, biased toward high-affinity movies."""
        histories = np.empty((len(user), _SEQ_LEN), dtype=np.int64)
        scores = self.users @ self.movies.T  # (U, M) rough global affinity
        for row, u in enumerate(user):
            probs = np.exp(0.5 * (scores[u] - scores[u].max()))
            probs /= probs.sum()
            histories[row] = rng.choice(self.num_movies, size=_SEQ_LEN, p=probs)
        return histories

    def history_block(self, user: np.ndarray, rng) -> np.ndarray:
        """Vectorized :meth:`history` (same distribution, different draws).

        One inverse-CDF sample per (row, slot) instead of a per-row
        ``rng.choice`` loop — the chunked generators call this per shard,
        where the loop would dominate generation time.
        """
        scores = self.users @ self.movies.T
        logits = 0.5 * (scores[user] - scores[user].max(axis=1, keepdims=True))
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        cdf = np.cumsum(probs, axis=1)
        draws = rng.random((len(user), _SEQ_LEN))
        histories = np.empty((len(user), _SEQ_LEN), dtype=np.int64)
        for slot in range(_SEQ_LEN):
            histories[:, slot] = (cdf >= draws[:, slot : slot + 1]).argmax(axis=1)
        return histories


def _task_specs(genres: tuple[str, ...]) -> list[TaskSpec]:
    """Per-genre MSE/RMSE/MAE regression tasks (eager + streaming)."""

    def rmse_metric(outputs: np.ndarray, targets: np.ndarray) -> float:
        return rmse(outputs, targets)

    def mae_metric(outputs: np.ndarray, targets: np.ndarray) -> float:
        return mae(outputs, targets)

    return [
        TaskSpec(
            genre,
            mse_loss,
            {"rmse": rmse_metric, "mae": mae_metric},
            {"rmse": False, "mae": False},
        )
        for genre in genres
    ]


def _model_factories(
    num_users: int,
    num_movies: int,
    embedding_dim: int,
    out_features: int,
    genres: tuple[str, ...],
    seed: int,
):
    """``(build_model, build_stl_model)`` closures (no RNG consumed here)."""

    def _encoder(model_rng: np.random.Generator) -> BSTEncoder:
        return BSTEncoder(
            num_users, num_movies, _SEQ_LEN, embedding_dim, out_features, model_rng
        )

    def _gate_input(x) -> Tensor:
        scale = np.array([num_users, num_movies] + [num_movies] * _SEQ_LEN, dtype=np.float64)
        return Tensor(np.asarray(x, dtype=np.float64) / scale)

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        heads = {genre: LinearHead(out_features, 1, model_rng) for genre in genres}
        if architecture == "hps":
            return HardParameterSharing(_encoder(model_rng), heads)
        if architecture == "mmoe":
            return MMoE(
                lambda: _encoder(model_rng),
                num_experts=3,
                heads=heads,
                gate_in_features=2 + _SEQ_LEN,
                rng=model_rng,
                gate_input_fn=_gate_input,
            )
        raise ValueError(f"movielens supports hps/mmoe; got {architecture!r}")

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        head = {task_name: LinearHead(out_features, 1, model_rng)}
        return HardParameterSharing(_encoder(model_rng), head)

    return build_model, build_stl_model


def make_movielens(
    genres: tuple[str, ...] = GENRES,
    records_per_genre: int = 600,
    num_users: int = 120,
    num_movies: int = 180,
    relatedness: float = 0.3,
    embedding_dim: int = 8,
    out_features: int = 16,
    shared_movie_pool: bool = False,
    seed: int = 0,
) -> Benchmark:
    """Build the multi-input per-genre rating-regression benchmark.

    ``genres`` may be any subset of :data:`GENRES` — Fig. 1/2 use the first
    three (tasks A, B, C in the paper's notation).  With
    ``shared_movie_pool=True`` all genres rate the same movies (used by the
    TCI–GCD analysis so both tasks exercise the same embedding rows).
    """
    unknown = set(genres) - set(GENRES)
    if unknown:
        raise ValueError(f"unknown genres: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    world = _World(
        num_users, num_movies, tuple(genres), relatedness, rng,
        shared_movie_pool=shared_movie_pool,
    )

    train, val, test = {}, {}, {}
    for genre in genres:
        users = rng.integers(0, num_users, size=records_per_genre)
        movies = rng.choice(world.pools[genre], size=records_per_genre)
        ratings = world.rating(users, movies, genre, rng)
        histories = world.history(users, rng)
        inputs = np.concatenate(
            [users[:, None], movies[:, None], histories], axis=1
        ).astype(np.int64)
        dataset = ArrayDataset(inputs, ratings)
        tr, va, te = train_val_test_split(records_per_genre, rng, 0.1, 0.1)
        train[genre] = dataset.subset(tr)
        val[genre] = dataset.subset(va)
        test[genre] = dataset.subset(te)

    tasks = _task_specs(tuple(genres))
    build_model, build_stl_model = _model_factories(
        num_users, num_movies, embedding_dim, out_features, tuple(genres), seed
    )

    return Benchmark(
        name="movielens",
        mode=MULTI_INPUT,
        tasks=tasks,
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={"genres": tuple(genres), "relatedness": relatedness},
    )
