"""Procedural NYUv2-style indoor scenes (Table III, Fig. 6).

The real NYUv2 provides RGB indoor images with three dense labels —
13-class semantic segmentation, depth, and surface normals — all derived
from the *same* underlying geometry, which is what makes the three tasks
related yet conflicting.

The procedural generator reproduces that: each scene is a tiny room
(back wall + floor + a few boxes of random object classes) rendered at low
resolution, and all three ground-truth maps come from the single scene
graph:

- **segmentation** (13 classes: wall, floor, 11 object classes),
- **depth** (wall at the far plane, floor sloping toward the camera, boxes
  at sampled depths),
- **normals** (wall faces +z, floor faces +y, each box face gets a
  random consistent tilt).

The RGB image is a class-coloured, depth-shaded rendering with sensor
noise, so appearance carries information about all three labels.
"""

from __future__ import annotations

import numpy as np

from ..arch.encoders import ConvEncoder
from ..arch.heads import DenseHead
from ..arch.hps import HardParameterSharing
from ..metrics.normals import normal_metrics
from ..metrics.regression import abs_error, rel_error
from ..metrics.segmentation import mean_iou, pixel_accuracy
from ..nn.functional import cross_entropy, mse_loss
from ..nn.tensor import Tensor
from .base import SINGLE_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split

__all__ = ["NUM_CLASSES", "make_nyuv2", "render_scene"]

NUM_CLASSES = 13
_SIZE = 16  # image height/width

_CLASS_COLORS = None  # filled lazily per-generator for determinism


def render_scene(rng: np.random.Generator, size: int = _SIZE) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Render one room; returns (image, segmentation, depth, normals)."""
    seg = np.zeros((size, size), dtype=np.int64)  # class 0 = wall
    depth = np.full((size, size), 5.0)
    normals = np.zeros((3, size, size))
    normals[2] = 1.0  # wall: +z toward camera

    # Floor: bottom rows, class 1, depth decreasing toward the camera.
    horizon = int(rng.integers(size // 2, 3 * size // 4))
    rows = np.arange(horizon, size)
    seg[rows, :] = 1
    floor_depth = np.linspace(5.0, 1.0, len(rows))
    depth[rows, :] = floor_depth[:, None]
    normals[:, rows, :] = 0.0
    normals[1, rows, :] = 1.0  # floor: +y

    # Boxes: random rectangles of object classes 2..12.
    for _ in range(int(rng.integers(2, 5))):
        cls = int(rng.integers(2, NUM_CLASSES))
        h = int(rng.integers(3, size // 2))
        w = int(rng.integers(3, size // 2))
        top = int(rng.integers(0, size - h))
        left = int(rng.integers(0, size - w))
        box_depth = float(rng.uniform(1.2, 4.0))
        tilt = rng.normal(scale=0.3, size=2)
        normal = np.array([tilt[0], tilt[1], 1.0])
        normal /= np.linalg.norm(normal)
        region = (slice(top, top + h), slice(left, left + w))
        closer = depth[region] > box_depth
        seg[region] = np.where(closer, cls, seg[region])
        depth[region] = np.where(closer, box_depth, depth[region])
        for c in range(3):
            normals[c][region] = np.where(closer, normal[c], normals[c][region])

    colors = _class_colors()
    image = colors[seg].transpose(2, 0, 1).astype(np.float64)  # (3, H, W)
    shading = 1.0 / (0.5 + 0.25 * depth)
    image = image * shading[None]
    image += 0.05 * rng.normal(size=image.shape)
    return image, seg, depth, normals


def _class_colors() -> np.ndarray:
    global _CLASS_COLORS
    if _CLASS_COLORS is None:
        color_rng = np.random.default_rng(1234)  # fixed palette
        _CLASS_COLORS = color_rng.uniform(0.2, 1.0, size=(NUM_CLASSES, 3))
    return _CLASS_COLORS


def _segmentation_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    # logits: (N, C, H, W) → class axis last for cross entropy
    moved = logits.transpose(0, 2, 3, 1)
    return cross_entropy(moved, targets)


def _seg_predictions(outputs: np.ndarray) -> np.ndarray:
    return outputs.argmax(axis=1)


def make_nyuv2(
    num_scenes: int = 300,
    channels: tuple[int, ...] = (12, 24),
    seed: int = 0,
) -> Benchmark:
    """Build the 3-task indoor scene-understanding benchmark."""
    rng = np.random.default_rng(seed)
    images, segs, depths, normals = [], [], [], []
    for _ in range(num_scenes):
        image, seg, depth, normal = render_scene(rng)
        images.append(image)
        segs.append(seg)
        depths.append(depth)
        normals.append(normal)
    images = np.stack(images)
    targets = {
        "segmentation": np.stack(segs),
        "depth": np.stack(depths),
        "normal": np.stack(normals),
    }
    full = ArrayDataset(images, targets)
    tr, va, te = train_val_test_split(num_scenes, rng, 0.15, 0.15)

    tasks = [
        TaskSpec(
            "segmentation",
            _segmentation_loss,
            {
                "miou": lambda o, t: mean_iou(_seg_predictions(o), t, NUM_CLASSES),
                "pixacc": lambda o, t: pixel_accuracy(_seg_predictions(o), t),
            },
            {"miou": True, "pixacc": True},
        ),
        TaskSpec(
            "depth",
            lambda out, t: mse_loss(out.reshape(out.shape[0], _SIZE, _SIZE), t),
            {
                "abs_err": lambda o, t: abs_error(o, t),
                "rel_err": lambda o, t: rel_error(o, t),
            },
            {"abs_err": False, "rel_err": False},
        ),
        TaskSpec(
            "normal",
            mse_loss,
            {
                "mean": lambda o, t: normal_metrics(o, t)["mean"],
                "median": lambda o, t: normal_metrics(o, t)["median"],
                "within_11.25": lambda o, t: normal_metrics(o, t)["within_11.25"],
                "within_22.5": lambda o, t: normal_metrics(o, t)["within_22.5"],
                "within_30": lambda o, t: normal_metrics(o, t)["within_30"],
            },
            {
                "mean": False,
                "median": False,
                "within_11.25": True,
                "within_22.5": True,
                "within_30": True,
            },
        ),
    ]

    head_channels = {"segmentation": NUM_CLASSES, "depth": 1, "normal": 3}

    def _heads(model_rng, encoder):
        scale = encoder.downsample_factor
        return {
            name: DenseHead(encoder.out_channels, 16, out_ch, scale, model_rng)
            for name, out_ch in head_channels.items()
        }

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        if architecture != "hps":
            raise ValueError("nyuv2 reproduction uses the paper's HPS stack only")
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = ConvEncoder(3, list(channels), model_rng)
        return HardParameterSharing(encoder, _heads(model_rng, encoder))

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = ConvEncoder(3, list(channels), model_rng)
        scale = encoder.downsample_factor
        head = DenseHead(encoder.out_channels, 16, head_channels[task_name], scale, model_rng)
        return HardParameterSharing(encoder, {task_name: head})

    return Benchmark(
        name="nyuv2",
        mode=SINGLE_INPUT,
        tasks=tasks,
        train=full.subset(tr),
        val=full.subset(va),
        test=full.subset(te),
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={"size": _SIZE, "num_classes": NUM_CLASSES},
    )
