"""Chunked streaming variants of the AliExpress / MovieLens / synthetic generators.

Each ``make_*_stream`` builder mirrors its eager sibling but returns a
:class:`~repro.data.base.Benchmark` whose training split is a
:class:`~repro.data.streaming.StreamingDataset`: rows are generated in
fixed-size shards on demand, each shard a pure function of
``shard_rng(stream_seed, shard_index)``, so any consumer (prefetch
thread, data-parallel worker, mmap cache writer) regenerates identical
bytes independently — at 10–100× the eager row counts with a flat memory
ceiling.

The eager builders stay byte-for-byte what they were (their seed-tuned
statistical tests depend on it); the streaming world is a *new* sampling
order over the same distributions:

- **world state** (latent tables, task directions, rotation matrices) is
  drawn once in the source constructor from
  ``default_rng([seed, salt])`` — sequence-seeded so it can never collide
  with a shard stream (`shard_rng` seeds are plain integers);
- **per-shard rows** come from the shard stream only;
- stream seeds for train/val/test (and per genre) derive from
  ``default_rng([seed, salt, split, ...]).integers(2**48)`` — distinct
  48-bit streams per split sharing one world, so validation rows can
  never alias training rows at any dataset size;
- the AliExpress **base-rate calibration** (the eager path's
  ``np.quantile`` over the full sample — a global statistic, inherently
  unchunkable) is replaced by quantiles over a fixed-size calibration
  sample drawn from its own salted stream.  Label distribution becomes
  *invariant to total_rows*: growing a stream 10× extends it without
  re-labeling the prefix.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from .aliexpress import (
    _COUNTRY_PROFILES,
    _FIELD_SIZES,
    _LATENT_DIM as _ALI_LATENT_DIM,
    _model_factories as _ali_model_factories,
    _sigmoid,
    _task_specs as _ali_task_specs,
    COUNTRIES,
)
from .base import MULTI_INPUT, SINGLE_INPUT, Benchmark
from .latent import correlated_task_matrix, task_directions
from .movielens import (
    GENRES,
    _SEQ_LEN,
    _World,
    _model_factories as _ml_model_factories,
    _task_specs as _ml_task_specs,
)
from .shardcache import ShardCache
from .streaming import ChunkedSource, StreamingDataset
from .synthetic import (
    _model_factories as _syn_model_factories,
    _task_specs as _syn_task_specs,
    uniform_conflict_gram,
)

__all__ = [
    "AliExpressStream",
    "MovieLensGenreStream",
    "SyntheticStream",
    "make_aliexpress_stream",
    "make_movielens_stream",
    "make_synthetic_stream",
]

_SPLITS = ("train", "val", "test")
#: Salt separating world-state RNG from stream-seed derivation.
_WORLD_SALT, _STREAM_SALT, _CALIBRATION_SALT = 1, 2, 3
#: AliExpress bias quantiles come from this many calibration rows.
_CALIBRATION_ROWS = 4096


def _stream_seed(*components: int) -> int:
    """A 48-bit shard-stream seed from integer components.

    Sequence-seeded generators (``default_rng([a, b, ...])``) occupy a
    different seed space than the plain-integer ``shard_rng`` streams, so
    deriving stream seeds this way keeps every (split, genre) stream and
    every world generator pairwise independent.
    """
    return int(np.random.default_rng(list(components)).integers(1 << 48))


def _coerce_cache(cache) -> ShardCache | None:
    if cache is None or isinstance(cache, ShardCache):
        return cache
    return ShardCache(Path(cache))


def _split_seed(base: int, split: str, *extra: int) -> int:
    if split not in _SPLITS:
        raise ValueError(f"split must be one of {_SPLITS}; got {split!r}")
    return _stream_seed(base, _STREAM_SALT, _SPLITS.index(split), *extra)


# ----------------------------------------------------------------------
# AliExpress
# ----------------------------------------------------------------------
class AliExpressStream(ChunkedSource):
    """Chunked AliExpress-style click logs (CTR / CTCVR funnel)."""

    def __init__(
        self,
        country: str,
        total_rows: int,
        chunk_size: int,
        relatedness: float = 0.35,
        seed: int = 0,
        split: str = "train",
    ) -> None:
        if country not in _COUNTRY_PROFILES:
            raise ValueError(f"country must be one of {COUNTRIES}")
        self.country = country
        self.total_rows = int(total_rows)
        self.chunk_size = int(chunk_size)
        self.relatedness = float(relatedness)
        self.base_seed = int(seed)
        self.split = split
        self.base_ctr, self.cvr_rate, offset = _COUNTRY_PROFILES[country]

        world_rng = np.random.default_rng([seed + offset, _WORLD_SALT])
        self.field_latents = [
            world_rng.normal(scale=1.0, size=(size, _ALI_LATENT_DIM))
            for size in _FIELD_SIZES
        ]
        self.directions = task_directions(2, _ALI_LATENT_DIM, relatedness, world_rng)

        # Fixed-size calibration sample: the eager path centers scores
        # with a quantile over ALL rows, which a chunked generator cannot
        # reproduce without materializing everything.  A dedicated
        # calibration stream pins the biases independent of total_rows.
        cal_rng = np.random.default_rng([seed + offset, _CALIBRATION_SALT])
        _, ctr_score, cvr_score = self._scores(_CALIBRATION_ROWS, cal_rng)
        self.ctr_bias = float(np.quantile(ctr_score, 1.0 - self.base_ctr))
        self.cvr_bias = float(np.quantile(cvr_score, 1.0 - self.cvr_rate))

        self.seed = _split_seed(seed + offset, split)

    def _scores(self, rows: int, rng: np.random.Generator):
        records = np.stack(
            [rng.integers(0, size, size=rows) for size in _FIELD_SIZES], axis=1
        )
        latents = sum(
            table[records[:, i]] for i, table in enumerate(self.field_latents)
        ) / np.sqrt(len(_FIELD_SIZES))
        ctr_score = latents @ self.directions[0] + 0.3 * rng.normal(size=rows)
        cvr_score = latents @ self.directions[1] + 0.3 * rng.normal(size=rows)
        return records, ctr_score, cvr_score

    def generate_chunk(self, index: int):
        rng = self.shard_generator(index)
        rows = self.shard_length(index)
        records, ctr_score, cvr_score = self._scores(rows, rng)
        clicks = (
            rng.random(rows) < _sigmoid(2.5 * (ctr_score - self.ctr_bias))
        ).astype(np.float64)
        conversions = (
            rng.random(rows) < _sigmoid(2.5 * (cvr_score - self.cvr_bias))
        ).astype(np.float64)
        return records, {"CTR": clicks, "CTCVR": conversions * clicks}

    def cache_key(self) -> str:
        return (
            f"aliexpress/{self.country}/rel{self.relatedness}"
            f"/rows{self.total_rows}/chunk{self.chunk_size}"
            f"/cal{_CALIBRATION_ROWS}/{self.split}"
        )


def make_aliexpress_stream(
    country: str = "ES",
    num_records: int = 4000,
    chunk_size: int = 1024,
    relatedness: float = 0.35,
    embedding_dim: int = 8,
    hidden: tuple[int, ...] = (32, 16),
    seed: int = 0,
    val_records: int | None = None,
    test_records: int | None = None,
    cache=None,
    prefetch_depth: int = 1,
    telemetry=None,
) -> Benchmark:
    """Streaming counterpart of :func:`~repro.data.aliexpress.make_aliexpress`.

    The train split streams; val/test are separate salted streams
    materialized eagerly (their size defaults to ``num_records // 10``
    and does *not* grow with the training row count, so evaluation
    memory stays fixed).  ``cache`` may be a
    :class:`~repro.data.shardcache.ShardCache` or a directory path.
    """
    cache = _coerce_cache(cache)
    val_records = max(num_records // 10, 1) if val_records is None else val_records
    test_records = max(num_records // 10, 1) if test_records is None else test_records

    def source(split: str, rows: int) -> AliExpressStream:
        return AliExpressStream(
            country, rows, chunk_size, relatedness, seed=seed, split=split
        )

    train = StreamingDataset(
        source("train", num_records),
        cache=cache,
        prefetch_depth=prefetch_depth,
        telemetry=telemetry,
    )
    val = StreamingDataset(source("val", val_records)).materialize()
    test = StreamingDataset(source("test", test_records)).materialize()

    build_model, build_stl_model = _ali_model_factories(embedding_dim, hidden, seed)
    stream_source = train.source
    return Benchmark(
        name=f"aliexpress-{country}-stream",
        mode=SINGLE_INPUT,
        tasks=_ali_task_specs(),
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={
            "country": country,
            "base_ctr": stream_source.base_ctr,
            "cvr_rate": stream_source.cvr_rate,
            "relatedness": relatedness,
            "streaming": True,
            "chunk_size": chunk_size,
        },
    )


# ----------------------------------------------------------------------
# MovieLens
# ----------------------------------------------------------------------
class MovieLensGenreStream(ChunkedSource):
    """Chunked per-genre rating records over a shared movie world."""

    def __init__(
        self,
        world: _World,
        genre: str,
        genre_index: int,
        total_rows: int,
        chunk_size: int,
        seed: int = 0,
        split: str = "train",
    ) -> None:
        self.world = world
        self.genre = genre
        self.total_rows = int(total_rows)
        self.chunk_size = int(chunk_size)
        self.base_seed = int(seed)
        self.split = split
        self.seed = _split_seed(seed, split, genre_index)

    def generate_chunk(self, index: int):
        rng = self.shard_generator(index)
        rows = self.shard_length(index)
        world = self.world
        users = rng.integers(0, world.num_users, size=rows)
        movies = rng.choice(world.pools[self.genre], size=rows)
        ratings = world.rating(users, movies, self.genre, rng)
        histories = world.history_block(users, rng)
        inputs = np.concatenate(
            [users[:, None], movies[:, None], histories], axis=1
        ).astype(np.int64)
        return inputs, ratings

    def cache_key(self) -> str:
        world = self.world
        shared = len(set(map(len, world.pools.values()))) == 1 and len(
            world.pools[self.genre]
        ) == world.num_movies
        return (
            f"movielens/{self.genre}/u{world.num_users}/m{world.num_movies}"
            f"/g{len(world.genres)}/rel{world.relatedness}/shared{int(shared)}"
            f"/rows{self.total_rows}/chunk{self.chunk_size}/{self.split}"
        )


def make_movielens_stream(
    genres: tuple[str, ...] = GENRES,
    records_per_genre: int = 600,
    chunk_size: int = 256,
    num_users: int = 120,
    num_movies: int = 180,
    relatedness: float = 0.3,
    embedding_dim: int = 8,
    out_features: int = 16,
    shared_movie_pool: bool = False,
    seed: int = 0,
    val_records: int | None = None,
    test_records: int | None = None,
    cache=None,
    prefetch_depth: int = 1,
    telemetry=None,
) -> Benchmark:
    """Streaming counterpart of :func:`~repro.data.movielens.make_movielens`.

    Multi-input: each genre's train split is its own
    :class:`StreamingDataset` over the shared world, with a per-genre
    shard stream (so ``parallel`` row identities stay disjoint across
    tasks just like distinct eager datasets).
    """
    unknown = set(genres) - set(GENRES)
    if unknown:
        raise ValueError(f"unknown genres: {sorted(unknown)}")
    cache = _coerce_cache(cache)
    val_records = max(records_per_genre // 10, 1) if val_records is None else val_records
    test_records = (
        max(records_per_genre // 10, 1) if test_records is None else test_records
    )

    world_rng = np.random.default_rng([seed, _WORLD_SALT])
    world = _World(
        num_users,
        num_movies,
        tuple(genres),
        relatedness,
        world_rng,
        shared_movie_pool=shared_movie_pool,
    )

    def source(genre: str, g: int, split: str, rows: int) -> MovieLensGenreStream:
        return MovieLensGenreStream(
            world, genre, g, rows, chunk_size, seed=seed, split=split
        )

    train, val, test = {}, {}, {}
    for g, genre in enumerate(genres):
        train[genre] = StreamingDataset(
            source(genre, g, "train", records_per_genre),
            cache=cache,
            prefetch_depth=prefetch_depth,
            telemetry=telemetry,
        )
        val[genre] = StreamingDataset(source(genre, g, "val", val_records)).materialize()
        test[genre] = StreamingDataset(
            source(genre, g, "test", test_records)
        ).materialize()

    build_model, build_stl_model = _ml_model_factories(
        num_users, num_movies, embedding_dim, out_features, tuple(genres), seed
    )
    return Benchmark(
        name="movielens-stream",
        mode=MULTI_INPUT,
        tasks=_ml_task_specs(tuple(genres)),
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={
            "genres": tuple(genres),
            "relatedness": relatedness,
            "streaming": True,
            "chunk_size": chunk_size,
        },
    )


# ----------------------------------------------------------------------
# Synthetic latent-factor benchmark
# ----------------------------------------------------------------------
class SyntheticStream(ChunkedSource):
    """Chunked K-task latent-factor rows with an exact conflict Gram."""

    def __init__(
        self,
        num_tasks: int,
        total_rows: int,
        chunk_size: int,
        in_features: int = 16,
        task_gram: np.ndarray | None = None,
        pairwise_cosine: float = 0.0,
        noise: float = 0.2,
        task_type: str = "regression",
        seed: int = 0,
        split: str = "train",
    ) -> None:
        if task_type not in ("regression", "classification"):
            raise ValueError("task_type must be 'regression' or 'classification'")
        if task_gram is None:
            task_gram = uniform_conflict_gram(num_tasks, pairwise_cosine)
        self.task_gram = np.asarray(task_gram, dtype=np.float64)
        if self.task_gram.shape != (num_tasks, num_tasks):
            raise ValueError("task_gram must be (K, K)")
        self.num_tasks = int(num_tasks)
        self.total_rows = int(total_rows)
        self.chunk_size = int(chunk_size)
        self.in_features = int(in_features)
        self.noise = float(noise)
        self.task_type = task_type
        self.base_seed = int(seed)
        self.split = split
        world_rng = np.random.default_rng([seed, _WORLD_SALT])
        self.directions = correlated_task_matrix(
            num_tasks, in_features, self.task_gram, world_rng
        )
        self.seed = _split_seed(seed, split)

    def generate_chunk(self, index: int):
        rng = self.shard_generator(index)
        rows = self.shard_length(index)
        inputs = rng.normal(size=(rows, self.in_features))
        scores = inputs @ self.directions.T
        targets: dict[str, np.ndarray] = {}
        for k in range(self.num_tasks):
            if self.task_type == "regression":
                targets[f"task{k}"] = scores[:, k] + self.noise * rng.normal(size=rows)
            else:
                probabilities = 1.0 / (1.0 + np.exp(-2.0 * scores[:, k]))
                targets[f"task{k}"] = (rng.random(rows) < probabilities).astype(
                    np.float64
                )
        return inputs, targets

    def cache_key(self) -> str:
        gram = np.round(self.task_gram, 9).tobytes()
        gram_id = hashlib.sha1(gram).hexdigest()[:12]
        return (
            f"synthetic/{self.task_type}/K{self.num_tasks}/f{self.in_features}"
            f"/gram{gram_id}/noise{self.noise}"
            f"/rows{self.total_rows}/chunk{self.chunk_size}/{self.split}"
        )


def make_synthetic_stream(
    num_tasks: int = 3,
    num_samples: int = 600,
    chunk_size: int = 256,
    in_features: int = 16,
    task_gram: np.ndarray | None = None,
    pairwise_cosine: float = 0.0,
    noise: float = 0.2,
    task_type: str = "regression",
    hidden: tuple[int, ...] = (24, 12),
    seed: int = 0,
    val_records: int | None = None,
    test_records: int | None = None,
    cache=None,
    prefetch_depth: int = 1,
    telemetry=None,
) -> Benchmark:
    """Streaming counterpart of :func:`~repro.data.synthetic.make_synthetic_mtl`."""
    cache = _coerce_cache(cache)
    val_records = max(num_samples // 10, 1) if val_records is None else val_records
    test_records = max(num_samples // 10, 1) if test_records is None else test_records

    def source(split: str, rows: int) -> SyntheticStream:
        return SyntheticStream(
            num_tasks,
            rows,
            chunk_size,
            in_features=in_features,
            task_gram=task_gram,
            pairwise_cosine=pairwise_cosine,
            noise=noise,
            task_type=task_type,
            seed=seed,
            split=split,
        )

    train_source = source("train", num_samples)
    train = StreamingDataset(
        train_source, cache=cache, prefetch_depth=prefetch_depth, telemetry=telemetry
    )
    val = StreamingDataset(source("val", val_records)).materialize()
    test = StreamingDataset(source("test", test_records)).materialize()

    build_model, build_stl_model = _syn_model_factories(
        in_features, hidden, num_tasks, seed
    )
    return Benchmark(
        name=f"synthetic-{task_type}-stream",
        mode=SINGLE_INPUT,
        tasks=_syn_task_specs(task_type, num_tasks),
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={
            "task_gram": train_source.task_gram,
            "noise": noise,
            "task_type": task_type,
            "directions": train_source.directions,
            "streaming": True,
            "chunk_size": chunk_size,
        },
    )
