"""Generic synthetic multi-task benchmark with an exact conflict dial.

The six named generators mirror the paper's datasets; this module exposes
the underlying mechanism directly as a seventh, fully-controllable
benchmark: K regression (or binary classification) tasks over a shared
input whose ground-truth directions have a *specified Gram matrix* — i.e.
you choose the exact pairwise task cosines.  The Fig. 2 reproduction and
the convex-theory demos are special cases of this generator.

Useful for:
- unit-testing balancers against known conflict geometry,
- sweeping conflict levels continuously (the instrumented dial),
- quick-start experiments that don't need a domain-shaped dataset.
"""

from __future__ import annotations

import numpy as np

from ..arch.encoders import MLPEncoder
from ..arch.heads import LinearHead
from ..arch.hps import HardParameterSharing
from ..metrics.classification import roc_auc
from ..metrics.regression import mae, rmse
from ..nn.functional import bce_with_logits, mse_loss
from .base import SINGLE_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split
from .latent import correlated_task_matrix

__all__ = ["make_synthetic_mtl", "uniform_conflict_gram"]


def uniform_conflict_gram(num_tasks: int, cosine: float) -> np.ndarray:
    """Gram matrix with every off-diagonal pairwise cosine equal.

    Valid (PSD) for ``cosine ≥ −1/(K−1)``; raises otherwise.
    """
    if num_tasks < 1:
        raise ValueError("num_tasks must be ≥ 1")
    if num_tasks > 1 and cosine < -1.0 / (num_tasks - 1) - 1e-12:
        raise ValueError(
            f"uniform cosine {cosine} is infeasible for {num_tasks} tasks "
            f"(needs ≥ {-1.0 / (num_tasks - 1):.3f})"
        )
    gram = np.full((num_tasks, num_tasks), float(cosine))
    np.fill_diagonal(gram, 1.0)
    return gram


def _task_specs(task_type: str, num_tasks: int) -> list[TaskSpec]:
    """K regression or classification task specs (eager + streaming)."""
    if task_type == "regression":
        metrics = {"rmse": lambda o, t: rmse(o, t), "mae": lambda o, t: mae(o, t)}
        directions_map = {"rmse": False, "mae": False}
        loss_fn = mse_loss
    else:
        metrics = {"auc": lambda o, t: roc_auc(1.0 / (1.0 + np.exp(-o)), t)}
        directions_map = {"auc": True}
        loss_fn = bce_with_logits
    return [
        TaskSpec(f"task{k}", loss_fn, dict(metrics), dict(directions_map))
        for k in range(num_tasks)
    ]


def _model_factories(
    in_features: int, hidden: tuple[int, ...], num_tasks: int, seed: int
):
    """``(build_model, build_stl_model)`` closures (no RNG consumed here)."""

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        if architecture != "hps":
            raise ValueError("the synthetic benchmark ships an HPS factory only")
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = MLPEncoder(in_features, list(hidden), model_rng)
        heads = {
            f"task{k}": LinearHead(hidden[-1], 1, model_rng) for k in range(num_tasks)
        }
        return HardParameterSharing(encoder, heads)

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = MLPEncoder(in_features, list(hidden), model_rng)
        return HardParameterSharing(
            encoder, {task_name: LinearHead(hidden[-1], 1, model_rng)}
        )

    return build_model, build_stl_model


def make_synthetic_mtl(
    num_tasks: int = 3,
    num_samples: int = 600,
    in_features: int = 16,
    task_gram: np.ndarray | None = None,
    pairwise_cosine: float = 0.0,
    noise: float = 0.2,
    task_type: str = "regression",
    hidden: tuple[int, ...] = (24, 12),
    seed: int = 0,
) -> Benchmark:
    """Build a single-input MTL benchmark with exact task geometry.

    Parameters
    ----------
    task_gram:
        Explicit ``(K, K)`` PSD matrix of pairwise task cosines (unit
        diagonal).  Defaults to :func:`uniform_conflict_gram` at
        ``pairwise_cosine``.
    task_type:
        ``"regression"`` (MSE / RMSE+MAE) or ``"classification"``
        (logistic labels / BCE / AUC).
    """
    if task_type not in ("regression", "classification"):
        raise ValueError("task_type must be 'regression' or 'classification'")
    rng = np.random.default_rng(seed)
    if task_gram is None:
        task_gram = uniform_conflict_gram(num_tasks, pairwise_cosine)
    task_gram = np.asarray(task_gram, dtype=np.float64)
    if task_gram.shape != (num_tasks, num_tasks):
        raise ValueError("task_gram must be (K, K)")
    directions = correlated_task_matrix(num_tasks, in_features, task_gram, rng)

    inputs = rng.normal(size=(num_samples, in_features))
    scores = inputs @ directions.T  # (n, K)
    targets: dict[str, np.ndarray] = {}
    for k in range(num_tasks):
        name = f"task{k}"
        if task_type == "regression":
            targets[name] = scores[:, k] + noise * rng.normal(size=num_samples)
        else:
            probabilities = 1.0 / (1.0 + np.exp(-2.0 * scores[:, k]))
            targets[name] = (rng.random(num_samples) < probabilities).astype(np.float64)

    dataset = ArrayDataset(inputs, targets)
    train_idx, val_idx, test_idx = train_val_test_split(num_samples, rng)

    tasks = _task_specs(task_type, num_tasks)
    build_model, build_stl_model = _model_factories(in_features, hidden, num_tasks, seed)

    return Benchmark(
        name=f"synthetic-{task_type}",
        mode=SINGLE_INPUT,
        tasks=tasks,
        train=dataset.subset(train_idx),
        val=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={
            "task_gram": task_gram,
            "noise": noise,
            "task_type": task_type,
            "directions": directions,
        },
    )
