"""Procedural CityScapes-style street scenes (Table IV, Fig. 7).

Two dense tasks — 7-class semantic segmentation and depth — on synthetic
street layouts: sky band at the top, road at the bottom, building blocks on
the sides, plus cars/poles/vegetation/pedestrian rectangles.  As with the
NYUv2 generator, both labels derive from one scene graph, so the tasks are
related but compete for the shared encoder.

This benchmark also powers the paper's Fig. 7 architecture study, so
``build_model`` supports all five architectures (HPS, Cross-stitch, MTAN,
MMoE, CGC).
"""

from __future__ import annotations

import numpy as np

from ..arch.cgc import CGC
from ..arch.cross_stitch import CrossStitch
from ..arch.encoders import ConvEncoder
from ..arch.heads import DenseHead
from ..arch.hps import HardParameterSharing
from ..arch.mmoe import MMoE
from ..arch.mtan import MTAN, ConvAttention
from ..metrics.regression import abs_error, rel_error
from ..metrics.segmentation import mean_iou, pixel_accuracy
from ..nn.conv import Conv2d, MaxPool2d
from ..nn.functional import cross_entropy, mse_loss
from ..nn.layers import ReLU, Sequential
from ..nn.tensor import Tensor
from .base import SINGLE_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split

__all__ = ["NUM_CLASSES", "CLASSES", "make_cityscapes", "render_street"]

CLASSES = ("road", "sky", "building", "car", "vegetation", "pole", "person")
NUM_CLASSES = len(CLASSES)
_SIZE = 16


def render_street(rng: np.random.Generator, size: int = _SIZE) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Render one street scene; returns (image, segmentation, depth)."""
    seg = np.full((size, size), 2, dtype=np.int64)  # building background
    depth = np.full((size, size), 20.0)

    sky_rows = int(rng.integers(size // 4, size // 2))
    seg[:sky_rows, :] = 1
    depth[:sky_rows, :] = 50.0

    road_rows = int(rng.integers(size // 4, size // 2))
    rows = np.arange(size - road_rows, size)
    seg[rows, :] = 0
    depth[rows, :] = np.linspace(20.0, 2.0, road_rows)[:, None]

    for _ in range(int(rng.integers(2, 6))):
        cls = int(rng.integers(3, NUM_CLASSES))
        h = int(rng.integers(2, size // 3))
        w = int(rng.integers(2, size // 3))
        top = int(rng.integers(sky_rows, size - h))
        left = int(rng.integers(0, size - w))
        obj_depth = float(rng.uniform(3.0, 15.0))
        region = (slice(top, top + h), slice(left, left + w))
        closer = depth[region] > obj_depth
        seg[region] = np.where(closer, cls, seg[region])
        depth[region] = np.where(closer, obj_depth, depth[region])

    colors = _class_colors()
    image = colors[seg].transpose(2, 0, 1).astype(np.float64)
    shading = 1.0 / (0.8 + 0.04 * depth)
    image = image * shading[None]
    image += 0.05 * rng.normal(size=image.shape)
    return image, seg, depth


_PALETTE = None


def _class_colors() -> np.ndarray:
    global _PALETTE
    if _PALETTE is None:
        color_rng = np.random.default_rng(4321)
        _PALETTE = color_rng.uniform(0.2, 1.0, size=(NUM_CLASSES, 3))
    return _PALETTE


def _segmentation_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    return cross_entropy(logits.transpose(0, 2, 3, 1), targets)


def make_cityscapes(
    num_scenes: int = 300,
    channels: tuple[int, ...] = (12, 24),
    seed: int = 0,
) -> Benchmark:
    """Build the 2-task street-scene benchmark (all five architectures)."""
    rng = np.random.default_rng(seed)
    images, segs, depths = [], [], []
    for _ in range(num_scenes):
        image, seg, depth = render_street(rng)
        images.append(image)
        segs.append(seg)
        depths.append(depth)
    images = np.stack(images)
    # Depth targets are normalized to keep the two losses on similar scales
    # (the paper trains on disparity for the same reason).
    depth_scale = 10.0
    targets = {"segmentation": np.stack(segs), "depth": np.stack(depths) / depth_scale}
    full = ArrayDataset(images, targets)
    tr, va, te = train_val_test_split(num_scenes, rng, 0.15, 0.15)

    tasks = [
        TaskSpec(
            "segmentation",
            _segmentation_loss,
            {
                "miou": lambda o, t: mean_iou(o.argmax(axis=1), t, NUM_CLASSES),
                "pixacc": lambda o, t: pixel_accuracy(o.argmax(axis=1), t),
            },
            {"miou": True, "pixacc": True},
        ),
        TaskSpec(
            "depth",
            lambda out, t: mse_loss(out.reshape(out.shape[0], _SIZE, _SIZE), t),
            {
                "abs_err": lambda o, t: abs_error(o, t),
                "rel_err": lambda o, t: rel_error(o, t),
            },
            {"abs_err": False, "rel_err": False},
        ),
    ]

    head_channels = {"segmentation": NUM_CLASSES, "depth": 1}

    def _dense_heads(model_rng, out_channels: int, scale: int):
        return {
            name: DenseHead(out_channels, 16, out_ch, scale, model_rng)
            for name, out_ch in head_channels.items()
        }

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        if architecture == "hps":
            encoder = ConvEncoder(3, list(channels), model_rng)
            return HardParameterSharing(
                encoder, _dense_heads(model_rng, encoder.out_channels, encoder.downsample_factor)
            )
        if architecture == "mmoe":
            return MMoE(
                lambda: ConvEncoder(3, list(channels), model_rng),
                num_experts=3,
                heads=_dense_heads(model_rng, channels[-1], 2 ** len(channels)),
                gate_in_features=3,
                rng=model_rng,
            )
        if architecture == "cgc":
            return CGC(
                lambda: ConvEncoder(3, list(channels), model_rng),
                num_shared_experts=2,
                num_task_experts=1,
                heads=_dense_heads(model_rng, channels[-1], 2 ** len(channels)),
                gate_in_features=3,
                rng=model_rng,
            )
        if architecture == "cross_stitch":
            factories = []
            previous = 3
            for width in channels:
                factories.append(
                    lambda p=previous, w=width: Sequential(
                        Conv2d(p, w, 3, model_rng, padding=1), ReLU(), MaxPool2d(2)
                    )
                )
                previous = width
            return CrossStitch(
                factories, _dense_heads(model_rng, channels[-1], 2 ** len(channels))
            )
        if architecture == "mtan":
            stages = []
            previous = 3
            for width in channels:
                stages.append(
                    Sequential(Conv2d(previous, width, 3, model_rng, padding=1), ReLU(), MaxPool2d(2))
                )
                previous = width
            attention_factories = []
            previous_width = channels[0]
            for i, width in enumerate(channels):
                prev = width if i == 0 else channels[i - 1]
                attention_factories.append(
                    lambda w=width, p=prev: ConvAttention(w, p, model_rng)
                )
            return MTAN(
                stages,
                attention_factories,
                _dense_heads(model_rng, channels[-1], 2 ** len(channels)),
            )
        raise ValueError(f"unknown architecture {architecture!r}")

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = ConvEncoder(3, list(channels), model_rng)
        head = DenseHead(
            encoder.out_channels, 16, head_channels[task_name], encoder.downsample_factor, model_rng
        )
        return HardParameterSharing(encoder, {task_name: head})

    return Benchmark(
        name="cityscapes",
        mode=SINGLE_INPUT,
        tasks=tasks,
        train=full.subset(tr),
        val=full.subset(va),
        test=full.subset(te),
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={"size": _SIZE, "num_classes": NUM_CLASSES, "depth_scale": depth_scale},
    )
