"""Synthetic Office-Home-style multi-domain classification (Fig. 5, Fig. 9).

The real Office-Home has the *same 65 object classes* photographed in four
visual styles (Art, Clipart, Product, Real-World); the paper treats each
domain as its own 65-way classification task with its own images
(**multi-input** MTL, shared ResNet-18 encoder).

The generator reproduces the shared-classes/shifted-styles structure:

- each class owns a prototype pattern (smooth random texture + a class-
  specific blob layout) shared by all domains;
- each domain applies its own style transform — colour mixing matrix,
  brightness/contrast shift, noise level and spatial jitter — so the same
  class looks different per domain while staying mutually predictive.
"""

from __future__ import annotations

import numpy as np

from ..arch.encoders import ConvEncoder
from ..arch.heads import LinearHead
from ..arch.hps import HardParameterSharing
from ..metrics.classification import accuracy
from ..nn.conv import GlobalAvgPool2d
from ..nn.functional import cross_entropy
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import MULTI_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split

__all__ = ["DOMAINS", "make_officehome"]

DOMAINS = ("Art", "Clipart", "Product", "RealWorld")
_SIZE = 16

_DOMAIN_STYLE = {
    # (colour-mix strength, brightness, contrast, noise, jitter pixels)
    "Art": (0.6, 0.1, 1.2, 0.10, 1),
    "Clipart": (0.9, 0.3, 1.5, 0.02, 0),
    "Product": (0.2, 0.4, 1.0, 0.03, 0),
    "RealWorld": (0.3, 0.0, 0.9, 0.15, 2),
}


def _class_prototypes(num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth per-class texture patterns, shape (C, 3, H, W)."""
    prototypes = np.empty((num_classes, 3, _SIZE, _SIZE))
    yy, xx = np.meshgrid(np.arange(_SIZE), np.arange(_SIZE), indexing="ij")
    for c in range(num_classes):
        freq = rng.uniform(0.3, 1.2, size=2)
        phase = rng.uniform(0, 2 * np.pi, size=2)
        base = np.sin(freq[0] * yy + phase[0]) * np.cos(freq[1] * xx + phase[1])
        color = rng.uniform(0.3, 1.0, size=3)
        pattern = 0.5 + 0.5 * base
        # A class-specific blob so classes differ beyond texture.
        cy, cx = rng.integers(3, _SIZE - 3, size=2)
        blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / 8.0)
        prototypes[c] = color[:, None, None] * (pattern + blob)[None]
    return prototypes


def _apply_style(
    image: np.ndarray, domain: str, rng: np.random.Generator, strength: float = 1.0
) -> np.ndarray:
    mix, brightness, contrast, noise, jitter = _DOMAIN_STYLE[domain]
    mix *= strength
    brightness *= strength
    contrast = 1.0 + (contrast - 1.0) * strength
    noise *= strength
    jitter = int(round(jitter * strength))
    mixer = (1.0 - mix) * np.eye(3) + mix * rng.dirichlet(np.ones(3), size=3)
    styled = np.einsum("ij,jhw->ihw", mixer, image)
    styled = contrast * (styled - styled.mean()) + styled.mean() + brightness
    if jitter:
        shift = rng.integers(-jitter, jitter + 1, size=2)
        styled = np.roll(styled, tuple(shift), axis=(1, 2))
    styled += noise * rng.normal(size=styled.shape)
    return styled


class _PooledConvEncoder(Module):
    """Conv encoder + global average pooling → vector representation."""

    def __init__(self, channels: tuple[int, ...], rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = ConvEncoder(3, list(channels), rng)
        self.pool = GlobalAvgPool2d()
        self.out_features = self.conv.out_channels

    def forward(self, x) -> Tensor:
        return self.pool(self.conv(x))


def make_officehome(
    num_classes: int = 10,
    samples_per_domain: int = 400,
    channels: tuple[int, ...] = (12, 24),
    domain_conflict: float = 0.6,
    style_strength: float = 1.0,
    seed: int = 0,
) -> Benchmark:
    """Build the 4-domain classification benchmark.

    ``num_classes`` defaults to 10 for laptop-scale runs (the real dataset
    has 65; pass 65 for the full-width variant).

    ``domain_conflict`` scales per-(domain, class) appearance shifts: each
    domain renders the same class with its own distortion pattern, so the
    shared encoder cannot satisfy all domains simultaneously — the source
    of the gradient conflicts the paper's Fig. 5 experiment stresses.
    Set 0.0 for perfectly transferable domains.

    ``style_strength`` scales how far apart the four domain styles are
    (1.0 = the full transforms; smaller values make domains more mutually
    predictive, the regime where joint training pays off).
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if domain_conflict < 0:
        raise ValueError("domain_conflict must be ≥ 0")
    if style_strength < 0:
        raise ValueError("style_strength must be ≥ 0")
    rng = np.random.default_rng(seed)
    prototypes = _class_prototypes(num_classes, rng)
    # Per-(domain, class) distortions: same class, conflicting appearance.
    distortions = {
        domain: rng.normal(scale=domain_conflict, size=(num_classes, 3, _SIZE, _SIZE))
        for domain in DOMAINS
    }

    train, val, test = {}, {}, {}
    for domain in DOMAINS:
        labels = rng.integers(0, num_classes, size=samples_per_domain)
        images = np.empty((samples_per_domain, 3, _SIZE, _SIZE))
        for i, label in enumerate(labels):
            rendered = prototypes[label] + distortions[domain][label]
            images[i] = _apply_style(rendered, domain, rng, strength=style_strength)
        dataset = ArrayDataset(images, labels.astype(np.int64))
        # Paper split: 60% train / 20% val / 20% test.
        tr, va, te = train_val_test_split(samples_per_domain, rng, 0.2, 0.2)
        train[domain] = dataset.subset(tr)
        val[domain] = dataset.subset(va)
        test[domain] = dataset.subset(te)

    tasks = [
        TaskSpec(
            domain,
            cross_entropy,
            {"accuracy": lambda o, t: accuracy(o.argmax(axis=1), t)},
            {"accuracy": True},
        )
        for domain in DOMAINS
    ]

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        if architecture != "hps":
            raise ValueError("officehome reproduction uses the paper's HPS stack only")
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = _PooledConvEncoder(channels, model_rng)
        heads = {
            domain: LinearHead(encoder.out_features, num_classes, model_rng)
            for domain in DOMAINS
        }
        return HardParameterSharing(encoder, heads)

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = _PooledConvEncoder(channels, model_rng)
        head = {task_name: LinearHead(encoder.out_features, num_classes, model_rng)}
        return HardParameterSharing(encoder, head)

    return Benchmark(
        name="officehome",
        mode=MULTI_INPUT,
        tasks=tasks,
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={"num_classes": num_classes, "size": _SIZE},
    )
