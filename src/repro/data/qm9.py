"""Synthetic QM9-style molecular-property regression (Table II).

The real QM9 holds ~130k small molecules with 11 regression targets of
wildly different physical scales; the paper consumes it with GCN shared
layers in a **multi-input** setting (each property task gets its own
molecule batches).

This generator builds random molecule-like graphs (networkx: random trees
plus a few ring-closing edges, capped degrees, categorical "atom types")
and computes 11 properties as graph invariants at different scales and
smoothness levels:

====  =============================  =========================================
id    property                       invariant
====  =============================  =========================================
mu    dipole-like moment             atom-type-weighted degree imbalance
alpha polarizability-like            sum of squared degrees
homo  frontier-orbital energy        largest adjacency eigenvalue (negated)
lumo  frontier-orbital energy        second-largest adjacency eigenvalue
gap   homo-lumo gap                  spectral gap of the adjacency
r2    electronic spatial extent      mean shortest-path distance squared
zpve  zero-point vibrational energy  number of edges (bond count)
u0    internal energy at 0 K         weighted atom-mass sum
u298  internal energy at 298 K       u0 plus degree-entropy correction
h298  enthalpy                       u0 plus ring count
g298  free energy                    u0 minus algebraic connectivity
====  =============================  =========================================

All targets are standardized over the generated pool, then per-task noise
is added — heterogeneous relatedness between invariants is what recreates
QM9's task-conflict structure.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..arch.encoders import GCNEncoder
from ..arch.heads import LinearHead
from ..arch.hps import HardParameterSharing
from ..metrics.regression import mae, rmse
from ..nn.functional import mse_loss
from ..nn.graph import normalize_adjacency
from .base import MULTI_INPUT, ArrayDataset, Benchmark, TaskSpec

__all__ = ["PROPERTIES", "make_qm9", "generate_molecule", "molecule_properties"]

PROPERTIES = ("mu", "alpha", "homo", "lumo", "gap", "r2", "zpve", "u0", "u298", "h298", "g298")

_NUM_ATOM_TYPES = 4  # H, C, N, O stand-ins
_ATOM_MASSES = np.array([1.0, 12.0, 14.0, 16.0])
_MAX_NODES = 12


def generate_molecule(rng: np.random.Generator, min_atoms: int = 4, max_atoms: int = _MAX_NODES) -> nx.Graph:
    """One random molecule-like graph: a bounded-degree tree + ring closures.

    Grown by random attachment with a valence cap of 4 on every node, then
    0–2 ring-closing edges added where the cap allows.
    """
    n = int(rng.integers(min_atoms, max_atoms + 1))
    graph = nx.Graph()
    graph.add_node(0)
    for node in range(1, n):
        candidates = [v for v in graph.nodes if graph.degree[v] < 4]
        parent = int(candidates[rng.integers(0, len(candidates))])
        graph.add_node(node)
        graph.add_edge(parent, node)
    # Close a few rings where degree allows (valence cap 4).
    for _ in range(int(rng.integers(0, 3))):
        u, v = rng.integers(0, n, size=2)
        if u != v and not graph.has_edge(u, v):
            if graph.degree[u] < 4 and graph.degree[v] < 4:
                graph.add_edge(int(u), int(v))
    types = rng.integers(0, _NUM_ATOM_TYPES, size=n)
    for node in graph.nodes:
        graph.nodes[node]["atom_type"] = int(types[node])
    return graph


def molecule_properties(graph: nx.Graph) -> np.ndarray:
    """The 11 raw graph invariants described in the module docstring."""
    n = graph.number_of_nodes()
    degrees = np.array([d for _, d in graph.degree()], dtype=np.float64)
    types = np.array([graph.nodes[v]["atom_type"] for v in graph.nodes])
    masses = _ATOM_MASSES[types]
    adjacency = nx.to_numpy_array(graph)
    eigenvalues = np.sort(np.linalg.eigvalsh(adjacency))
    laplacian = np.diag(degrees) - adjacency
    lap_eigs = np.sort(np.linalg.eigvalsh(laplacian))
    path_lengths = dict(nx.all_pairs_shortest_path_length(graph))
    mean_distance = np.mean(
        [length for src in path_lengths.values() for length in src.values()]
    )
    degree_probs = degrees / degrees.sum()
    entropy = -np.sum(degree_probs * np.log(degree_probs + 1e-12))
    rings = graph.number_of_edges() - n + nx.number_connected_components(graph)
    u0 = float(masses.sum())
    return np.array(
        [
            float(np.abs(masses - masses.mean()).mean() * degrees.std()),  # mu
            float((degrees**2).sum()),  # alpha
            -float(eigenvalues[-1]),  # homo
            float(eigenvalues[-2]) if n > 1 else 0.0,  # lumo
            float(eigenvalues[-1] - eigenvalues[-2]) if n > 1 else 0.0,  # gap
            float(mean_distance**2),  # r2
            float(graph.number_of_edges()),  # zpve
            u0,  # u0
            u0 + float(entropy),  # u298
            u0 + float(rings),  # h298
            u0 - float(lap_eigs[1]) if n > 1 else u0,  # g298
        ]
    )


def _pad_graphs(graphs: list[nx.Graph]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense padded batch: node features, normalized adjacency, node mask."""
    batch = len(graphs)
    features = np.zeros((batch, _MAX_NODES, _NUM_ATOM_TYPES + 1))
    adjacency = np.zeros((batch, _MAX_NODES, _MAX_NODES))
    mask = np.zeros((batch, _MAX_NODES))
    for b, graph in enumerate(graphs):
        n = graph.number_of_nodes()
        adjacency[b, :n, :n] = nx.to_numpy_array(graph)
        for v in graph.nodes:
            features[b, v, graph.nodes[v]["atom_type"]] = 1.0
            features[b, v, -1] = graph.degree[v] / 4.0
        mask[b, :n] = 1.0
    return features, normalize_adjacency(adjacency), mask


def make_qm9(
    properties: tuple[str, ...] = PROPERTIES,
    molecules_per_task: int = 250,
    hidden: tuple[int, ...] = (24, 16),
    noise: float = 0.15,
    val_molecules: int = 40,
    test_molecules: int = 120,
    seed: int = 0,
) -> Benchmark:
    """Build the multi-input molecular-property benchmark.

    ``molecules_per_task`` is the *training* set size per property; the
    validation/test pools are sized independently (``val_molecules`` /
    ``test_molecules``) so evaluation noise stays small even in the
    scarce-training-data regimes where MTL's transfer advantage shows.
    """
    unknown = set(properties) - set(PROPERTIES)
    if unknown:
        raise ValueError(f"unknown properties: {sorted(unknown)}")
    rng = np.random.default_rng(seed)

    # One shared pool to fit the standardization, then disjoint per-task sets.
    pool = [generate_molecule(rng) for _ in range(400)]
    pool_targets = np.stack([molecule_properties(g) for g in pool])
    means = pool_targets.mean(axis=0)
    stds = np.maximum(pool_targets.std(axis=0), 1e-9)

    def _labelled_dataset(count: int, prop_index: int, with_noise: bool) -> ArrayDataset:
        graphs = [generate_molecule(rng) for _ in range(count)]
        raw = np.array([molecule_properties(g)[prop_index] for g in graphs])
        targets = (raw - means[prop_index]) / stds[prop_index]
        if with_noise:
            targets = targets + noise * rng.normal(size=len(targets))
        features, adjacency, mask = _pad_graphs(graphs)
        return ArrayDataset((features, adjacency, mask), targets)

    train, val, test = {}, {}, {}
    for prop in properties:
        prop_index = PROPERTIES.index(prop)
        train[prop] = _labelled_dataset(molecules_per_task, prop_index, with_noise=True)
        val[prop] = _labelled_dataset(val_molecules, prop_index, with_noise=False)
        test[prop] = _labelled_dataset(test_molecules, prop_index, with_noise=False)

    tasks = [
        TaskSpec(
            prop,
            mse_loss,
            {"mae": lambda o, t: mae(o, t), "rmse": lambda o, t: rmse(o, t)},
            {"mae": False, "rmse": False},
        )
        for prop in properties
    ]

    in_features = _NUM_ATOM_TYPES + 1

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        if architecture != "hps":
            raise ValueError("qm9 reproduction uses the paper's GCN + HPS stack only")
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = GCNEncoder(in_features, list(hidden), model_rng)
        heads = {prop: LinearHead(hidden[-1], 1, model_rng) for prop in properties}
        return HardParameterSharing(encoder, heads)

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        encoder = GCNEncoder(in_features, list(hidden), model_rng)
        return HardParameterSharing(encoder, {task_name: LinearHead(hidden[-1], 1, model_rng)})

    return Benchmark(
        name="qm9",
        mode=MULTI_INPUT,
        tasks=tasks,
        train=train,
        val=val,
        test=test,
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={"properties": tuple(properties), "noise": noise},
    )
