"""Latent task-factor toolkit for the synthetic benchmark generators.

Every synthetic dataset in this reproduction controls *how related its tasks
are* through a shared latent construction: each task owns a ground-truth
direction in a common latent space, and the pairwise angles between task
directions set the conflict level.  Small angles → related tasks (joint
training helps); large angles → conflicting tasks (joint training hurts,
positive TCI).  This is the dial that lets the synthetic benchmarks
reproduce the conflict geometry of the real datasets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["task_directions", "correlated_task_matrix", "orthogonal_complement_mix"]


def task_directions(
    num_tasks: int,
    dim: int,
    relatedness: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Unit task directions with controlled mutual similarity.

    Each direction is ``√r · c + √(1−r) · u_k`` (renormalized) for a common
    unit vector ``c`` and independent unit vectors ``u_k``;
    ``relatedness`` r ∈ [0, 1] moves tasks from independent (0) to identical
    (1).  Expected pairwise cosine grows monotonically with r.
    """
    if not 0.0 <= relatedness <= 1.0:
        raise ValueError("relatedness must be in [0, 1]")
    if dim < 2:
        raise ValueError("need at least a 2-dimensional latent space")
    common = rng.normal(size=dim)
    common /= np.linalg.norm(common)
    directions = np.empty((num_tasks, dim))
    for k in range(num_tasks):
        unique = rng.normal(size=dim)
        unique /= np.linalg.norm(unique)
        mixed = np.sqrt(relatedness) * common + np.sqrt(1.0 - relatedness) * unique
        directions[k] = mixed / np.linalg.norm(mixed)
    return directions


def correlated_task_matrix(
    num_tasks: int,
    dim: int,
    correlation: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Task directions with an explicit target Gram (correlation) matrix.

    ``correlation`` is a ``(K, K)`` positive-semidefinite matrix with unit
    diagonal; the returned rows have (exactly) these pairwise inner
    products, embedded into ``dim`` dimensions via a random orthonormal
    frame.
    """
    correlation = np.asarray(correlation, dtype=np.float64)
    if correlation.shape != (num_tasks, num_tasks):
        raise ValueError("correlation must be (K, K)")
    if dim < num_tasks:
        raise ValueError("dim must be at least the number of tasks")
    eigenvalues, eigenvectors = np.linalg.eigh(correlation)
    if eigenvalues.min() < -1e-8:
        raise ValueError("correlation matrix must be positive semidefinite")
    root = eigenvectors @ np.diag(np.sqrt(np.clip(eigenvalues, 0.0, None)))
    # Random orthonormal frame (K rows of an orthogonal dim×dim matrix).
    frame, _ = np.linalg.qr(rng.normal(size=(dim, num_tasks)))
    return root @ frame.T  # (K, dim)


def orthogonal_complement_mix(
    base: np.ndarray, cosine: float, rng: np.random.Generator
) -> np.ndarray:
    """A unit vector at an exact angle (given cosine) to unit vector ``base``."""
    if not -1.0 <= cosine <= 1.0:
        raise ValueError("cosine must lie in [-1, 1]")
    base = np.asarray(base, dtype=np.float64)
    base = base / np.linalg.norm(base)
    noise = rng.normal(size=base.shape)
    noise -= (noise @ base) * base
    norm = np.linalg.norm(noise)
    if norm < 1e-12:  # pragma: no cover - astronomically unlikely
        raise RuntimeError("degenerate orthogonal sample")
    noise /= norm
    return cosine * base + np.sqrt(1.0 - cosine**2) * noise
