"""Dataset machinery: task specs, array datasets, loaders, benchmarks.

The paper distinguishes **Single-Input MTL** (all tasks share every training
example — MovieLens scenario batches, NYUv2, CityScapes, AliExpress) from
**Multi-Input MTL** (each task has its own disjoint training data — QM9
properties in the LibMTL setup, Office-Home domains).  Both modes are first
class here:

- single-input: one :class:`ArrayDataset` whose targets are a dict
  ``{task: y}``;
- multi-input: a dict ``{task: ArrayDataset}`` with per-task inputs/targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

import numpy as np

from ..nn.tensor import Tensor

__all__ = [
    "TaskSpec",
    "ArrayDataset",
    "DataLoader",
    "Benchmark",
    "train_val_test_split",
    "batch_count",
    "batch_index_iter",
    "shard_rng",
    "SINGLE_INPUT",
    "MULTI_INPUT",
]

SINGLE_INPUT = "single_input"
MULTI_INPUT = "multi_input"

#: Seed used when neither an ``rng`` nor a ``seed`` is given.  Batch order
#: must always derive from an explicit seed so that runs — and the shard
#: streams data-parallel workers cut from them — are reproducible; an
#: OS-entropy fallback would silently break that contract.
DEFAULT_DATA_SEED = 0


def shard_rng(seed: int, shard_index: int) -> np.random.Generator:
    """Deterministic per-shard generator: ``default_rng(seed + shard_index)``.

    The spawn-safe seeding helper for data-parallel workers: each shard's
    stream is a pure function of ``(seed, shard_index)``, so a worker
    process reconstructs it identically under any start method (fork or
    spawn) without inheriting parent RNG state.  ``seed`` must be explicit
    — reproducibility of worker shards is the whole point.
    """
    if seed is None:
        raise ValueError("shard_rng requires an explicit seed")
    if shard_index < 0:
        raise ValueError(f"shard_index must be ≥ 0; got {shard_index}")
    return np.random.default_rng(int(seed) + int(shard_index))


def batch_count(n: int, batch_size: int, drop_last: bool = False) -> int:
    """Number of batches :func:`batch_index_iter` yields over ``n`` rows.

    The single source of truth for the loader ``__len__`` contract: the
    trailing ``n % batch_size`` rows form one extra partial batch unless
    ``drop_last``.  Streaming loaders apply this per shard (see
    ``repro.data.streaming.streaming_batch_count``) — their totals are NOT
    ``batch_count(total_rows, …)`` because batches never cross shards.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be ≥ 1")
    if n < 0:
        raise ValueError(f"n must be ≥ 0; got {n}")
    return n // batch_size if drop_last else -(-n // batch_size)


def batch_index_iter(
    n: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield per-batch position arrays over ``n`` samples.

    This is the index stream behind :class:`DataLoader` (which yields the
    materialized batches) and the parallel sharder (which splits each index
    array across workers) — both consume the *same* generator calls, so a
    sequential loader and a sharded run over the same ``rng`` see identical
    batch order.
    """
    order = np.arange(n)
    if shuffle:
        (rng if rng is not None else np.random.default_rng(DEFAULT_DATA_SEED)).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.size < batch_size:
            break
        yield idx


@dataclass
class TaskSpec:
    """Everything the trainer needs to know about one task.

    Attributes
    ----------
    name:
        Unique task identifier (e.g. ``"ES_CTR"``, ``"segmentation"``).
    loss_fn:
        ``(raw_model_output: Tensor, targets: ndarray) -> scalar Tensor``.
    metrics:
        Metric name → ``(raw_outputs: ndarray, targets: ndarray) -> float``;
        each metric closure applies its own output transform (sigmoid,
        argmax, …).
    higher_is_better:
        Metric name → direction, used for ΔM (Eq. 27).
    """

    name: str
    loss_fn: Callable[[Tensor, np.ndarray], Tensor]
    metrics: dict[str, Callable[[np.ndarray, np.ndarray], float]] = field(default_factory=dict)
    higher_is_better: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.metrics) - set(self.higher_is_better)
        if missing:
            raise ValueError(f"task {self.name!r}: metrics missing direction: {sorted(missing)}")


def _index_inputs(inputs, idx: np.ndarray):
    """Index array / tuple-of-arrays inputs by a position array."""
    if isinstance(inputs, tuple):
        return tuple(part[idx] for part in inputs)
    return inputs[idx]


class ArrayDataset:
    """In-memory dataset of (inputs, targets).

    ``inputs`` is an ndarray or a tuple of aligned ndarrays (e.g. graph
    batches ``(nodes, adjacency, mask)``); ``targets`` is an ndarray
    (single task) or a dict ``{task: ndarray}`` (single-input MTL).
    """

    def __init__(self, inputs, targets) -> None:
        self.inputs = inputs
        self.targets = targets
        length = len(inputs[0]) if isinstance(inputs, tuple) else len(inputs)
        if isinstance(targets, Mapping):
            for name, target in targets.items():
                if len(target) != length:
                    raise ValueError(f"target {name!r} length {len(target)} != inputs {length}")
        elif len(targets) != length:
            raise ValueError(f"targets length {len(targets)} != inputs {length}")
        self._length = length

    def __len__(self) -> int:
        return self._length

    def batch(self, idx: np.ndarray):
        """Return ``(inputs[idx], targets[idx])`` (dicts indexed per task)."""
        idx = np.asarray(idx)
        inputs = _index_inputs(self.inputs, idx)
        if isinstance(self.targets, Mapping):
            targets = {name: target[idx] for name, target in self.targets.items()}
        else:
            targets = self.targets[idx]
        return inputs, targets

    def subset(self, idx: np.ndarray) -> "ArrayDataset":
        """A new dataset restricted to the given positions."""
        inputs, targets = self.batch(np.asarray(idx))
        return ArrayDataset(inputs, targets)

    def all(self):
        """The full dataset as one batch."""
        return self.batch(np.arange(self._length))


class DataLoader:
    """Minibatch iterator with optional shuffling.

    Each ``iter()`` re-shuffles with the loader's generator, so epochs see
    different orders while remaining reproducible from the seed.  When no
    ``rng`` is given the generator derives from ``seed`` (default
    :data:`DEFAULT_DATA_SEED`) — never from OS entropy, so two loaders
    built with the same arguments always walk the same batch order.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be ≥ 1")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng(DEFAULT_DATA_SEED if seed is None else seed)
        )

    def __len__(self) -> int:
        return batch_count(len(self.dataset), self.batch_size, self.drop_last)

    def __iter__(self) -> Iterator:
        for idx in batch_index_iter(
            len(self.dataset),
            self.batch_size,
            rng=self.rng,
            shuffle=self.shuffle,
            drop_last=self.drop_last,
        ):
            yield self.dataset.batch(idx)


def train_val_test_split(
    n: int,
    rng: np.random.Generator,
    val_fraction: float = 0.1,
    test_fraction: float = 0.1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random index split into train/val/test."""
    if val_fraction + test_fraction >= 1.0:
        raise ValueError("val + test fractions must leave room for training data")
    order = rng.permutation(n)
    num_test = int(round(n * test_fraction))
    num_val = int(round(n * val_fraction))
    test = order[:num_test]
    val = order[num_test : num_test + num_val]
    train = order[num_test + num_val :]
    return train, val, test


@dataclass
class Benchmark:
    """One reproduction benchmark: tasks + splits + model factories.

    ``mode`` is :data:`SINGLE_INPUT` or :data:`MULTI_INPUT`; splits are
    :class:`ArrayDataset` (single-input) or ``{task: ArrayDataset}``
    (multi-input).  ``build_model(architecture, rng)`` constructs the
    paper's network for this dataset under the requested architecture
    (``"hps"`` always supported; CityScapes additionally supports the
    Fig. 7 set).  ``build_stl_model(task, rng)`` builds the single-task
    counterpart used for TCI / ΔM baselines.
    """

    name: str
    mode: str
    tasks: list[TaskSpec]
    train: object
    val: object
    test: object
    build_model: Callable[..., object]
    build_stl_model: Callable[..., object]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in (SINGLE_INPUT, MULTI_INPUT):
            raise ValueError(f"mode must be {SINGLE_INPUT!r} or {MULTI_INPUT!r}")

    @property
    def task_names(self) -> list[str]:
        return [task.name for task in self.tasks]

    def task(self, name: str) -> TaskSpec:
        """Look up one task specification by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task {name!r}")
