"""Write-once ``np.memmap`` shard cache with a validated binary header.

Each cached shard is one file keyed by ``(cache_key, seed, shard_index)``
so repeated epochs and repeated benchmark runs pay generation cost once.

File format (little-endian)::

    bytes 0..8    MAGIC  b"RSHARD01"  (version is part of the magic)
    bytes 8..16   header length H as uint64
    bytes 16..16+H  JSON header (utf-8):
        {"version": 1, "key": ..., "seed": ..., "shard": ...,
         "inputs": <structure spec>, "targets": <structure spec>,
         "arrays": [{"dtype": "<f8", "shape": [...],
                     "offset": ..., "nbytes": ...}, ...],
         "payload_bytes": ...}
    bytes 16+H..  raw array payload (C-order, concatenated)

Structure specs record how the flat array list reassembles into the
``(inputs, targets)`` pair: ``{"kind": "array", "index": i}``,
``{"kind": "tuple", "indices": [...]}`` or
``{"kind": "mapping", "names": [...], "indices": [...]}``.

Robustness contract (the satellite bugfix): a cache file is *never*
silently trusted.  ``load`` validates magic, version, key/seed/shard
match, header integrity, and that every array's ``offset + nbytes`` fits
the actual file size — any mismatch (torn write, truncation, stale
schema, hash collision) returns ``None`` and best-effort deletes the
file so the caller regenerates and rewrites it.  Writes are atomic:
payload goes to a same-directory temp file, is flushed + fsynced, then
``os.replace``d into place — a writer killed mid-flush leaves only a
temp file that no reader ever opens.

Loaded arrays are read-only ``np.memmap`` views, so a "loaded" shard
costs address space, not resident memory, until its pages are touched —
and fancy-indexed batches copy out of it just like a normal ndarray.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Mapping

import numpy as np

__all__ = ["ShardCache", "MAGIC", "CACHE_VERSION"]

MAGIC = b"RSHARD01"
CACHE_VERSION = 1
_HEADER_LEN_FMT = "<Q"
_HEADER_LEN_SIZE = struct.calcsize(_HEADER_LEN_FMT)
#: Upper bound on the JSON header; anything larger is corrupt.
_MAX_HEADER_BYTES = 1 << 20


def _flatten(struct_value, arrays: list[np.ndarray]) -> dict:
    """Append the structure's arrays to ``arrays``; return its spec."""
    if isinstance(struct_value, tuple):
        indices = []
        for part in struct_value:
            indices.append(len(arrays))
            arrays.append(np.ascontiguousarray(part))
        return {"kind": "tuple", "indices": indices}
    if isinstance(struct_value, Mapping):
        names, indices = [], []
        for name in struct_value:
            names.append(str(name))
            indices.append(len(arrays))
            arrays.append(np.ascontiguousarray(struct_value[name]))
        return {"kind": "mapping", "names": names, "indices": indices}
    index = len(arrays)
    arrays.append(np.ascontiguousarray(struct_value))
    return {"kind": "array", "index": index}


def _reassemble(spec: dict, arrays: list[np.ndarray]):
    kind = spec["kind"]
    if kind == "tuple":
        return tuple(arrays[i] for i in spec["indices"])
    if kind == "mapping":
        return {name: arrays[i] for name, i in zip(spec["names"], spec["indices"])}
    if kind == "array":
        return arrays[spec["index"]]
    raise ValueError(f"unknown structure kind {kind!r}")


class ShardCache:
    """Filesystem cache of generated shards under one directory.

    Thread- and process-safe by construction: files are written once via
    atomic rename, and concurrent writers for the same key produce
    byte-identical content (shards are pure functions of
    ``(seed, shard)``), so whichever rename lands last changes nothing.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str, seed: int, index: int) -> Path:
        """Cache file path for one ``(cache_key, seed, shard)`` triple."""
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]
        return self.directory / f"{digest}_s{int(seed)}_{int(index):06d}.shard"

    # -- read ------------------------------------------------------------
    def load(self, key: str, seed: int, index: int):
        """Return ``(inputs, targets)`` memmap views, or ``None``.

        ``None`` means "not cached or not trustworthy" — the caller
        regenerates.  Invalid files are deleted so the rewrite path runs.
        """
        path = self.path_for(key, seed, index)
        try:
            return self._read(path, key, seed, index)
        except (OSError, ValueError, KeyError, json.JSONDecodeError, struct.error):
            self._discard(path)
            return None

    def _read(self, path: Path, key: str, seed: int, index: int):
        file_size = path.stat().st_size
        with path.open("rb") as fh:
            prefix = fh.read(len(MAGIC) + _HEADER_LEN_SIZE)
            if len(prefix) != len(MAGIC) + _HEADER_LEN_SIZE:
                raise ValueError("truncated prefix")
            if prefix[: len(MAGIC)] != MAGIC:
                raise ValueError("bad magic")
            (header_len,) = struct.unpack(_HEADER_LEN_FMT, prefix[len(MAGIC) :])
            if not 0 < header_len <= _MAX_HEADER_BYTES:
                raise ValueError("implausible header length")
            header_bytes = fh.read(header_len)
            if len(header_bytes) != header_len:
                raise ValueError("truncated header")
        header = json.loads(header_bytes.decode("utf-8"))
        if header["version"] != CACHE_VERSION:
            raise ValueError("version mismatch")
        if (
            header["key"] != key
            or int(header["seed"]) != int(seed)
            or int(header["shard"]) != int(index)
        ):
            raise ValueError("identity mismatch")
        payload_start = len(MAGIC) + _HEADER_LEN_SIZE + header_len
        if file_size != payload_start + int(header["payload_bytes"]):
            raise ValueError("payload size mismatch")
        arrays: list[np.ndarray] = []
        for entry in header["arrays"]:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            nbytes = int(entry["nbytes"])
            offset = payload_start + int(entry["offset"])
            expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
            if nbytes != expected or offset + nbytes > file_size:
                raise ValueError("array descriptor out of bounds")
            arrays.append(
                np.memmap(path, mode="r", dtype=dtype, shape=shape, offset=offset)
            )
        return (
            _reassemble(header["inputs"], arrays),
            _reassemble(header["targets"], arrays),
        )

    # -- write -----------------------------------------------------------
    def store(self, key: str, seed: int, index: int, inputs, targets) -> Path:
        """Write the shard (write-once: an existing valid file is kept)."""
        path = self.path_for(key, seed, index)
        if path.exists():
            return path
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                self._write_to(fh, key, seed, index, inputs, targets)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _write_to(fh, key: str, seed: int, index: int, inputs, targets) -> None:
        """Serialize one shard to an open binary file (no atomicity).

        Split out so the torn-write test can kill a process midway
        through this exact code path against a final-named file.
        """
        arrays: list[np.ndarray] = []
        inputs_spec = _flatten(inputs, arrays)
        targets_spec = _flatten(targets, arrays)
        entries, offset = [], 0
        for arr in arrays:
            entries.append(
                {
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "offset": offset,
                    "nbytes": int(arr.nbytes),
                }
            )
            offset += int(arr.nbytes)
        header = json.dumps(
            {
                "version": CACHE_VERSION,
                "key": key,
                "seed": int(seed),
                "shard": int(index),
                "inputs": inputs_spec,
                "targets": targets_spec,
                "arrays": entries,
                "payload_bytes": offset,
            }
        ).encode("utf-8")
        fh.write(MAGIC)
        fh.write(struct.pack(_HEADER_LEN_FMT, len(header)))
        fh.write(header)
        for arr in arrays:
            fh.write(arr.tobytes())

    # -- maintenance -----------------------------------------------------
    def discard(self, key: str, seed: int, index: int) -> None:
        """Drop one cached shard so the next load regenerates it.

        For callers that detect a structurally valid but semantically
        wrong entry (e.g. a row count that no longer matches the source's
        shard layout because the cache key under-specified the
        distribution).
        """
        self._discard(self.path_for(key, seed, index))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
