"""Synthetic AliExpress-style click logs (Table I, Fig. 8).

The real dataset holds search-traffic logs from five countries with two
binary prediction tasks per country: CTR (click-through) and CTCVR
(click *and* convert).  This generator reproduces the statistical structure
the experiment depends on:

- categorical records (user / item / category / position / device fields)
  whose values carry ground-truth latent vectors;
- a **conversion funnel**: conversions only happen on clicked records, so
  the CTCVR label is ``click · convert`` and is strictly rarer than CTR —
  the same label nesting and class imbalance as the real logs;
- **partially related tasks**: the CTR and CVR ground-truth directions share
  a controlled latent angle, so their gradients genuinely conflict during
  joint training;
- four country scenarios (ES / FR / NL / US) drawn with different latent
  rotations, base rates and sample sizes.

Each scenario is a 2-task single-input benchmark (both tasks read the same
records), matching the LibMTL AliExpress setup the paper builds on.
"""

from __future__ import annotations

import numpy as np

from ..arch.cgc import CGC
from ..arch.encoders import TabularEncoder
from ..arch.heads import LinearHead
from ..arch.hps import HardParameterSharing
from ..arch.mmoe import MMoE
from ..metrics.classification import roc_auc
from ..nn.functional import bce_with_logits
from ..nn.tensor import Tensor
from .base import SINGLE_INPUT, ArrayDataset, Benchmark, TaskSpec, train_val_test_split
from .latent import task_directions

__all__ = ["COUNTRIES", "make_aliexpress", "make_aliexpress_suite"]

COUNTRIES = ("ES", "FR", "NL", "US")

#: (base CTR, conversion rate among clicks, country seed offset)
_COUNTRY_PROFILES = {
    "ES": (0.30, 0.35, 11),
    "FR": (0.28, 0.30, 23),
    "NL": (0.26, 0.32, 37),
    "US": (0.24, 0.28, 53),
}

_FIELD_SIZES = (40, 60, 12, 8, 4)  # user, item, category, position, device
_LATENT_DIM = 12


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _generate_logs(
    num_records: int,
    relatedness: float,
    base_ctr: float,
    cvr_rate: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample records and the nested click / click-and-convert labels."""
    field_latents = [rng.normal(scale=1.0, size=(size, _LATENT_DIM)) for size in _FIELD_SIZES]
    records = np.stack(
        [rng.integers(0, size, size=num_records) for size in _FIELD_SIZES], axis=1
    )
    latents = sum(
        table[records[:, i]] for i, table in enumerate(field_latents)
    ) / np.sqrt(len(_FIELD_SIZES))
    directions = task_directions(2, _LATENT_DIM, relatedness, rng)
    ctr_score = latents @ directions[0] + 0.3 * rng.normal(size=num_records)
    cvr_score = latents @ directions[1] + 0.3 * rng.normal(size=num_records)
    # Center scores so the base rates land where the profile says.
    ctr_bias = np.quantile(ctr_score, 1.0 - base_ctr)
    cvr_bias = np.quantile(cvr_score, 1.0 - cvr_rate)
    clicks = (rng.random(num_records) < _sigmoid(2.5 * (ctr_score - ctr_bias))).astype(
        np.float64
    )
    conversions = (rng.random(num_records) < _sigmoid(2.5 * (cvr_score - cvr_bias))).astype(
        np.float64
    )
    ctcvr = clicks * conversions  # conversion only counts on a click
    return records, clicks, ctcvr


def _task_specs() -> list[TaskSpec]:
    """The CTR / CTCVR task pair (shared by eager and streaming builders)."""

    def auc_metric(outputs: np.ndarray, labels: np.ndarray) -> float:
        return roc_auc(_sigmoid(outputs), labels)

    return [
        TaskSpec("CTR", bce_with_logits, {"auc": auc_metric}, {"auc": True}),
        TaskSpec("CTCVR", bce_with_logits, {"auc": auc_metric}, {"auc": True}),
    ]


def _model_factories(embedding_dim: int, hidden: tuple[int, ...], seed: int):
    """``(build_model, build_stl_model)`` closures over the architecture knobs.

    Consumes no RNG draws at definition time, so extracting this from the
    eager builder leaves its datasets byte-identical.
    """

    def _encoder(model_rng: np.random.Generator) -> TabularEncoder:
        return TabularEncoder(_FIELD_SIZES, embedding_dim, list(hidden), model_rng)

    def _gate_input(x) -> Tensor:
        scaled = np.asarray(x, dtype=np.float64) / np.asarray(_FIELD_SIZES)
        return Tensor(scaled)

    def build_model(architecture: str = "hps", model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        out = hidden[-1]
        heads = {name: LinearHead(out, 1, model_rng) for name in ("CTR", "CTCVR")}
        if architecture == "hps":
            return HardParameterSharing(_encoder(model_rng), heads)
        if architecture == "mmoe":
            return MMoE(
                lambda: _encoder(model_rng),
                num_experts=3,
                heads=heads,
                gate_in_features=len(_FIELD_SIZES),
                rng=model_rng,
                gate_input_fn=_gate_input,
            )
        if architecture == "cgc":
            return CGC(
                lambda: _encoder(model_rng),
                num_shared_experts=2,
                num_task_experts=1,
                heads=heads,
                gate_in_features=len(_FIELD_SIZES),
                rng=model_rng,
                gate_input_fn=_gate_input,
            )
        if architecture == "ple":
            from ..arch.ple import PLE
            from ..nn.layers import MLP as _MLP

            def _vector_gate(x):
                if isinstance(x, Tensor):
                    return x
                return _gate_input(x)

            return PLE(
                [
                    lambda: _encoder(model_rng),
                    lambda: _MLP(out, [out], out, model_rng),
                ],
                num_shared_experts=2,
                num_task_experts=1,
                heads=heads,
                gate_in_features=[len(_FIELD_SIZES), out],
                rng=model_rng,
                gate_input_fn=_vector_gate,
            )
        raise ValueError(f"aliexpress supports hps/mmoe/cgc/ple; got {architecture!r}")

    def build_stl_model(task_name: str, model_rng: np.random.Generator | None = None):
        model_rng = model_rng or np.random.default_rng(seed)
        head = {task_name: LinearHead(hidden[-1], 1, model_rng)}
        return HardParameterSharing(_encoder(model_rng), head)

    return build_model, build_stl_model


def make_aliexpress(
    country: str = "ES",
    num_records: int = 4000,
    relatedness: float = 0.35,
    embedding_dim: int = 8,
    hidden: tuple[int, ...] = (32, 16),
    seed: int = 0,
) -> Benchmark:
    """Build the 2-task (CTR, CTCVR) benchmark for one country scenario."""
    if country not in _COUNTRY_PROFILES:
        raise ValueError(f"country must be one of {COUNTRIES}")
    base_ctr, cvr_rate, offset = _COUNTRY_PROFILES[country]
    rng = np.random.default_rng(seed + offset)
    records, clicks, ctcvr = _generate_logs(num_records, relatedness, base_ctr, cvr_rate, rng)

    train_idx, val_idx, test_idx = train_val_test_split(num_records, rng)
    targets = {"CTR": clicks, "CTCVR": ctcvr}
    full = ArrayDataset(records, targets)

    tasks = _task_specs()
    build_model, build_stl_model = _model_factories(embedding_dim, hidden, seed)

    return Benchmark(
        name=f"aliexpress-{country}",
        mode=SINGLE_INPUT,
        tasks=tasks,
        train=full.subset(train_idx),
        val=full.subset(val_idx),
        test=full.subset(test_idx),
        build_model=build_model,
        build_stl_model=build_stl_model,
        metadata={
            "country": country,
            "base_ctr": base_ctr,
            "cvr_rate": cvr_rate,
            "relatedness": relatedness,
        },
    )


def make_aliexpress_suite(
    num_records: int = 4000, seed: int = 0, **kwargs
) -> dict[str, Benchmark]:
    """All four country scenarios of Table I."""
    return {
        country: make_aliexpress(country, num_records=num_records, seed=seed, **kwargs)
        for country in COUNTRIES
    }
