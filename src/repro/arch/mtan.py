"""MTAN — Multi-Task Attention Network (Liu et al., CVPR 2019).

A single shared backbone plus per-task attention sub-networks: at each
backbone stage s, task t computes a soft mask from the concatenation of the
stage output and its previous attended feature,

    a_t^s = σ(h_t^s([f^s ; a_t^{s−1}])) ⊙ f^s,

so each task selects the shared features relevant to it.  The backbone is
shared; attention modules and heads are task-specific.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, concat
from .base import MTLModel

__all__ = ["MTAN", "VectorAttention", "ConvAttention"]


class VectorAttention(Module):
    """Attention gate over vector features: σ(Linear([f; a])).

    ``previous_dim`` is the width of the previous attended feature (the
    previous stage's output width); defaults to ``feature_dim`` for the
    first stage, where the previous feature is the stage output itself.
    """

    def __init__(
        self,
        feature_dim: int,
        rng: np.random.Generator,
        previous_dim: int | None = None,
    ) -> None:
        super().__init__()
        from ..nn.layers import Linear

        previous_dim = feature_dim if previous_dim is None else previous_dim
        self.gate = Linear(feature_dim + previous_dim, feature_dim, rng)

    def forward(self, stage_output: Tensor, previous: Tensor) -> Tensor:
        mask = self.gate(concat([stage_output, previous], axis=-1)).sigmoid()
        return mask * stage_output


class ConvAttention(Module):
    """Attention gate over conv feature maps: σ(1×1 conv on [f; a]).

    ``previous`` may have the previous stage's spatial size; it is pooled
    2× when larger than the current stage output.
    """

    def __init__(self, channels: int, previous_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        from ..nn.conv import Conv2d, MaxPool2d

        self.gate = Conv2d(channels + previous_channels, channels, 1, rng)
        self._pool = MaxPool2d(2)

    def forward(self, stage_output: Tensor, previous: Tensor) -> Tensor:
        while previous.shape[2] > stage_output.shape[2]:
            previous = self._pool(previous)
        mask = self.gate(concat([stage_output, previous], axis=1)).sigmoid()
        return mask * stage_output


class MTAN(MTLModel):
    """Shared backbone with per-task attention streams.

    Parameters
    ----------
    backbone_stages:
        Modules forming the shared trunk, applied in order.
    attention_factories:
        One factory per stage and task: ``attention_factories[s]()`` builds
        the stage-s attention module for one task (modules take
        ``(stage_output, previous_attended)``).
    heads:
        Task name → head over the final attended feature.
    """

    def __init__(
        self,
        backbone_stages: Sequence[Module],
        attention_factories: Sequence[Callable[[], Module]],
        heads: dict[str, Module],
    ) -> None:
        super().__init__(list(heads))
        if len(attention_factories) != len(backbone_stages):
            raise ValueError("need one attention factory per backbone stage")
        self.backbone = ModuleList(list(backbone_stages))
        self.attentions = {
            task: ModuleList([factory() for factory in attention_factories])
            for task in self.task_names
        }
        self.heads = heads

    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        yield from self.backbone.named_parameters(f"{pre}backbone")
        for task in self.task_names:
            yield from self.attentions[task].named_parameters(f"{pre}attentions.{task}")
            yield from self.heads[task].named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        yield from self.backbone.modules()
        for task in self.task_names:
            yield from self.attentions[task].modules()
            yield from self.heads[task].modules()

    # ------------------------------------------------------------------
    def _streams(self, x) -> dict[str, Tensor]:
        attended = {}
        current = x
        for stage_index, stage in enumerate(self.backbone):
            current = stage(current)
            for task in self.task_names:
                previous = attended.get(task, current)
                attended[task] = self.attentions[task][stage_index](current, previous)
        return attended

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        return self.heads[task](self._streams(x)[task])

    def forward_all(self, x) -> dict[str, Tensor]:
        streams = self._streams(x)
        return {task: self.heads[task](streams[task]) for task in self.task_names}

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        return self.backbone.parameters()

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        return self.attentions[task].parameters() + self.heads[task].parameters()
