"""``repro.arch`` — multi-task network architectures.

The paper's §VI-B architecture study covers hard-parameter sharing (HPS),
Cross-stitch, MTAN, MMoE and CGC; all five are implemented against the
:class:`~repro.arch.base.MTLModel` interface, which exposes the
shared/task-specific parameter split that gradient balancing needs.
"""

from .base import MTLModel
from .cgc import CGC
from .cross_stitch import CrossStitch
from .encoders import BSTEncoder, ConvEncoder, GCNEncoder, MLPEncoder, TabularEncoder
from .factory import (
    MLP_ARCHITECTURES,
    TABULAR_ARCHITECTURES,
    build_mlp_model,
    build_tabular_model,
)
from .heads import DenseHead, LinearHead, MLPHead
from .hps import HardParameterSharing
from .mmoe import MMoE
from .mtan import MTAN, ConvAttention, VectorAttention
from .ple import PLE

__all__ = [
    "MTLModel",
    "HardParameterSharing",
    "MMoE",
    "CrossStitch",
    "MTAN",
    "VectorAttention",
    "ConvAttention",
    "CGC",
    "PLE",
    "MLPEncoder",
    "TabularEncoder",
    "ConvEncoder",
    "GCNEncoder",
    "BSTEncoder",
    "LinearHead",
    "MLPHead",
    "DenseHead",
    "MLP_ARCHITECTURES",
    "TABULAR_ARCHITECTURES",
    "build_mlp_model",
    "build_tabular_model",
]

ARCHITECTURES = ("hps", "cross_stitch", "mtan", "mmoe", "cgc")
