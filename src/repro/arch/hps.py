"""Hard-parameter sharing (HPS) — the paper's primary architecture.

A single shared encoder feeds per-task heads:

    z = F_sh(x; θ_sh),    ŷ_k = F_k(z; θ_k).

All tasks read the identical intermediate feature ``z``, which is exactly
the setting where task-gradient conflicts arise on θ_sh (paper Fig. 3 left).
"""

from __future__ import annotations

from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from .base import MTLModel

__all__ = ["HardParameterSharing"]


class HardParameterSharing(MTLModel):
    """Shared encoder + per-task heads."""

    def __init__(self, encoder: Module, heads: dict[str, Module]) -> None:
        super().__init__(list(heads))
        self.encoder = encoder
        self.heads = heads

    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        yield from self.encoder.named_parameters(f"{pre}encoder")
        for task, head in self.heads.items():
            yield from head.named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        yield from self.encoder.modules()
        for head in self.heads.values():
            yield from head.modules()

    # ------------------------------------------------------------------
    def shared_features(self, x) -> Tensor:
        return self.encoder(x)

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        return self.heads[task](self.encoder(x))

    def forward_all(self, x) -> dict[str, Tensor]:
        features = self.encoder(x)
        return {task: self.heads[task](features) for task in self.task_names}

    def forward_heads(self, features: Tensor, x=None) -> dict[str, Tensor]:
        """Apply all heads to a precomputed representation.

        Used by the trainer's feature-level gradient mode: the caller
        detaches ``features`` so per-task backward stops at the
        representation.  ``x`` is unused (heads read only ``z``).
        """
        return {task: self.heads[task](features) for task in self.task_names}

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        return self.encoder.parameters()

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        return self.heads[task].parameters()
