"""Shared encoders used by the six benchmark reproductions.

Each dataset family gets the encoder the paper describes, at laptop scale:

- :class:`MLPEncoder` — embedding-free tabular encoder (AliExpress uses an
  embedding layer + 2-layer MLP; see :class:`TabularEncoder`).
- :class:`TabularEncoder` — categorical embeddings + MLP (AliExpress).
- :class:`ConvEncoder` — staged convolutional backbone (NYUv2/CityScapes
  stand-in for ResNet-50, Office-Home stand-in for ResNet-18) exposing
  ``.stages`` so Cross-stitch/MTAN can interleave per-stage.
- :class:`GCNEncoder` — graph convolutional encoder (QM9).
- :class:`BSTEncoder` — behaviour-sequence transformer (MovieLens).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.attention import TransformerBlock
from ..nn.conv import Conv2d, MaxPool2d
from ..nn.graph import GraphConv, GraphReadout
from ..nn.layers import Embedding, Linear, ReLU, Sequential
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, concat

__all__ = ["MLPEncoder", "TabularEncoder", "ConvEncoder", "GCNEncoder", "BSTEncoder"]


class MLPEncoder(Module):
    """Plain MLP trunk with per-layer stages.

    ``widths`` lists the layer output sizes; the final element is the
    representation dimension ``out_features``.
    """

    def __init__(self, in_features: int, widths: Sequence[int], rng: np.random.Generator) -> None:
        super().__init__()
        if not widths:
            raise ValueError("widths must be non-empty")
        self.in_features = in_features
        self.out_features = widths[-1]
        stages = []
        previous = in_features
        for width in widths:
            stages.append(Sequential(Linear(previous, width, rng), ReLU()))
            previous = width
        self.stages = ModuleList(stages)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        for stage in self.stages:
            x = stage(x)
        return x


class TabularEncoder(Module):
    """Categorical-embedding + MLP encoder for click-log data.

    Input is an integer matrix ``(batch, num_fields)``; each field gets its
    own embedding table (as in the AliExpress stack: embedding layer followed
    by a two-layer MLP as task-shared layers).
    """

    def __init__(
        self,
        field_sizes: Sequence[int],
        embedding_dim: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.field_sizes = list(field_sizes)
        self.embedding_dim = embedding_dim
        self.embeddings = ModuleList(
            [Embedding(size, embedding_dim, rng) for size in field_sizes]
        )
        flat_dim = embedding_dim * len(field_sizes)
        self.mlp = MLPEncoder(flat_dim, list(hidden), rng)
        self.out_features = self.mlp.out_features

    def forward(self, x) -> Tensor:
        x = np.asarray(x, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != len(self.field_sizes):
            raise ValueError(
                f"expected (batch, {len(self.field_sizes)}) integer fields; got {x.shape}"
            )
        embedded = [emb(x[:, i]) for i, emb in enumerate(self.embeddings)]
        return self.mlp(concat(embedded, axis=1))


class ConvEncoder(Module):
    """Staged conv backbone: each stage is conv → ReLU → (optional) pool.

    ``channels`` lists per-stage output channels; ``pools`` marks the stages
    followed by 2× max pooling.  Output is a feature map
    ``(batch, channels[-1], H/2^p, W/2^p)``.
    """

    def __init__(
        self,
        in_channels: int,
        channels: Sequence[int],
        rng: np.random.Generator,
        pools: Sequence[bool] | None = None,
    ) -> None:
        super().__init__()
        if pools is None:
            pools = [True] * len(channels)
        if len(pools) != len(channels):
            raise ValueError("pools must align with channels")
        self.in_channels = in_channels
        self.out_channels = channels[-1]
        self.downsample_factor = 2 ** sum(pools)
        stages = []
        previous = in_channels
        for width, pool in zip(channels, pools):
            layers: list[Module] = [Conv2d(previous, width, 3, rng, padding=1), ReLU()]
            if pool:
                layers.append(MaxPool2d(2))
            stages.append(Sequential(*layers))
            previous = width
        self.stages = ModuleList(stages)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        for stage in self.stages:
            x = stage(x)
        return x


class GCNEncoder(Module):
    """Graph convolutional encoder over dense padded molecule batches.

    Input is a tuple ``(node_features, adjacency, node_mask)`` where the
    adjacency is already symmetric-normalized (see
    :func:`repro.nn.graph.normalize_adjacency`).  Output is one embedding per
    graph.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("hidden must be non-empty")
        self.out_features = hidden[-1]
        convs = []
        previous = in_features
        for width in hidden:
            convs.append(GraphConv(previous, width, rng))
            previous = width
        self.convs = ModuleList(convs)
        self.readout = GraphReadout()

    def forward(self, graph_batch) -> Tensor:
        nodes, adjacency, mask = graph_batch
        if not isinstance(nodes, Tensor):
            nodes = Tensor(nodes)
        for conv in self.convs:
            nodes = conv(nodes, adjacency).relu()
        return self.readout(nodes, mask)


class BSTEncoder(Module):
    """Behaviour-Sequence-Transformer-style encoder (Chen et al., 2019).

    Input is an integer matrix ``(batch, 2 + seq_len)`` laid out as
    ``[user_id, target_item_id, history_item_1, …]``.  History + target item
    embeddings (with learned positions) pass through a transformer block;
    the mean-pooled sequence is concatenated with the user embedding and
    projected to ``out_features``.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        seq_len: int,
        dim: int,
        out_features: int,
        rng: np.random.Generator,
        num_heads: int = 2,
    ) -> None:
        super().__init__()
        self.seq_len = seq_len
        self.out_features = out_features
        self.user_embedding = Embedding(num_users, dim, rng)
        self.item_embedding = Embedding(num_items, dim, rng)
        self.position = Parameter(np.zeros((seq_len + 1, dim)))
        self.block = TransformerBlock(dim, num_heads, rng)
        self.project = Linear(2 * dim, out_features, rng)

    def forward(self, x) -> Tensor:
        x = np.asarray(x, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != 2 + self.seq_len:
            raise ValueError(f"expected (batch, {2 + self.seq_len}) ids; got {x.shape}")
        users = self.user_embedding(x[:, 0])
        sequence = self.item_embedding(x[:, 1:])  # target + history
        sequence = sequence + self.position
        attended = self.block(sequence)
        pooled = attended.mean(axis=1)
        return self.project(concat([pooled, users], axis=1)).relu()
