"""Spec-driven architecture construction for checkpoint reconstruction.

A served model must be rebuildable from nothing but a checkpoint file:
:func:`repro.nn.serialization.save_checkpoint` stores parameter values, and
the metadata block stores a *model spec* — a small JSON-serializable dict
naming a builder here plus its keyword arguments.  The
:class:`repro.serve.ModelRegistry` reads the spec, calls the builder to get
a structurally identical module (same parameter names and shapes), then
loads the saved state over it.

Two builders cover the repo's single-input model families:

- :func:`build_mlp_model` — every architecture in :data:`ARCHITECTURES`
  (plus PLE) over MLP stages and linear heads, the synthetic-benchmark
  model family;
- :func:`build_tabular_model` — the AliExpress family: categorical
  ``TabularEncoder`` trunk under HPS/MMoE/CGC with linear CTR/CTCVR-style
  heads.

Initialization consumes a seeded generator, so rebuilding a spec is
deterministic even before the checkpoint state is applied.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.layers import MLP, Linear, ReLU, Sequential
from ..nn.tensor import Tensor
from .base import MTLModel
from .cgc import CGC
from .cross_stitch import CrossStitch
from .encoders import MLPEncoder, TabularEncoder
from .heads import LinearHead
from .hps import HardParameterSharing
from .mmoe import MMoE
from .mtan import MTAN, VectorAttention
from .ple import PLE

__all__ = ["MLP_ARCHITECTURES", "TABULAR_ARCHITECTURES", "build_mlp_model", "build_tabular_model"]

#: Architectures :func:`build_mlp_model` can assemble.
MLP_ARCHITECTURES = ("hps", "cross_stitch", "mtan", "mmoe", "cgc", "ple")

#: Architectures :func:`build_tabular_model` can assemble.
TABULAR_ARCHITECTURES = ("hps", "mmoe", "cgc")


def _linear_heads(width: int, tasks: Sequence[str], rng: np.random.Generator):
    return {task: LinearHead(width, 1, rng) for task in tasks}


def build_mlp_model(
    architecture: str,
    in_features: int,
    hidden: Sequence[int],
    tasks: Sequence[str],
    seed: int = 0,
) -> MTLModel:
    """Any single-input architecture over MLP stages + linear heads.

    The layer shapes match the synthetic benchmark's models; parameter
    *values* come from ``default_rng(seed)`` and are normally overwritten
    by a checkpoint load immediately after construction.
    """
    if architecture not in MLP_ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {architecture!r}; supported: {MLP_ARCHITECTURES}"
        )
    hidden = [int(width) for width in hidden]
    if not hidden:
        raise ValueError("hidden must be non-empty")
    tasks = list(tasks)
    rng = np.random.default_rng(seed)
    out = hidden[-1]
    heads = _linear_heads(out, tasks, rng)
    if architecture == "hps":
        return HardParameterSharing(MLPEncoder(in_features, hidden, rng), heads)
    if architecture == "mmoe":
        return MMoE(
            lambda: MLPEncoder(in_features, hidden, rng),
            num_experts=3,
            heads=heads,
            gate_in_features=in_features,
            rng=rng,
        )
    if architecture == "cgc":
        return CGC(
            lambda: MLPEncoder(in_features, hidden, rng),
            num_shared_experts=2,
            num_task_experts=1,
            heads=heads,
            gate_in_features=in_features,
            rng=rng,
        )
    if architecture == "cross_stitch":
        factories = []
        previous = in_features
        for width in hidden:
            factories.append(
                lambda p=previous, w=width: Sequential(Linear(p, w, rng), ReLU())
            )
            previous = width
        return CrossStitch(factories, heads)
    if architecture == "mtan":
        stages = []
        previous = in_features
        for width in hidden:
            stages.append(Sequential(Linear(previous, width, rng), ReLU()))
            previous = width
        attention_factories = []
        for i, width in enumerate(hidden):
            prev = width if i == 0 else hidden[i - 1]
            attention_factories.append(
                lambda w=width, p=prev: VectorAttention(w, rng, previous_dim=p)
            )
        return MTAN(stages, attention_factories, heads)
    # ple
    return PLE(
        [
            lambda: MLPEncoder(in_features, hidden, rng),
            lambda: MLP(out, [out], out, rng),
        ],
        num_shared_experts=2,
        num_task_experts=1,
        heads=heads,
        gate_in_features=[in_features, out],
        rng=rng,
        gate_input_fn=lambda x: (
            x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))
        ),
    )


def build_tabular_model(
    architecture: str,
    field_sizes: Sequence[int],
    embedding_dim: int,
    hidden: Sequence[int],
    tasks: Sequence[str],
    seed: int = 0,
) -> MTLModel:
    """The AliExpress model family: categorical trunk + linear heads.

    Input rows are integer field matrices ``(batch, len(field_sizes))``;
    MMoE/CGC gates read the fields scaled into [0, 1) like the AliExpress
    benchmark factories do.
    """
    if architecture not in TABULAR_ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {architecture!r}; supported: {TABULAR_ARCHITECTURES}"
        )
    field_sizes = [int(size) for size in field_sizes]
    hidden = [int(width) for width in hidden]
    tasks = list(tasks)
    rng = np.random.default_rng(seed)

    def _encoder() -> TabularEncoder:
        return TabularEncoder(field_sizes, embedding_dim, hidden, rng)

    def _gate_input(x) -> Tensor:
        scaled = np.asarray(x, dtype=np.float64) / np.asarray(field_sizes)
        return Tensor(scaled)

    heads = _linear_heads(hidden[-1], tasks, rng)
    if architecture == "hps":
        return HardParameterSharing(_encoder(), heads)
    if architecture == "mmoe":
        return MMoE(
            _encoder,
            num_experts=3,
            heads=heads,
            gate_in_features=len(field_sizes),
            rng=rng,
            gate_input_fn=_gate_input,
        )
    return CGC(
        _encoder,
        num_shared_experts=2,
        num_task_experts=1,
        heads=heads,
        gate_in_features=len(field_sizes),
        rng=rng,
        gate_input_fn=_gate_input,
    )
