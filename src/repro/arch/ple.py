"""PLE — Progressive Layered Extraction (Tang et al., RecSys 2020).

The multi-level generalization of :class:`~repro.arch.cgc.CGC` (the paper's
architecture study uses the single-level CGC; PLE is provided as the
natural extension).  Each extraction level holds shared experts and
per-task private experts; task gates read the task's current feature and
mix shared + own experts, while a *shared* gate mixes **all** experts to
produce the next level's shared feature:

    f_t^{l} = Σ_{e ∈ S^l ∪ P_t^l} softmax(W_t^l · pool(f_t^{l−1}))_e · E_e(...)
    f_s^{l} = Σ_{e ∈ S^l ∪ P_1^l ∪ … ∪ P_K^l} softmax(W_s^l · pool(f_s^{l−1}))_e · E_e(...)

where shared experts consume ``f_s^{l−1}`` and task experts ``f_t^{l−1}``.
Shared experts and the shared gates are balanced parameters; task experts,
task gates and heads are task-specific.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.functional import softmax
from ..nn.layers import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, stack
from .base import MTLModel
from .mmoe import _pool_input

__all__ = ["PLE"]


class PLE(MTLModel):
    """Progressive layered extraction with ``len(expert_factories)`` levels.

    Parameters
    ----------
    expert_factories:
        One factory per level; level ``l``'s factory builds experts mapping
        level-(l−1) features to level-l features.
    gate_in_features:
        Pooled feature width per level (level 0 reads the raw input).
    num_shared_experts / num_task_experts:
        Expert counts per level (same at every level, as in the original).
    """

    def __init__(
        self,
        expert_factories: Sequence[Callable[[], Module]],
        num_shared_experts: int,
        num_task_experts: int,
        heads: dict[str, Module],
        gate_in_features: Sequence[int],
        rng: np.random.Generator,
        gate_input_fn: Callable[[object], Tensor] | None = None,
    ) -> None:
        super().__init__(list(heads))
        if not expert_factories:
            raise ValueError("need at least one extraction level")
        if len(gate_in_features) != len(expert_factories):
            raise ValueError("gate_in_features must align with expert_factories")
        if num_shared_experts < 1 or num_task_experts < 1:
            raise ValueError("need at least one shared and one task expert per level")
        self.num_levels = len(expert_factories)
        self.shared_experts = [
            ModuleList([factory() for _ in range(num_shared_experts)])
            for factory in expert_factories
        ]
        self.task_experts = {
            task: [
                ModuleList([factory() for _ in range(num_task_experts)])
                for factory in expert_factories
            ]
            for task in self.task_names
        }
        total_task_gate = num_shared_experts + num_task_experts
        total_shared_gate = num_shared_experts + num_task_experts * len(self.task_names)
        self.task_gates = {
            task: ModuleList(
                [Linear(width, total_task_gate, rng) for width in gate_in_features]
            )
            for task in self.task_names
        }
        # As in the original PLE, the final extraction layer is a plain CGC
        # layer: no shared gate (nothing consumes the shared feature after it).
        self.shared_gates = ModuleList(
            [Linear(width, total_shared_gate, rng) for width in gate_in_features[:-1]]
        )
        self.heads = heads
        self.gate_input_fn = gate_input_fn or _pool_input

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        for level, experts in enumerate(self.shared_experts):
            yield from experts.named_parameters(f"{pre}shared_experts.{level}")
        yield from self.shared_gates.named_parameters(f"{pre}shared_gates")
        for task in self.task_names:
            for level, experts in enumerate(self.task_experts[task]):
                yield from experts.named_parameters(f"{pre}task_experts.{task}.{level}")
            yield from self.task_gates[task].named_parameters(f"{pre}task_gates.{task}")
            yield from self.heads[task].named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        for experts in self.shared_experts:
            yield from experts.modules()
        yield from self.shared_gates.modules()
        for task in self.task_names:
            for experts in self.task_experts[task]:
                yield from experts.modules()
            yield from self.task_gates[task].modules()
            yield from self.heads[task].modules()

    # ------------------------------------------------------------------
    @staticmethod
    def _mix(gate_logits: Tensor, outputs: list[Tensor]) -> Tensor:
        gate = softmax(gate_logits, axis=-1)
        stacked = stack(outputs, axis=1)
        weights = gate.reshape(gate.shape + (1,) * (stacked.ndim - 2))
        return (stacked * weights).sum(axis=1)

    def _extract(self, x) -> dict[str, Tensor]:
        shared_feature = x
        task_features = {task: x for task in self.task_names}
        for level in range(self.num_levels):
            shared_outputs = [e(shared_feature) for e in self.shared_experts[level]]
            per_task_outputs = {
                task: [e(task_features[task]) for e in self.task_experts[task][level]]
                for task in self.task_names
            }
            new_task_features = {}
            for task in self.task_names:
                logits = self.task_gates[task][level](
                    self.gate_input_fn(task_features[task])
                )
                new_task_features[task] = self._mix(
                    logits, shared_outputs + per_task_outputs[task]
                )
            if level < self.num_levels - 1:
                all_outputs = shared_outputs + [
                    out for task in self.task_names for out in per_task_outputs[task]
                ]
                shared_logits = self.shared_gates[level](
                    self.gate_input_fn(shared_feature)
                )
                shared_feature = self._mix(shared_logits, all_outputs)
            task_features = new_task_features
        return task_features

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        return self.heads[task](self._extract(x)[task])

    def forward_all(self, x) -> dict[str, Tensor]:
        features = self._extract(x)
        return {task: self.heads[task](features[task]) for task in self.task_names}

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        """Parameters reached by every task's loss.

        Through the shared gates, *all* parameters of non-final levels —
        including other tasks' private experts and gates — feed every
        task's prediction, so only final-level private components are
        genuinely task-exclusive.
        """
        params: list[Parameter] = []
        for experts in self.shared_experts:
            params.extend(experts.parameters())
        params.extend(self.shared_gates.parameters())
        for task in self.task_names:
            for experts in self.task_experts[task][:-1]:
                params.extend(experts.parameters())
            for gate in list(self.task_gates[task])[:-1]:
                params.extend(gate.parameters())
        return params

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        params: list[Parameter] = []
        params.extend(self.task_experts[task][-1].parameters())
        params.extend(self.task_gates[task][-1].parameters())
        params.extend(self.heads[task].parameters())
        return params
