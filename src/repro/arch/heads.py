"""Task-specific heads.

The paper uses light-weight task-specific layers: one-layer MLPs for tabular
and regression tasks and ASPP-style dense decoders for scene understanding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.conv import Conv2d, UpsampleNearest
from ..nn.layers import Linear, ReLU, Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["LinearHead", "MLPHead", "DenseHead"]


class LinearHead(Module):
    """Single linear layer; ``out_features=1`` outputs are squeezed."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.out_features = out_features
        self.linear = Linear(in_features, out_features, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.linear(x)
        if self.out_features == 1:
            out = out.reshape(out.shape[0])
        return out


class MLPHead(Module):
    """Hidden-layer head for tasks needing extra capacity."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.out_features = out_features
        layers: list[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng))
            layers.append(ReLU())
            previous = width
        layers.append(Linear(previous, out_features, rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.network(x)
        if self.out_features == 1:
            out = out.reshape(out.shape[0])
        return out


class DenseHead(Module):
    """Dense-prediction decoder: conv → ReLU → upsample → conv.

    Stands in for the paper's ASPP task-specific modules; maps an encoder
    feature map ``(N, C, h, w)`` to per-pixel outputs
    ``(N, out_channels, h·scale, w·scale)``.  For segmentation the channel
    axis holds class logits (moved last by the loss); for depth/normals it
    holds the regression targets.
    """

    def __init__(
        self,
        in_channels: int,
        mid_channels: int,
        out_channels: int,
        scale: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.out_channels = out_channels
        self.scale = scale
        self.reduce = Conv2d(in_channels, mid_channels, 3, rng, padding=1)
        self.upsample = UpsampleNearest(scale) if scale > 1 else None
        self.predict = Conv2d(mid_channels, out_channels, 3, rng, padding=1)

    def forward(self, x: Tensor) -> Tensor:
        x = self.reduce(x).relu()
        if self.upsample is not None:
            x = self.upsample(x)
        return self.predict(x)
