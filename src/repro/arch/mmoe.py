"""MMoE — Multi-gate Mixture-of-Experts (Ma et al., KDD 2018).

A bank of shared experts is mixed per task by a softmax gate:

    y_k = F_k( Σ_e softmax(W_k · pool(x))_e · E_e(x) ).

Experts are shared parameters (their gradients conflict across tasks);
gates and heads are task-specific.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn.functional import softmax
from ..nn.layers import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, stack
from .base import MTLModel

__all__ = ["MMoE"]


def _pool_input(x) -> Tensor:
    """Flatten arbitrary inputs to a ``(batch, features)`` gate input."""
    if not isinstance(x, Tensor):
        x = Tensor(np.asarray(x, dtype=np.float64))
    if x.ndim == 2:
        return x
    if x.ndim == 4:  # images: global average pool
        return x.mean(axis=(2, 3))
    if x.ndim == 3:  # sequences: mean over time
        return x.mean(axis=1)
    raise ValueError(f"cannot derive gate input from shape {x.shape}")


class MMoE(MTLModel):
    """Multi-gate mixture of experts.

    Parameters
    ----------
    expert_factory:
        Builds one expert module (input → representation); called
        ``num_experts`` times.
    heads:
        Task name → head module over the mixed representation.
    gate_in_features:
        Dimension of the pooled gate input (for tabular data, the raw
        feature width).
    gate_input_fn:
        Optional callable mapping the raw batch input to the gate input
        tensor; defaults to :func:`_pool_input` (works for dense arrays).
        Datasets with integer/tuple inputs (click logs, graphs) must supply
        one.
    """

    def __init__(
        self,
        expert_factory: Callable[[], Module],
        num_experts: int,
        heads: dict[str, Module],
        gate_in_features: int,
        rng: np.random.Generator,
        gate_input_fn: Callable[[object], Tensor] | None = None,
    ) -> None:
        super().__init__(list(heads))
        if num_experts < 1:
            raise ValueError("need at least one expert")
        self.experts = ModuleList([expert_factory() for _ in range(num_experts)])
        self.heads = heads
        self.gates = {
            task: Linear(gate_in_features, num_experts, rng) for task in self.task_names
        }
        self.gate_input_fn = gate_input_fn or _pool_input

    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        yield from self.experts.named_parameters(f"{pre}experts")
        for task in self.task_names:
            yield from self.gates[task].named_parameters(f"{pre}gates.{task}")
            yield from self.heads[task].named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        yield from self.experts.modules()
        for task in self.task_names:
            yield from self.gates[task].modules()
            yield from self.heads[task].modules()

    # ------------------------------------------------------------------
    def _mix_stacked(self, x, task: str, stacked: Tensor) -> Tensor:
        gate_logits = self.gates[task](self.gate_input_fn(x))
        gate = softmax(gate_logits, axis=-1)  # (batch, E)
        weights = gate.reshape(gate.shape + (1,) * (stacked.ndim - 2))
        return (stacked * weights).sum(axis=1)

    def _mix(self, x, task: str, expert_outputs: list[Tensor]) -> Tensor:
        return self._mix_stacked(x, task, stack(expert_outputs, axis=1))

    def shared_features(self, x) -> Tensor:
        """The stacked expert bank ``(batch, E, feat...)``.

        Every shared parameter (the experts) is strictly upstream of this
        tensor; the gates and heads are task-specific and sit downstream
        (the gates read the raw input, which :meth:`forward_heads` takes
        separately), so it is a valid feature-space cut.
        """
        return stack([expert(x) for expert in self.experts], axis=1)

    def forward_heads(self, features: Tensor, x=None) -> dict[str, Tensor]:
        if x is None:
            raise ValueError("MMoE.forward_heads needs the raw input x for the gates")
        return {
            task: self.heads[task](self._mix_stacked(x, task, features))
            for task in self.task_names
        }

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        expert_outputs = [expert(x) for expert in self.experts]
        return self.heads[task](self._mix(x, task, expert_outputs))

    def forward_all(self, x) -> dict[str, Tensor]:
        expert_outputs = [expert(x) for expert in self.experts]
        return {
            task: self.heads[task](self._mix(x, task, expert_outputs))
            for task in self.task_names
        }

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        return self.experts.parameters()

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        return self.gates[task].parameters() + self.heads[task].parameters()
