"""CGC — Customized Gate Control (Tang et al., RecSys 2020).

The single-extraction-layer core of PLE: a bank of *shared* experts plus
per-task *private* expert banks.  Each task's gate mixes the shared experts
with its own private experts:

    y_k = F_k( Σ_{e ∈ shared ∪ private_k} softmax(W_k · pool(x))_e · E_e(x) ).

Shared experts are balanced (their gradients come from every task); private
experts, gates and heads are task-specific.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn.functional import softmax
from ..nn.layers import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, concat, stack
from .base import MTLModel
from .mmoe import _pool_input

__all__ = ["CGC"]


class CGC(MTLModel):
    """Customized gate control with shared and task-private experts."""

    def __init__(
        self,
        expert_factory: Callable[[], Module],
        num_shared_experts: int,
        num_task_experts: int,
        heads: dict[str, Module],
        gate_in_features: int,
        rng: np.random.Generator,
        gate_input_fn: Callable[[object], Tensor] | None = None,
    ) -> None:
        super().__init__(list(heads))
        if num_shared_experts < 1 or num_task_experts < 1:
            raise ValueError("need at least one shared and one task expert")
        self.shared_experts = ModuleList(
            [expert_factory() for _ in range(num_shared_experts)]
        )
        self.task_experts = {
            task: ModuleList([expert_factory() for _ in range(num_task_experts)])
            for task in self.task_names
        }
        total = num_shared_experts + num_task_experts
        self.gates = {task: Linear(gate_in_features, total, rng) for task in self.task_names}
        self.heads = heads
        self.gate_input_fn = gate_input_fn or _pool_input

    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        yield from self.shared_experts.named_parameters(f"{pre}shared_experts")
        for task in self.task_names:
            yield from self.task_experts[task].named_parameters(f"{pre}task_experts.{task}")
            yield from self.gates[task].named_parameters(f"{pre}gates.{task}")
            yield from self.heads[task].named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        yield from self.shared_experts.modules()
        for task in self.task_names:
            yield from self.task_experts[task].modules()
            yield from self.gates[task].modules()
            yield from self.heads[task].modules()

    # ------------------------------------------------------------------
    def _mix_stacked(self, x, task: str, stacked: Tensor) -> Tensor:
        gate = softmax(self.gates[task](self.gate_input_fn(x)), axis=-1)
        weights = gate.reshape(gate.shape + (1,) * (stacked.ndim - 2))
        return (stacked * weights).sum(axis=1)

    def _mix(self, x, task: str, shared_outputs: list[Tensor]) -> Tensor:
        private_outputs = [expert(x) for expert in self.task_experts[task]]
        return self._mix_stacked(x, task, stack(shared_outputs + private_outputs, axis=1))

    def shared_features(self, x) -> Tensor:
        """The stacked *shared* expert bank ``(batch, S, feat...)``.

        Only the shared experts are balanced parameters; the private
        experts, gates and heads are task-specific and recomputed from the
        raw input inside :meth:`forward_heads`, downstream of the cut.
        """
        return stack([expert(x) for expert in self.shared_experts], axis=1)

    def forward_heads(self, features: Tensor, x=None) -> dict[str, Tensor]:
        if x is None:
            raise ValueError(
                "CGC.forward_heads needs the raw input x for the gates and private experts"
            )
        outputs = {}
        for task in self.task_names:
            private = stack([expert(x) for expert in self.task_experts[task]], axis=1)
            stacked = concat([features, private], axis=1)
            outputs[task] = self.heads[task](self._mix_stacked(x, task, stacked))
        return outputs

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        shared_outputs = [expert(x) for expert in self.shared_experts]
        return self.heads[task](self._mix(x, task, shared_outputs))

    def forward_all(self, x) -> dict[str, Tensor]:
        shared_outputs = [expert(x) for expert in self.shared_experts]
        return {
            task: self.heads[task](self._mix(x, task, shared_outputs))
            for task in self.task_names
        }

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        return self.shared_experts.parameters()

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        return (
            self.task_experts[task].parameters()
            + self.gates[task].parameters()
            + self.heads[task].parameters()
        )
