"""Cross-stitch networks (Misra et al., CVPR 2016).

Each task owns a full column of stages; after every stage a *cross-stitch
unit* — a learnable (K, K) mixing matrix initialized near identity — linearly
recombines the K per-task feature maps:

    f_t ← Σ_u A[t, u] · f_u.

Because the stitch units couple all columns, every column parameter receives
gradient from every task: the whole trunk (columns + stitch units) counts as
shared for gradient balancing, while heads stay task-specific.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor, stack
from .base import MTLModel

__all__ = ["CrossStitch"]


class CrossStitch(MTLModel):
    """Per-task columns coupled by cross-stitch units.

    Parameters
    ----------
    stage_factories:
        One factory per stage; each is called once per task to build that
        task's column stage (all columns share the same architecture but
        not the same parameters).
    heads:
        Task name → head applied to the task's final column feature.
    stitch_self_weight:
        Initial diagonal value of each stitch matrix (off-diagonals share
        the remaining mass), 0.9 as in the original paper.
    """

    def __init__(
        self,
        stage_factories: Sequence[Callable[[], Module]],
        heads: dict[str, Module],
        stitch_self_weight: float = 0.9,
    ) -> None:
        super().__init__(list(heads))
        num_tasks = len(self.task_names)
        if not 0.0 < stitch_self_weight <= 1.0:
            raise ValueError("stitch_self_weight must be in (0, 1]")
        self.columns = {
            task: ModuleList([factory() for factory in stage_factories])
            for task in self.task_names
        }
        off = (1.0 - stitch_self_weight) / max(num_tasks - 1, 1)
        init = np.full((num_tasks, num_tasks), off)
        np.fill_diagonal(init, stitch_self_weight)
        self.stitches = [Parameter(init.copy()) for _ in stage_factories]
        self.heads = heads

    def named_parameters(self, prefix: str = ""):
        pre = f"{prefix}." if prefix else ""
        for task in self.task_names:
            yield from self.columns[task].named_parameters(f"{pre}columns.{task}")
        for i, stitch in enumerate(self.stitches):
            yield f"{pre}stitches.{i}", stitch
        for task in self.task_names:
            yield from self.heads[task].named_parameters(f"{pre}heads.{task}")

    def modules(self):
        yield self
        for task in self.task_names:
            yield from self.columns[task].modules()
            yield from self.heads[task].modules()

    # ------------------------------------------------------------------
    def _trunk(self, x) -> dict[str, Tensor]:
        features = {task: x for task in self.task_names}
        for stage_index in range(len(self.stitches)):
            outputs = [
                self.columns[task][stage_index](features[task]) for task in self.task_names
            ]
            stacked = stack(outputs, axis=0)  # (K, batch, feat...)
            mix = self.stitches[stage_index]
            flat = stacked.reshape(len(self.task_names), -1)
            mixed = (mix @ flat).reshape(stacked.shape)
            features = {
                task: mixed[t] for t, task in enumerate(self.task_names)
            }
        return features

    def shared_features(self, x) -> Tensor:
        """All K per-task trunk outputs, stacked to ``(K, batch, feat...)``.

        The stitch units couple every column, so the whole trunk (columns
        + stitches) is shared and strictly upstream of this stack; only the
        heads — which read one ``features[t]`` slice each — sit below it.
        """
        features = self._trunk(x)
        return stack([features[task] for task in self.task_names], axis=0)

    def forward_heads(self, features: Tensor, x=None) -> dict[str, Tensor]:
        return {
            task: self.heads[task](features[t]) for t, task in enumerate(self.task_names)
        }

    def forward(self, x, task: str) -> Tensor:
        self._check_task(task)
        return self.heads[task](self._trunk(x)[task])

    def forward_all(self, x) -> dict[str, Tensor]:
        features = self._trunk(x)
        return {task: self.heads[task](features[task]) for task in self.task_names}

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for task in self.task_names:
            params.extend(self.columns[task].parameters())
        params.extend(self.stitches)
        return params

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        self._check_task(task)
        return self.heads[task].parameters()
