"""Architecture base class for multi-task models.

An :class:`MTLModel` exposes the split the gradient balancers need:

- ``shared_parameters()`` — parameters updated by *every* task's loss (the
  heavy-weight θ_sh of the paper); per-task gradients are collected over
  these and fed to the balancer;
- ``task_specific_parameters(task)`` — parameters only task ``task``'s loss
  touches (light-weight θ_k); their gradients never conflict and are applied
  directly.

Both single-input MTL (all tasks share each batch; ``forward_all``) and
multi-input MTL (each task has its own batches; ``forward``) are supported.
"""

from __future__ import annotations

from typing import Sequence

from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor

__all__ = ["MTLModel"]


class MTLModel(Module):
    """Base class for all multi-task architectures in :mod:`repro.arch`."""

    def __init__(self, task_names: Sequence[str]) -> None:
        super().__init__()
        if len(task_names) != len(set(task_names)):
            raise ValueError("task names must be unique")
        self.task_names = list(task_names)

    # ------------------------------------------------------------------
    def forward(self, x, task: str) -> Tensor:
        """Prediction of one task for input ``x`` (multi-input entry point)."""
        raise NotImplementedError

    def forward_all(self, x) -> dict[str, Tensor]:
        """Predictions of all tasks on a shared input (single-input MTL).

        The default evaluates tasks one by one; architectures with a shared
        trunk override this to reuse the trunk computation, and the trainer
        relies on that shared graph for efficient per-task backward passes.
        """
        return {task: self.forward(x, task) for task in self.task_names}

    def shared_features(self, x) -> Tensor:
        """The shared representation ``z`` (for feature-level gradients).

        Architectures whose shared parameters all feed a *single* cut
        tensor implement this (HPS, MMoE, CGC, CrossStitch) — the trainer's
        ``grad_space="features"`` mode balances per-task gradients of ``z``
        and back-propagates the trunk once.  Architectures with several
        differently-shaped shared boundary tensors (MTAN, PLE) raise, and
        only support parameter-space balancing.
        """
        raise NotImplementedError(f"{type(self).__name__} has no single shared representation")

    def forward_heads(self, features: Tensor, x=None) -> dict[str, Tensor]:
        """All task predictions from a precomputed shared representation.

        The counterpart of :meth:`shared_features`: the trainer detaches
        ``features`` so per-task backward stops at the representation, then
        calls this to run only the task-specific halves.  ``x`` is the raw
        batch input, for architectures whose task-specific parts read the
        input directly (MMoE/CGC gates, CGC private experts); trunk-only
        architectures ignore it.  Must satisfy
        ``forward_heads(shared_features(x), x) == forward_all(x)``.
        """
        raise NotImplementedError(f"{type(self).__name__} has no single shared representation")

    # ------------------------------------------------------------------
    def shared_parameters(self) -> list[Parameter]:
        """Parameters every task's loss reaches (balanced by the trainer)."""
        raise NotImplementedError

    def task_specific_parameters(self, task: str) -> list[Parameter]:
        """Parameters only ``task``'s loss reaches (applied unbalanced)."""
        raise NotImplementedError

    def _check_task(self, task: str) -> None:
        if task not in self.task_names:
            raise KeyError(f"unknown task {task!r}; tasks: {self.task_names}")
