"""Bounded-memory recorder of per-step training dynamics.

The paper's claims are about *dynamics* — how conflict geometry (pairwise
GCD, cosine extrema) and MoCoGrad's calibration state (λ, momentum norms)
evolve over training — but telemetry counters and gauges only keep
end-of-run aggregates.  :class:`DynamicsRecorder` keeps an explicit
per-step time series under a hard memory bound: it holds at most
``capacity`` samples no matter how many steps are offered, so a
100k-step run costs the same memory as a 1k-step run (tracemalloc-gated
in ``tests/obs/test_recorder.py``).

Three downsampling policies (``mode=``):

- ``"stride"`` (default) — deterministic decimation: keep every n-th
  sample, doubling n each time the buffer fills.  Retained steps stay
  *uniformly spaced over the whole run*, which is what trend plots of
  λ / GCD want.
- ``"reservoir"`` — Algorithm R: a uniform random sample of all steps
  seen so far; unbiased for distributional summaries.
- ``"ring"`` — keep the most recent ``capacity`` steps; the classic
  flight-recorder window for post-mortems.

Samples are plain dicts of floats / lists of floats (the shape
:meth:`repro.core.gradstats.GradStats.snapshot` produces).  Persistence
goes through the existing sink API: :meth:`to_events` renders one
``{"type": "dynamics", "step": ..., ...}`` event per retained sample
plus a leading ``dynamics_meta`` event, which
``python -m repro report --dynamics`` turns back into per-metric
sparkline tables.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

import numpy as np

__all__ = ["DynamicsRecorder"]

MODES = ("stride", "reservoir", "ring")


class DynamicsRecorder:
    """Records per-step metric samples in O(capacity) memory.

    Parameters
    ----------
    capacity:
        Maximum number of retained samples (≥ 2).
    mode:
        ``"stride"``, ``"reservoir"``, or ``"ring"`` — see the module
        docstring.
    seed:
        Seeds reservoir sampling (ignored by the other modes).
    """

    def __init__(self, capacity: int = 1024, mode: str = "stride", seed: int = 0) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be ≥ 2; got {capacity}")
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}; got {mode!r}")
        self.capacity = int(capacity)
        self.mode = mode
        self._rng = np.random.default_rng(seed)
        self._seen = 0
        self._stride = 1
        self._buffer: list[dict] | deque[dict]
        self._buffer = deque(maxlen=self.capacity) if mode == "ring" else []

    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Total number of samples offered (recorded or not)."""
        return self._seen

    @property
    def stride(self) -> int:
        """Current decimation stride (``"stride"`` mode; 1 otherwise)."""
        return self._stride

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    def record(self, step: int, sample) -> None:
        """Offer one per-step sample; the policy decides whether it stays.

        ``sample`` is a mapping, or a zero-argument callable returning one
        — the callable is invoked only if the policy retains this offer,
        so per-step producers (the trainer's GradStats snapshot) pay
        nothing on the offers a high-stride recorder discards.
        """
        index = self._seen
        self._seen += 1
        if self.mode == "ring":
            self._buffer.append(self._entry(step, sample))
            return
        if self.mode == "reservoir":
            if len(self._buffer) < self.capacity:
                self._buffer.append(self._entry(step, sample))
            else:
                slot = int(self._rng.integers(0, self._seen))
                if slot < self.capacity:
                    self._buffer[slot] = self._entry(step, sample)
            return
        # stride: deterministic decimation with doubling
        if index % self._stride != 0:
            return
        if len(self._buffer) >= self.capacity:
            # Keep even positions: retained entries are consecutive
            # multiples of the old stride, so positions 0, 2, 4, … are
            # exactly the multiples of the doubled stride.
            del self._buffer[1::2]
            self._stride *= 2
            if index % self._stride != 0:
                return
        self._buffer.append(self._entry(step, sample))

    @staticmethod
    def _entry(step: int, sample) -> dict:
        if callable(sample):
            sample = sample()
        return {"step": int(step), **sample}

    def samples(self) -> list[dict]:
        """Retained samples in step order (each ``{"step": n, **sample}``)."""
        return sorted(self._buffer, key=lambda entry: entry["step"])

    def clear(self) -> None:
        """Drop all samples and reset the downsampling state."""
        self._buffer = deque(maxlen=self.capacity) if self.mode == "ring" else []
        self._seen = 0
        self._stride = 1

    # ------------------------------------------------------------------
    def to_events(self, meta: Mapping | None = None) -> list[dict]:
        """Sink-ready events: one ``dynamics_meta`` then one per sample.

        ``meta`` merges extra context (e.g. task names) into the meta
        event.  Repeated flushes of a still-recording instance are safe:
        the report layer dedupes ``dynamics`` events by step, last wins.
        """
        head = {
            "type": "dynamics_meta",
            "capacity": self.capacity,
            "mode": self.mode,
            "seen": self._seen,
            "recorded": len(self._buffer),
        }
        if meta:
            head.update(meta)
        return [head] + [{"type": "dynamics", **entry} for entry in self.samples()]

    def __repr__(self) -> str:
        return (
            f"DynamicsRecorder(mode={self.mode!r}, capacity={self.capacity}, "
            f"recorded={len(self._buffer)}, seen={self._seen})"
        )
