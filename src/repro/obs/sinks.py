"""Pluggable event sinks: where telemetry events go.

Every sink consumes plain-dict events (see DESIGN.md for the schema):
``{"type": "span", ...}`` for closed tracing spans, ``{"type": "metric",
...}`` for registry snapshots, and ``{"type": "run", ...}`` for run
metadata.  Three implementations cover the use cases:

- :class:`InMemorySink` — assertion-friendly buffer for tests;
- :class:`JsonlSink` — one JSON object per line, the persistent format
  ``python -m repro report`` consumes;
- :class:`NullSink` — swallows everything; used by the telemetry-overhead
  regression test to measure instrumentation cost without I/O.
"""

from __future__ import annotations

import atexit
import json
import threading
import weakref
from typing import IO, Mapping

__all__ = ["Sink", "InMemorySink", "JsonlSink", "NullSink"]


class Sink:
    """Interface: receives telemetry events; close() releases resources."""

    def emit(self, event: Mapping) -> None:
        """Consume one telemetry event dict."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (default: no-op)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySink(Sink):
    """Buffers events in a list (``sink.events``)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False

    def emit(self, event: Mapping) -> None:
        self.events.append(dict(event))

    def close(self) -> None:
        self.closed = True

    def of_type(self, event_type: str) -> list[dict]:
        """Convenience filter: all buffered events of one type."""
        return [e for e in self.events if e.get("type") == event_type]


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (or writable stream).

    Writes are serialized with a lock so concurrent trainers can share one
    sink; lines are flushed per event — a crashed run keeps every event
    emitted before the crash.

    Closure is deterministic: use the sink as a context manager (the
    :class:`Sink` base provides ``__enter__``/``__exit__``), and every
    open file-owning sink is additionally closed by an ``atexit`` hook —
    a run that never reaches its ``close()`` (an uncaught exception, a
    ``sys.exit`` mid-epoch) still leaves a complete, parseable JSONL
    file.  A hard ``SIGKILL`` bypasses ``atexit``, but the per-event
    flush means only the event being written at kill time can be torn
    (and :func:`repro.obs.report.load_events` tolerates a torn tail).
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._lock = threading.Lock()
        self.closed = False
        if self._owns_file:
            _open_sinks.add(self)

    def emit(self, event: Mapping) -> None:
        line = json.dumps(event, ensure_ascii=False, sort_keys=True, default=_jsonify)
        with self._lock:
            if self.closed:
                raise ValueError("cannot emit to a closed JsonlSink")
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self._owns_file:
                self._file.close()
        _open_sinks.discard(self)


#: File-owning JsonlSinks not yet closed; weak references so an abandoned
#: sink can still be garbage-collected (its file closes on finalization).
_open_sinks: "weakref.WeakSet[JsonlSink]" = weakref.WeakSet()


@atexit.register
def _close_open_sinks() -> None:
    """atexit fallback: flush+close every file-owning sink still open."""
    for sink in list(_open_sinks):
        try:
            sink.close()
        except Exception:  # interpreter is shutting down; never raise
            pass


class NullSink(Sink):
    """Accepts and discards every event (counts them for sanity checks)."""

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, event: Mapping) -> None:
        self.emitted += 1


def _jsonify(value):
    """Fallback serializer for numpy scalars and other float-likes."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
