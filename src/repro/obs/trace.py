"""Nested wall-clock tracing spans with a thread-local active-span stack.

A *span* times one region of code.  Spans nest: entering ``step`` then
``backward`` produces a span whose ``path`` is ``"step/backward"``, so the
run report can attribute every millisecond of a training step to forward,
per-task backward, balancing, or the optimizer — the decomposition the
paper's Fig. 8 backward-time study needs and the trainer previously could
not provide (it timed whole steps only).

The stack is thread-local *per tracer*: two trainers tracing concurrently
in different threads do not corrupt each other's nesting, and one trainer
used from two threads keeps two independent stacks.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One closed span: identity, position in the tree, and timing.

    ``perf_start`` is the ``time.perf_counter()`` reading at span entry —
    the monotonic clock the duration is measured on, so consumers that
    need a consistent timeline (the Chrome-trace exporter) can place
    nested spans without wall-clock skew.  ``memory_delta`` is the
    tracemalloc current-size delta across the span in bytes (``None``
    unless the owning tracer has ``track_memory`` on and tracemalloc is
    tracing).  ``error`` marks spans whose body raised.
    """

    name: str
    path: str
    depth: int
    start_time: float  # wall-clock epoch seconds (time.time)
    duration: float  # elapsed seconds (perf_counter delta)
    labels: dict[str, str] = field(default_factory=dict)
    perf_start: float = 0.0  # perf_counter at entry (monotonic timeline)
    memory_delta: int | None = None  # tracemalloc bytes delta, if tracked
    error: bool = False  # the span body raised
    #: Per-tracer thread index: 0 for the first thread that opened a span
    #: on this tracer (the trainer thread), 1+ for helpers like the shard
    #: prefetcher.  Lets the Chrome-trace exporter draw background work on
    #: its own track so producer/consumer overlap is visible.
    thread: int = 0

    def to_event(self) -> dict:
        """The JSONL event this span serializes to."""
        event = {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "ts": self.start_time,
            "perf_ts": self.perf_start,
            "seconds": self.duration,
            "labels": self.labels,
        }
        if self.memory_delta is not None:
            event["mem_bytes"] = self.memory_delta
        if self.error:
            event["error"] = True
        if self.thread:
            event["thread"] = self.thread
        return event


class _SpanContext:
    """Context manager for one span activation (not reusable)."""

    __slots__ = (
        "_tracer",
        "name",
        "labels",
        "path",
        "depth",
        "duration",
        "_start_wall",
        "_start_perf",
        "_start_mem",
    )

    def __init__(self, tracer: Tracer, name: str, labels: dict[str, str]) -> None:
        self._tracer = tracer
        self.name = name
        self.labels = labels
        self.path = ""
        self.depth = 0
        self.duration = 0.0
        self._start_mem: int | None = None

    def __enter__(self) -> _SpanContext:
        stack = self._tracer._stack()
        self.depth = len(stack)
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        if self._tracer.track_memory and tracemalloc.is_tracing():
            self._start_mem = tracemalloc.get_traced_memory()[0]
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Duration is taken before any unwind bookkeeping so a raising
        # body still gets an accurate wall-clock measurement.
        duration = self.duration = time.perf_counter() - self._start_perf
        memory_delta = None
        if self._start_mem is not None and tracemalloc.is_tracing():
            memory_delta = tracemalloc.get_traced_memory()[0] - self._start_mem
        stack = self._tracer._stack()
        if not stack or stack[-1] is not self:
            if exc_type is not None:
                # Never mask the body's exception with a nesting complaint;
                # the unwind already explains the out-of-order closure.
                return
            raise RuntimeError(
                f"span {self.path!r} closed out of order (active: "
                f"{stack[-1].path if stack else None!r})"
            )
        stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                path=self.path,
                depth=self.depth,
                start_time=self._start_wall,
                duration=duration,
                labels=self.labels,
                perf_start=self._start_perf,
                memory_delta=memory_delta,
                error=exc_type is not None,
                thread=self._tracer.thread_index(),
            )
        )


class Tracer:
    """Produces spans, keeps raw per-path durations, and notifies a callback.

    ``on_close`` (set by :class:`~repro.obs.Telemetry`) receives every
    closed :class:`SpanRecord` — that is the hook that fans records out to
    sinks and the metrics registry.  Raw durations are kept per *path*
    (``"step/backward"``), so callers can compute medians and other
    order statistics that fixed-bucket histograms cannot recover.
    """

    def __init__(
        self,
        on_close: Callable[[SpanRecord], None] | None = None,
        track_memory: bool = False,
    ) -> None:
        self._local = threading.local()
        self._durations: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        self._thread_count = 0
        # The constructing thread (the trainer) claims index 0 up front, so
        # helper threads always render on secondary tracks even when one of
        # them (e.g. the shard prefetcher) opens the run's first span.
        self._stack()
        self.on_close = on_close
        #: when True (and ``tracemalloc`` is tracing), every span records
        #: its tracemalloc current-size delta as ``SpanRecord.memory_delta``.
        #: Mutable at runtime — the profiler flips it on when attached with
        #: memory tracking requested.
        self.track_memory = track_memory

    # ------------------------------------------------------------------
    def _stack(self) -> list[_SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._local.thread_index = self._thread_count
                self._thread_count += 1
        return stack

    def thread_index(self) -> int:
        """This thread's per-tracer index (0 = first span-opening thread)."""
        self._stack()
        return self._local.thread_index

    def span(self, name: str, **labels) -> _SpanContext:
        """Open a (nested) span; use as ``with tracer.span("forward"): ...``."""
        if not name or "/" in name:
            raise ValueError(f"span name must be non-empty and '/'-free; got {name!r}")
        return _SpanContext(self, name, {k: str(v) for k, v in labels.items()})

    def active_path(self) -> str | None:
        """Path of the innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1].path if stack else None

    # ------------------------------------------------------------------
    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._durations.setdefault(record.path, []).append(record.duration)
        if self.on_close is not None:
            self.on_close(record)

    def durations(self, path: str) -> list[float]:
        """Raw durations (seconds) of every closed span at ``path``."""
        with self._lock:
            return list(self._durations.get(path, ()))

    def paths(self) -> list[str]:
        """All span paths seen so far, sorted."""
        with self._lock:
            return sorted(self._durations)

    def reset(self) -> None:
        """Drop recorded durations (open spans are unaffected)."""
        with self._lock:
            self._durations.clear()
