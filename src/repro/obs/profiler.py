"""Timeline profiler: span events → Chrome ``trace_event`` JSON.

The tracer already produces everything a timeline needs — nested spans
with monotonic (``perf_counter``) start times, durations, labels, and
(optionally) tracemalloc deltas.  :class:`Profiler` is a
:class:`~repro.obs.sinks.Sink` that collects those span events from a
live :class:`~repro.obs.Telemetry` (or from a saved JSONL file via
:meth:`Profiler.from_events`) and renders them two ways:

- :meth:`chrome_trace` / :meth:`export_chrome_trace` — the Chrome
  ``trace_event`` format (an object with a ``traceEvents`` list of
  ``ph="X"`` complete events), loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev.  Nested trainer phases (``step`` →
  ``forward`` / ``backward`` / ``balance`` / ``optimizer_step``) appear
  as nested slices; span labels, memory deltas, and error flags land in
  each slice's ``args``.
- :meth:`self_times` — per-path *self-time* attribution: the time spent
  in a phase minus the time spent in its child spans, i.e. where a step
  actually goes once the multi-root backward, the balancer kernel, and
  the flat optimizer step have each claimed their share.

Timeline placement uses the spans' ``perf_ts`` (monotonic) when every
event carries one, falling back to wall-clock ``ts`` for pre-flight-
recorder JSONL files; mixing clocks within one export is never done, so
slices always nest exactly as the spans did.

Memory tracking (``track_memory=True``) flips the owning tracer's
``track_memory`` flag and starts ``tracemalloc`` if nothing else has —
tracemalloc slows allocation-heavy code measurably, so it is opt-in and
off by default; the ≤1.5× instrumentation-overhead bar is enforced for
the default configuration (see ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import json
import os
import tracemalloc
from typing import Iterable, Mapping

from .sinks import Sink

__all__ = ["Profiler"]

#: Trainer phases whose self-time the run summary highlights.
TRAIN_PHASES = ("forward", "backward", "balance", "optimizer_step")


class Profiler(Sink):
    """Collects span events and exports a Chrome-trace timeline.

    Use either as an explicit sink (``Telemetry(sinks=[profiler])``), via
    :meth:`attach`, or through the trainer's ``profile=`` kwarg::

        trainer = MTLTrainer(..., profile="trace.json")
        trainer.fit(data, epochs=1, batch_size=64)   # exports on completion

    Parameters
    ----------
    track_memory:
        Record per-span tracemalloc deltas (requires attaching to a
        telemetry instance; see :meth:`attach`).  Off by default — the
        tracemalloc hooks have real overhead.
    """

    def __init__(self, track_memory: bool = False) -> None:
        self.track_memory = track_memory
        self.spans: list[dict] = []
        self._started_tracemalloc = False
        self._attached: list[object] = []

    # ------------------------------------------------------------------
    # Sink interface + attachment
    # ------------------------------------------------------------------
    def emit(self, event: Mapping) -> None:
        """Keep span events; ignore metric/run/dynamics traffic."""
        if event.get("type") == "span":
            self.spans.append(dict(event))

    def close(self) -> None:
        """Detach from telemetry and release the tracemalloc hook."""
        for telemetry in self._attached:
            if self in telemetry.sinks:
                telemetry.sinks.remove(self)
        self._attached.clear()
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def attach(self, telemetry) -> "Profiler":
        """Subscribe to a :class:`~repro.obs.Telemetry`'s span stream.

        With ``track_memory`` on, also flips the telemetry's tracer to
        record tracemalloc deltas, starting tracemalloc if needed (and
        stopping it again on :meth:`close` only if this profiler started
        it).
        """
        if not telemetry.enabled:
            raise ValueError(
                "cannot profile a disabled Telemetry instance; pass an enabled "
                "one (profiling needs the span stream)"
            )
        telemetry.sinks.append(self)
        self._attached.append(telemetry)
        if self.track_memory:
            telemetry.tracer.track_memory = True
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        return self

    @classmethod
    def from_events(cls, events: Iterable[Mapping]) -> "Profiler":
        """Build a profiler from saved events (``repro.obs.load_events``)."""
        profiler = cls()
        for event in events:
            profiler.emit(event)
        return profiler

    # ------------------------------------------------------------------
    # Chrome trace export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as a Chrome ``trace_event`` object (``ph="X"`` slices).

        Each telemetry instance maps to one Chrome "thread" (its ``tid``),
        so two trainers profiled into one file show as parallel tracks.
        """
        spans = self.spans
        # A single timeline needs a single clock: monotonic perf_ts when
        # every span has one (> 0), wall-clock ts otherwise.
        use_perf = bool(spans) and all(s.get("perf_ts", 0.0) > 0.0 for s in spans)
        key = "perf_ts" if use_perf else "ts"
        origin = min((float(s[key]) for s in spans), default=0.0)
        events: list[dict] = []
        pid = os.getpid()

        def chrome_tid(telemetry_id: int, thread: int) -> int:
            # Thread 0 keeps the bare telemetry id (old traces unchanged);
            # helper threads (shard prefetcher, …) get their own track.
            return telemetry_id if thread == 0 else telemetry_id * 1000 + thread

        tracks = sorted(
            {(int(s.get("tid", 0)), int(s.get("thread", 0))) for s in spans}
        )
        for telemetry_id, thread in tracks:
            name = (
                f"telemetry-{telemetry_id}"
                if thread == 0
                else f"telemetry-{telemetry_id}/t{thread}"
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": chrome_tid(telemetry_id, thread),
                    "args": {"name": name},
                }
            )
        for span in spans:
            args = dict(span.get("labels") or {})
            args["path"] = span["path"]
            if "mem_bytes" in span:
                args["mem_bytes"] = span["mem_bytes"]
            if span.get("error"):
                args["error"] = True
            events.append(
                {
                    "ph": "X",
                    "cat": "span",
                    "name": span["name"],
                    "pid": pid,
                    "tid": chrome_tid(
                        int(span.get("tid", 0)), int(span.get("thread", 0))
                    ),
                    "ts": (float(span[key]) - origin) * 1e6,  # microseconds
                    "dur": float(span["seconds"]) * 1e6,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.profiler", "clock": key},
        }

    def export_chrome_trace(self, path: str) -> str:
        """Write :meth:`chrome_trace` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return path

    # ------------------------------------------------------------------
    # Self-time attribution
    # ------------------------------------------------------------------
    def self_times(self) -> dict[str, dict]:
        """Per-path timing with child time subtracted out.

        Returns ``{path: {count, total_seconds, self_seconds,
        mem_bytes}}`` where ``self_seconds`` is the path's total minus
        the total of its *direct* children — the attribution that tells
        you whether ``step`` time lives in the four phases or in the glue
        between them.  ``mem_bytes`` sums the spans' tracemalloc deltas
        (0 when memory tracking was off).
        """
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        memory: dict[str, int] = {}
        for span in self.spans:
            path = span["path"]
            totals[path] = totals.get(path, 0.0) + float(span["seconds"])
            counts[path] = counts.get(path, 0) + 1
            memory[path] = memory.get(path, 0) + int(span.get("mem_bytes", 0))
        result: dict[str, dict] = {}
        for path, total in sorted(totals.items()):
            prefix = path + "/"
            child_time = sum(
                t
                for p, t in totals.items()
                if p.startswith(prefix) and "/" not in p[len(prefix) :]
            )
            result[path] = {
                "count": counts[path],
                "total_seconds": total,
                # Clamp: clock jitter can make children nominally exceed
                # their parent by nanoseconds.
                "self_seconds": max(total - child_time, 0.0),
                "mem_bytes": memory[path],
            }
        return result

    def format_self_times(self) -> str:
        """Fixed-width self-time table for terminal output."""
        rows = self.self_times()
        if not rows:
            return "No spans profiled."
        lines = [
            f"{'span':<40} {'count':>6} {'total ms':>10} {'self ms':>10} {'self %':>7}"
        ]
        grand_self = sum(stats["self_seconds"] for stats in rows.values()) or 1.0
        for path, stats in rows.items():
            lines.append(
                f"{path:<40} {stats['count']:>6} "
                f"{stats['total_seconds'] * 1e3:>10.3f} "
                f"{stats['self_seconds'] * 1e3:>10.3f} "
                f"{100.0 * stats['self_seconds'] / grand_self:>6.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Profiler(spans={len(self.spans)}, track_memory={self.track_memory})"
