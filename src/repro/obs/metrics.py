"""Label-aware metric instruments: counters, gauges, fixed-bucket histograms.

The registry is the in-memory store behind ``repro.obs.Telemetry``.  Every
instrument is identified by a ``(name, labels)`` pair — labels are free-form
``key=value`` dimensions such as the task name, the training phase, or the
balancing method — and requesting the same pair twice returns the same
instrument, so hot loops can either cache the instrument or look it up each
step.

Histograms use *fixed* upper bounds (Prometheus-style cumulative-free
buckets): the default ``SECONDS_BUCKETS`` spans 10 µs … 10 s, which covers
every span duration this codebase produces, from a single feature-level
backward to a full Nash-MTL step.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
]

#: Default histogram bucket upper bounds for wall-clock durations (seconds).
SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (e.g. steps taken, conflicts seen)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be ≥ 0; got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        """Serializable state: kind, name, labels, value."""
        return {
            "kind": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-write-wins value (e.g. current λ, momentum norm)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = math.nan

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def snapshot(self) -> dict:
        """Serializable state: kind, name, labels, value."""
        return {
            "kind": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram with sum/count, à la Prometheus.

    ``buckets`` are strictly increasing upper bounds; an implicit +inf
    bucket catches everything above the last bound.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey, buckets: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing; got {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into the matching bucket."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        Bucket-wise addition — both histograms must share identical bucket
        bounds (``ValueError`` otherwise).  Names and labels are *not*
        required to match: merging exists precisely to aggregate sibling
        series (e.g. per-scenario serving latencies into an overall view).
        Returns ``self`` so merges chain.
        """
        if not isinstance(other, Histogram):
            raise TypeError(
                f"can only merge another Histogram; got {type(other).__name__}"
            )
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with mismatched buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count
        return self

    def percentile(self, p: float) -> float:
        """Bucket-resolution percentile estimate (e.g. ``percentile(99)``).

        Pinned semantics (see ``tests/obs/test_metrics.py``):

        - Returns the smallest bucket *upper bound* covering at least
          ``ceil(p/100 · count)`` observations — an upper estimate at the
          histogram's bucket resolution, never an interpolated value.
        - An **empty** histogram returns ``nan`` (there is no meaningful
          latency to report; callers must not confuse "no data" with 0).
        - Values exactly **on a bucket boundary** count toward that
          bound's own bucket (Prometheus ``le`` semantics), so
          ``percentile`` of a histogram holding only boundary values
          returns the boundary itself.
        - Values **below the first bound** (including negative values)
          report the first bound; values above the last bound report
          ``inf`` — the histogram cannot resolve beyond its range.
        - ``p = 0`` reports the first non-empty bucket's bound; ``p``
          outside [0, 100] raises ``ValueError``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]; got {p}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for bound, count in zip(self.buckets + (math.inf,), self.counts):
            cumulative += count
            if cumulative >= rank:
                return bound
        return math.inf  # unreachable: counts always sum to self.count

    def snapshot(self) -> dict:
        """Serializable state: kind, name, labels, count, sum, buckets."""
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.buckets + (math.inf,), self.counts)
            ],
        }


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    The registry never forgets an instrument: :meth:`snapshot` returns every
    series ever touched, in a deterministic (name, labels) order, which is
    what the JSONL sinks serialize at flush time.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Mapping[str, object], factory):
        if not name:
            raise ValueError("metric name must be a non-empty string")
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            for other_kind, other_name, _ in self._instruments:
                if other_name == name and other_kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {other_kind}"
                    )
            instrument = factory(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter named ``name`` with these labels."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge named ``name`` with these labels."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str, buckets: Iterable[float] = SECONDS_BUCKETS, **labels) -> Histogram:
        """Get or create the histogram; re-requests must match ``buckets``."""
        histogram = self._get(
            "histogram", name, labels, lambda n, lk: Histogram(n, lk, buckets)
        )
        if histogram.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets {histogram.buckets}"
            )
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """Serializable state of every instrument, deterministically ordered."""
        ordered = sorted(self._instruments.items(), key=lambda kv: (kv[0][1], kv[0][2]))
        return [instrument.snapshot() for _, instrument in ordered]

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} series)"
