"""``repro.obs`` — structured telemetry for the training stack.

Three layers, smallest on top:

- **Metrics** (:mod:`repro.obs.metrics`): labelled counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`.
- **Tracing** (:mod:`repro.obs.trace`): nested wall-clock spans with a
  thread-local active-span stack — ``step/forward``, ``step/backward``
  (per task), ``step/balance``, ``step/optimizer_step``.
- **Sinks** (:mod:`repro.obs.sinks`): in-memory (tests), JSONL (runs),
  and null (overhead measurement) event consumers, plus the
  :mod:`repro.obs.report` formatter for saved JSONL files.
- **Flight recorder** (:mod:`repro.obs.profiler`,
  :mod:`repro.obs.recorder`): Chrome ``trace_event`` timeline export
  with per-phase self-time attribution, and a bounded-memory per-step
  conflict-dynamics recorder rendered by ``repro report --dynamics``.

:class:`Telemetry` bundles the three; ``NULL_TELEMETRY`` is the shared
no-op used when instrumentation is off.  See DESIGN.md ("Observability")
for the event schema and README.md for usage.
"""

from .metrics import SECONDS_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .profiler import Profiler
from .recorder import DynamicsRecorder
from .report import (
    format_dynamics,
    format_report,
    load_events,
    load_run_events,
    summarize_dynamics,
    summarize_events,
)
from .sinks import InMemorySink, JsonlSink, NullSink, Sink
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    add_default_sink,
    configure_sinks,
    default_sinks,
)
from .trace import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "Tracer",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "NullSink",
    "Telemetry",
    "NULL_TELEMETRY",
    "configure_sinks",
    "add_default_sink",
    "default_sinks",
    "load_events",
    "load_run_events",
    "summarize_events",
    "format_report",
    "Profiler",
    "DynamicsRecorder",
    "summarize_dynamics",
    "format_dynamics",
]
