"""The `Telemetry` facade: one registry + one tracer + N sinks.

A :class:`Telemetry` instance is the unit of instrumentation ownership:
each :class:`~repro.training.trainer.MTLTrainer` gets its own (so
per-trainer timing views stay isolated) while *sinks* may be shared — the
CLI's ``--telemetry out.jsonl`` installs one :class:`JsonlSink` globally
and every trainer created during the run streams events into it.

Disabling: ``NULL_TELEMETRY`` (or ``Telemetry.disabled()``) is a shared,
stateless instance whose spans and instruments are no-ops; hot paths may
also branch on ``telemetry.enabled`` to skip computing values that exist
only to be recorded (e.g. pairwise conflict counts).
"""

from __future__ import annotations

import itertools
import statistics
import time
from typing import Iterable, Mapping

from .metrics import SECONDS_BUCKETS, MetricsRegistry
from .sinks import Sink
from .trace import SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "configure_sinks",
    "default_sinks",
    "add_default_sink",
]

_telemetry_ids = itertools.count(1)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _NullInstrument:
    """No-op counter/gauge/histogram stand-in."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class Telemetry:
    """Bundles a metrics registry, a tracer, and event sinks.

    Parameters
    ----------
    sinks:
        Event consumers; every closed span is forwarded immediately,
        metric snapshots on :meth:`flush`.  Sinks are *not* closed by this
        object unless :meth:`close` is called — shared sinks (the global
        CLI sink) are owned by whoever installed them.
    enabled:
        When False the instance is inert: spans cost one attribute lookup,
        instruments discard writes.  Use :data:`NULL_TELEMETRY` instead of
        constructing disabled instances.
    """

    def __init__(self, sinks: Iterable[Sink] = (), enabled: bool = True) -> None:
        self.id = next(_telemetry_ids)
        self._enabled = enabled
        self.sinks: list[Sink] = list(sinks)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(on_close=self._on_span_close if enabled else None)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op instance (see :data:`NULL_TELEMETRY`)."""
        return NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **labels):
        """Open a nested wall-clock span (context manager)."""
        if not self._enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **labels)

    def durations(self, path: str) -> list[float]:
        """Raw durations (seconds) of closed spans at ``path``."""
        return self.tracer.durations(path)

    def span_paths(self) -> list[str]:
        """All span paths recorded so far, sorted."""
        return self.tracer.paths()

    def reset_timings(self) -> None:
        """Drop span durations (e.g. after a warm-up step)."""
        self.tracer.reset()

    def _on_span_close(self, record: SpanRecord) -> None:
        self.registry.histogram(
            "span_seconds", buckets=SECONDS_BUCKETS, span=record.path
        ).observe(record.duration)
        if self.sinks:
            event = record.to_event()
            event["tid"] = self.id
            self.emit(event)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels):
        """Registry counter (a shared no-op instrument when disabled)."""
        if not self._enabled:
            return _NULL_INSTRUMENT
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        """Registry gauge (a shared no-op instrument when disabled)."""
        if not self._enabled:
            return _NULL_INSTRUMENT
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=SECONDS_BUCKETS, **labels):
        """Registry histogram (a shared no-op instrument when disabled)."""
        if not self._enabled:
            return _NULL_INSTRUMENT
        return self.registry.histogram(name, buckets=buckets, **labels)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def emit(self, event: Mapping) -> None:
        """Forward one event dict to every sink."""
        if not self._enabled:
            return
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        """Emit a ``metric`` event per registry series to the sinks.

        Snapshots are cumulative: a later flush supersedes an earlier one
        from the same telemetry instance (consumers key on ``tid``).
        """
        if not self._enabled or not self.sinks:
            return
        now = time.time()
        for snapshot in self.registry.snapshot():
            event = {"type": "metric", "ts": now, "tid": self.id}
            event.update(snapshot)
            self.emit(event)

    def close(self) -> None:
        """Flush, then close every sink owned by this instance."""
        self.flush()
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Compact per-run digest: span stats + metric snapshot.

        The structure attached to
        :class:`~repro.experiments.runner.MethodResult.telemetry`.
        """
        if not self._enabled:
            return {}
        spans = {}
        for path in self.span_paths():
            values = self.durations(path)
            if not values:
                continue
            spans[path] = {
                "count": len(values),
                "total_seconds": float(sum(values)),
                "mean_seconds": float(sum(values) / len(values)),
                "median_seconds": float(statistics.median(values)),
            }
        return {"spans": spans, "metrics": self.registry.snapshot()}

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"Telemetry(id={self.id}, {state}, sinks={len(self.sinks)})"


#: Shared inert instance — safe to hand to any number of trainers/balancers.
NULL_TELEMETRY = Telemetry(enabled=False)


# ----------------------------------------------------------------------
# Process-wide default sinks (installed by the CLI's --telemetry flag)
# ----------------------------------------------------------------------
_default_sinks: list[Sink] = []


def configure_sinks(sinks: Iterable[Sink]) -> None:
    """Replace the process-wide default sink list.

    Trainers constructed without an explicit telemetry instance attach
    these sinks; the caller keeps ownership (and must close file sinks).
    """
    _default_sinks[:] = list(sinks)


def add_default_sink(sink: Sink) -> None:
    """Append one sink to the process-wide defaults."""
    _default_sinks.append(sink)


def default_sinks() -> list[Sink]:
    """Current process-wide default sinks (a copy)."""
    return list(_default_sinks)
