"""Run-report rendering for saved telemetry (JSONL) files.

``python -m repro report out.jsonl`` funnels through here: load the event
stream a :class:`~repro.obs.sinks.JsonlSink` wrote, aggregate it, and
render a human-readable digest — per-phase span timing, per-method
balancer conflict counts, and MoCoGrad calibration diagnostics.

Aggregation rules
-----------------
- *Spans* are grouped by ``path`` (``"step/backward"``); statistics come
  from the raw per-event durations, so medians/percentiles are exact.
- *Counters* are cumulative per telemetry instance (``tid``): the last
  snapshot per ``(tid, name, labels)`` wins, then instances are summed —
  flushing twice never double-counts.
- *Gauges* keep the latest value per ``(name, labels)`` across the file.
- *Histograms* follow the counter rule (last snapshot per instance wins),
  then instances pool by ``(name, labels)``: counts, sums, and per-bucket
  counts add (bucket merging needs matching bounds; mismatched bounds
  keep count/sum only).

Multi-file runs
---------------
A data-parallel run writes one JSONL file per process (``run.jsonl`` +
``run.worker<i>.jsonl``); :func:`load_run_events` concatenates them,
namespacing each file's telemetry ids (``"1:3"``) so instances from
different processes never collide.  ``python -m repro report a.jsonl
b.jsonl …`` funnels through it.
"""

from __future__ import annotations

import json
import os
import statistics
from typing import Iterable, Mapping, Sequence

__all__ = [
    "load_events",
    "load_run_events",
    "summarize_events",
    "format_report",
    "summarize_dynamics",
    "format_dynamics",
]


def load_events(path: str) -> list[dict]:
    """Parse one JSONL telemetry file into event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError`` with
    its line number (truncated final lines from killed runs are the one
    exception — they are dropped with no error).
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == len(lines):  # torn tail write from a killed run
                continue
            raise ValueError(f"{path}:{number}: invalid JSON event: {exc}") from None
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{number}: event must be a JSON object")
        events.append(event)
    return events


def load_run_events(paths: Sequence[str] | str | os.PathLike) -> list[dict]:
    """Load one run's event stream from one or several JSONL files.

    With a single path this is exactly :func:`load_events`.  With several
    (a parent file plus per-worker files), events are concatenated and
    every ``tid`` is namespaced by file position (``"0:1"``, ``"1:1"``) —
    telemetry ids are only unique within a process, and forked workers can
    even share one, so cross-file collisions would otherwise merge
    distinct instances and under-count their summed counters.
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    if not paths:
        raise ValueError("load_run_events needs at least one path")
    if len(paths) == 1:
        return load_events(paths[0])
    events: list[dict] = []
    for index, path in enumerate(paths):
        for event in load_events(path):
            if "tid" in event:
                event["tid"] = f"{index}:{event['tid']}"
            events.append(event)
    return events


def _series_key(event: Mapping) -> tuple:
    labels = event.get("labels") or {}
    return (event.get("name"), tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def summarize_events(events: Iterable[Mapping]) -> dict:
    """Aggregate an event stream into the report's data model."""
    span_durations: dict[str, list[float]] = {}
    counters_by_tid: dict[tuple, float] = {}
    gauges: dict[tuple, tuple[float, float]] = {}  # key -> (ts, value)
    histograms: dict[tuple, dict] = {}
    runs: list[dict] = []

    for event in events:
        etype = event.get("type")
        if etype == "span":
            span_durations.setdefault(event["path"], []).append(float(event["seconds"]))
        elif etype == "metric":
            key = _series_key(event)
            tid = event.get("tid", 0)
            if event.get("kind") == "counter":
                counters_by_tid[(tid, *key)] = float(event["value"])
            elif event.get("kind") == "gauge":
                ts = float(event.get("ts", 0.0))
                if key not in gauges or ts >= gauges[key][0]:
                    gauges[key] = (ts, float(event["value"]))
            elif event.get("kind") == "histogram":
                histograms[(tid, *key)] = dict(event)
        elif etype == "run":
            runs.append(dict(event))

    spans = {}
    for path, values in sorted(span_durations.items()):
        ordered = sorted(values)
        spans[path] = {
            "count": len(values),
            "total_seconds": float(sum(values)),
            "mean_seconds": float(sum(values) / len(values)),
            "median_seconds": float(statistics.median(values)),
            "p95_seconds": float(ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]),
        }

    counters: dict[tuple, float] = {}
    for (_tid, name, labels), value in counters_by_tid.items():
        counters[(name, labels)] = counters.get((name, labels), 0.0) + value

    pooled = _pool_histograms(histograms)

    return {
        "runs": runs,
        "spans": spans,
        "counters": {
            name: {labels: value for (n, labels), value in counters.items() if n == name}
            for name in {n for n, _ in counters}
        },
        "gauges": {key: value for key, (_ts, value) in gauges.items()},
        "histograms": {
            name: {labels: stats for (n, labels), stats in pooled.items() if n == name}
            for name in {n for n, _ in pooled}
        },
        "num_histograms": len(histograms),
    }


def _pool_histograms(histograms: Mapping[tuple, Mapping]) -> dict[tuple, dict]:
    """Sum per-instance histogram snapshots into per-series totals.

    Counts and sums always add; per-bucket counts add element-wise when
    every contributing instance shares the same bucket bounds, otherwise
    the pooled entry keeps ``buckets: None`` (count/sum stay exact, the
    bucket-resolution shape is undefined across mismatched bounds).
    """
    pooled: dict[tuple, dict] = {}
    for (_tid, name, labels), event in histograms.items():
        entry = pooled.setdefault(
            (name, labels), {"count": 0, "sum": 0.0, "buckets": None, "_bounds": None}
        )
        entry["count"] += int(event.get("count", 0))
        entry["sum"] += float(event.get("sum", 0.0))
        buckets = event.get("buckets")
        if buckets is None:
            entry["_bounds"] = "mismatch"
            continue
        bounds = tuple(float(b["le"]) for b in buckets)
        if entry["_bounds"] is None:
            entry["_bounds"] = bounds
            entry["buckets"] = [
                {"le": float(b["le"]), "count": int(b["count"])} for b in buckets
            ]
        elif entry["_bounds"] == bounds:
            for slot, bucket in zip(entry["buckets"], buckets):
                slot["count"] += int(bucket["count"])
        else:
            entry["_bounds"] = "mismatch"
            entry["buckets"] = None
    for entry in pooled.values():
        entry.pop("_bounds", None)
        entry["mean"] = entry["sum"] / entry["count"] if entry["count"] else 0.0
    return pooled


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Minimal fixed-width table (kept local: obs must not import experiments)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _label_value(labels: tuple, key: str) -> str | None:
    return dict(labels).get(key)


def _bucket_percentile(stats: Mapping, p: float) -> float:
    """Bucket-resolution percentile of a pooled histogram (nan if unknown)."""
    buckets = stats.get("buckets")
    count = int(stats.get("count", 0))
    if not buckets or count == 0:
        return float("nan")
    rank = max(1, int(-(-p * count // 100)))  # ceil(p/100 * count)
    cumulative = 0
    for bucket in buckets:
        cumulative += int(bucket["count"])
        if cumulative >= rank:
            return float(bucket["le"])
    return float("inf")


def format_report(summary: Mapping) -> str:
    """Render the digest ``python -m repro report`` prints."""
    sections: list[str] = []

    if summary["runs"]:
        run = summary["runs"][0]
        header = f"Telemetry report — {run.get('experiment', '?')} (preset={run.get('preset', '?')})"
        sections.append(header)
    else:
        sections.append("Telemetry report")

    if summary["spans"]:
        rows = [
            [
                path,
                stats["count"],
                stats["total_seconds"],
                stats["mean_seconds"] * 1e3,
                stats["median_seconds"] * 1e3,
                stats["p95_seconds"] * 1e3,
            ]
            for path, stats in summary["spans"].items()
        ]
        sections.append(
            _format_table(
                ["Span", "Count", "Total s", "Mean ms", "Median ms", "p95 ms"],
                rows,
                title="Per-phase timing",
            )
        )
    else:
        sections.append("No spans recorded.")

    if summary.get("histograms"):
        rows = []
        for name in sorted(summary["histograms"]):
            for labels, stats in sorted(summary["histograms"][name].items()):
                label_text = ",".join(f"{k}={v}" for k, v in labels) or "-"
                rows.append(
                    [
                        name,
                        label_text,
                        int(stats["count"]),
                        stats["mean"],
                        _bucket_percentile(stats, 50),
                        _bucket_percentile(stats, 95),
                    ]
                )
        sections.append(
            _format_table(
                ["Histogram", "Labels", "Count", "Mean", "p50≤", "p95≤"],
                rows,
                title="Histograms (pooled across instances)",
            )
        )

    conflict_counts = summary["counters"].get("balancer_conflicts_total", {})
    pair_counts = summary["counters"].get("balancer_pairs_total", {})
    if pair_counts:
        rows = []
        for labels, pairs in sorted(pair_counts.items()):
            method = _label_value(labels, "method") or "?"
            conflicts = conflict_counts.get(labels, 0.0)
            fraction = conflicts / pairs if pairs else 0.0
            rows.append([method, int(pairs), int(conflicts), fraction])
        sections.append(
            _format_table(
                ["Method", "Pairs", "Conflicts", "Fraction"],
                rows,
                title="Balancer conflicts (gradient pairs with GCD > 1)",
            )
        )

    stream_counters = {
        "prefetch hits": "stream_prefetch_hits_total",
        "prefetch stalls": "stream_prefetch_stalls_total",
        "cache hits": "stream_cache_hits_total",
        "cache misses": "stream_cache_misses_total",
    }
    stream_totals = {
        label: sum(summary["counters"].get(name, {}).values())
        for label, name in stream_counters.items()
    }
    if any(stream_totals.values()):
        lines = ["Streaming data pipeline"]
        for label, total in stream_totals.items():
            lines.append(f"  {label}: {int(total)}")
        hits = stream_totals["prefetch hits"]
        stalls = stream_totals["prefetch stalls"]
        if hits + stalls:
            lines.append(
                f"  prefetch hit rate: {hits / (hits + stalls):.1%}"
                " (stall = trainer waited on shard generation)"
            )
        sections.append("\n".join(lines))

    applied = summary["counters"].get("mocograd_calibrations_total", {})
    skipped = summary["counters"].get("mocograd_skipped_zero_momentum_total", {})
    if applied or skipped:
        total_applied = sum(applied.values())
        total_skipped = sum(skipped.values())
        lam = next(
            (v for (name, _labels), v in summary["gauges"].items() if name == "mocograd_lambda"),
            None,
        )
        lines = [
            "MoCoGrad calibration",
            f"  calibrations applied: {int(total_applied)}",
            f"  skipped (zero momentum): {int(total_skipped)}",
        ]
        if lam is not None:
            lines.append(f"  final λ: {lam:.4f}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Conflict-dynamics rendering (``repro report --dynamics``)
# ----------------------------------------------------------------------
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 48) -> str:
    """Render a series as unicode blocks, mean-binned to ``width`` chars."""
    finite = [v for v in values if v == v and abs(v) != float("inf")]
    if not finite:
        return ""
    if len(values) > width:
        binned = []
        for i in range(width):
            chunk = values[i * len(values) // width : (i + 1) * len(values) // width]
            chunk = chunk or [values[-1]]
            binned.append(sum(chunk) / len(chunk))
        values = binned
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if value != value or abs(value) == float("inf"):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
        chars.append(_SPARK_BLOCKS[level])
    return "".join(chars)


def _pair_labels(tasks: list[str]) -> list[str]:
    """Row-major i < j pair labels matching GradStats.snapshot ordering."""
    return [
        f"{tasks[i]}·{tasks[j]}"
        for i in range(len(tasks))
        for j in range(i + 1, len(tasks))
    ]


def summarize_dynamics(events: Iterable[Mapping]) -> dict:
    """Aggregate ``dynamics`` events into labelled per-metric series.

    Samples are deduped by step (last event wins, so repeated recorder
    flushes are safe).  List-valued sample fields expand into one series
    per element: per-task fields (length K) are labelled with task names
    from the ``dynamics_meta`` event, ``gcd_pairs`` with ``taskA·taskB``
    pair labels; without matching metadata they fall back to ``name[k]``.

    Returns ``{"meta": {...}, "steps": [...], "series": {label: [(step,
    value), ...]}}`` with series sorted by step.
    """
    meta: dict = {}
    by_step: dict[int, dict] = {}
    for event in events:
        etype = event.get("type")
        if etype == "dynamics_meta":
            meta = {k: v for k, v in event.items() if k != "type"}
        elif etype == "dynamics":
            step = int(event.get("step", 0))
            by_step[step] = {
                k: v for k, v in event.items() if k not in ("type", "step", "tid", "ts")
            }

    tasks = list(meta.get("tasks") or [])
    pair_labels = _pair_labels(tasks)
    series: dict[str, list[tuple[int, float]]] = {}
    for step in sorted(by_step):
        for name, value in by_step[step].items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(name, []).append((step, float(value)))
            elif isinstance(value, (list, tuple)):
                for index, element in enumerate(value):
                    if not isinstance(element, (int, float)):
                        continue
                    if name == "gcd_pairs" and index < len(pair_labels):
                        label = f"gcd[{pair_labels[index]}]"
                    elif index < len(tasks) and len(value) == len(tasks):
                        label = f"{name}[{tasks[index]}]"
                    else:
                        label = f"{name}[{index}]"
                    series.setdefault(label, []).append((step, float(element)))
    return {"meta": meta, "steps": sorted(by_step), "series": series}


def format_dynamics(summary: Mapping) -> str:
    """Render per-metric sparkline tables from :func:`summarize_dynamics`."""
    series: dict = summary["series"]
    if not series:
        return (
            "No dynamics events found — run training with dynamics recording on\n"
            "(python -m repro train --record-dynamics --telemetry out.jsonl)."
        )
    meta = summary.get("meta") or {}
    steps = summary["steps"]
    header = (
        f"Conflict dynamics — {len(steps)} samples over steps "
        f"{steps[0]}–{steps[-1]}"
    )
    if meta:
        header += (
            f" (mode={meta.get('mode', '?')}, capacity={meta.get('capacity', '?')}, "
            f"seen={meta.get('seen', '?')})"
        )
    name_width = max(len(name) for name in series)
    lines = [
        header,
        f"{'metric':<{name_width}} {'first':>10} {'min':>10} {'max':>10} {'last':>10}  trend",
    ]
    for name in sorted(series):
        values = [value for _step, value in series[name]]
        lines.append(
            f"{name:<{name_width}} {values[0]:>10.4f} {min(values):>10.4f} "
            f"{max(values):>10.4f} {values[-1]:>10.4f}  {_sparkline(values)}"
        )
    return "\n".join(lines)
