"""repro — reproduction of MoCoGrad (Chai et al., ICDE 2024).

"Towards Task-Conflicts Momentum-Calibrated Approach for Multi-task
Learning": a momentum-calibrated gradient-manipulation method (MoCoGrad)
for mitigating task conflicts in multi-task learning, plus the TCI/GCD
conflict diagnostics, convergence theory, ten baselines, five MTL
architectures and six benchmark reproductions.

Quick start::

    import numpy as np
    from repro import MoCoGrad, MTLTrainer
    from repro.data import make_aliexpress

    bench = make_aliexpress("ES")
    model = bench.build_model("hps", np.random.default_rng(0))
    trainer = MTLTrainer(model, bench.tasks, MoCoGrad(seed=0),
                         mode=bench.mode, lr=1e-3, seed=0)
    trainer.fit(bench.train, epochs=10, batch_size=128)
    print(trainer.evaluate(bench.test))
"""

from . import analysis, arch, balancers, core, data, experiments, metrics, nn, obs, serve, training
from .core import (
    GradientBalancer,
    GradStats,
    MoCoGrad,
    available_balancers,
    create_balancer,
    gradient_conflict_degree,
    pairwise_gcd,
    task_conflict_intensity,
)
from .training import MTLTrainer, train_stl, train_stl_all

__version__ = "1.0.0"

__all__ = [
    "nn",
    "core",
    "balancers",
    "arch",
    "data",
    "metrics",
    "training",
    "analysis",
    "experiments",
    "obs",
    "serve",
    "MoCoGrad",
    "GradStats",
    "GradientBalancer",
    "create_balancer",
    "available_balancers",
    "gradient_conflict_degree",
    "pairwise_gcd",
    "task_conflict_intensity",
    "MTLTrainer",
    "train_stl",
    "train_stl_all",
    "__version__",
]
