"""Classification metrics: ROC-AUC (AliExpress) and accuracy (Office-Home)."""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc", "accuracy", "binary_accuracy"]


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (Mann–Whitney U).

    Ties in scores receive average ranks, matching sklearn's
    ``roc_auc_score``.  Returns 0.5 when only one class is present (the
    conventional degenerate value).
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same length")
    positive = labels > 0.5
    num_pos = int(positive.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over tied groups.
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[positive].sum())
    u_statistic = rank_sum_pos - num_pos * (num_pos + 1) / 2.0
    return u_statistic / (num_pos * num_neg)


def accuracy(predicted_classes: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy over integer class predictions."""
    predicted_classes = np.asarray(predicted_classes).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predicted_classes.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    if predicted_classes.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predicted_classes == labels))


def binary_accuracy(scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5) -> float:
    """Accuracy of thresholded scores against binary labels."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    return accuracy((scores >= threshold).astype(np.int64), np.asarray(labels) > 0.5)
