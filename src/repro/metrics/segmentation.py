"""Semantic-segmentation metrics: mean IoU and pixel accuracy."""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "mean_iou", "pixel_accuracy"]


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Class confusion counts ``C[i, j]`` = pixels of true class i predicted j."""
    predictions = np.asarray(predictions).reshape(-1).astype(np.int64)
    labels = np.asarray(labels).reshape(-1).astype(np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same size")
    valid = (labels >= 0) & (labels < num_classes)
    flat = labels[valid] * num_classes + predictions[valid]
    counts = np.bincount(flat, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def mean_iou(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Mean intersection-over-union over classes present in the labels."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    intersection = np.diag(matrix).astype(np.float64)
    union = matrix.sum(axis=0) + matrix.sum(axis=1) - intersection
    present = matrix.sum(axis=1) > 0
    if not present.any():
        raise ValueError("no valid labels found")
    iou = np.zeros(num_classes)
    nonzero = union > 0
    iou[nonzero] = intersection[nonzero] / union[nonzero]
    return float(iou[present].mean())


def pixel_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of pixels labelled correctly."""
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same size")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))
