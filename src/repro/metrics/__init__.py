"""``repro.metrics`` — every evaluation metric used in the paper's Section V."""

from .classification import accuracy, binary_accuracy, roc_auc
from .delta import delta_m, delta_m_from_results
from .normals import angular_distances, normal_metrics
from .regression import abs_error, mae, rel_error, rmse
from .segmentation import confusion_matrix, mean_iou, pixel_accuracy

__all__ = [
    "roc_auc",
    "accuracy",
    "binary_accuracy",
    "mae",
    "rmse",
    "abs_error",
    "rel_error",
    "confusion_matrix",
    "mean_iou",
    "pixel_accuracy",
    "angular_distances",
    "normal_metrics",
    "delta_m",
    "delta_m_from_results",
]
