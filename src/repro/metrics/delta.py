"""ΔM — the paper's cross-task aggregate metric (Eq. 27).

    Δ_M = (1/K) Σ_k (−1)^{s_k} (M_{m,k} − M_{b,k}) / M_{b,k}

where ``M_{b,k}`` is the single-task (STL) value of metric k, ``M_{m,k}``
the multi-task value, and ``s_k = 0`` when higher is better (so improvements
count positive) and 1 otherwise.  Every per-task metric contributes one term;
a metric with several statistics (e.g. segmentation mIoU and PixAcc)
contributes one term per statistic, following LibMTL.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["delta_m", "delta_m_from_results"]


def delta_m(
    mtl_values: Sequence[float],
    stl_values: Sequence[float],
    higher_is_better: Sequence[bool],
) -> float:
    """ΔM over aligned metric vectors; returned as a fraction (0.01 = +1%)."""
    mtl = np.asarray(mtl_values, dtype=np.float64)
    stl = np.asarray(stl_values, dtype=np.float64)
    signs = np.asarray(higher_is_better, dtype=bool)
    if not (mtl.shape == stl.shape == signs.shape):
        raise ValueError("all inputs must have the same length")
    if mtl.size == 0:
        raise ValueError("need at least one metric")
    if np.any(stl == 0):
        raise ValueError("single-task baseline metric of 0 makes ΔM undefined")
    relative = (mtl - stl) / np.abs(stl)
    relative = np.where(signs, relative, -relative)
    return float(relative.mean())


def delta_m_from_results(
    mtl_results: Mapping[str, Mapping[str, float]],
    stl_results: Mapping[str, Mapping[str, float]],
    higher_is_better: Mapping[str, Mapping[str, bool]],
) -> float:
    """ΔM from nested ``{task: {metric: value}}`` result dictionaries."""
    mtl_values, stl_values, signs = [], [], []
    for task, metrics in higher_is_better.items():
        for metric, sign in metrics.items():
            mtl_values.append(mtl_results[task][metric])
            stl_values.append(stl_results[task][metric])
            signs.append(sign)
    return delta_m(mtl_values, stl_values, signs)
