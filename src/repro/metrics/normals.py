"""Surface-normal metrics (NYUv2, Table III).

Predictions and ground truth are unit(ish) 3-vectors per pixel, laid out as
``(..., 3, H, W)`` or ``(N, 3)``.  Reported statistics follow the paper:
mean and median angular distance in degrees, plus the fraction of pixels
within 11.25°, 22.5° and 30°.
"""

from __future__ import annotations

import numpy as np

__all__ = ["angular_distances", "normal_metrics"]

_EPS = 1e-8


def _to_vectors(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    if array.ndim == 2 and array.shape[1] == 3:
        return array
    if array.ndim >= 3 and array.shape[1] == 3:
        # (N, 3, H, W) → (N*H*W, 3)
        moved = np.moveaxis(array, 1, -1)
        return moved.reshape(-1, 3)
    raise ValueError(f"cannot interpret shape {array.shape} as normal vectors")


def angular_distances(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-pixel angular distance in degrees between normal fields."""
    pred = _to_vectors(predictions)
    true = _to_vectors(targets)
    if pred.shape != true.shape:
        raise ValueError("prediction and target shapes must match")
    pred = pred / np.maximum(np.linalg.norm(pred, axis=1, keepdims=True), _EPS)
    true = true / np.maximum(np.linalg.norm(true, axis=1, keepdims=True), _EPS)
    cosine = np.clip(np.sum(pred * true, axis=1), -1.0, 1.0)
    return np.degrees(np.arccos(cosine))


def normal_metrics(predictions: np.ndarray, targets: np.ndarray) -> dict[str, float]:
    """The five surface-normal statistics of Table III."""
    angles = angular_distances(predictions, targets)
    return {
        "mean": float(np.mean(angles)),
        "median": float(np.median(angles)),
        "within_11.25": float(np.mean(angles < 11.25)),
        "within_22.5": float(np.mean(angles < 22.5)),
        "within_30": float(np.mean(angles < 30.0)),
    }
