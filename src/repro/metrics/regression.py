"""Regression metrics: MAE/RMSE (MovieLens, QM9) and depth errors (NYUv2)."""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "abs_error", "rel_error"]


def _flatten_pair(predictions, targets) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same size")
    if predictions.size == 0:
        raise ValueError("cannot compute a metric over an empty batch")
    return predictions, targets


def mae(predictions, targets) -> float:
    """Mean absolute error."""
    predictions, targets = _flatten_pair(predictions, targets)
    return float(np.mean(np.abs(predictions - targets)))


def rmse(predictions, targets) -> float:
    """Root mean squared error."""
    predictions, targets = _flatten_pair(predictions, targets)
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))


def abs_error(predictions, targets) -> float:
    """Absolute depth error (identical to MAE; paper's "Abs Err")."""
    return mae(predictions, targets)


def rel_error(predictions, targets, eps: float = 1e-6) -> float:
    """Relative depth error: mean |ŷ − y| / y (paper's "Rel Err")."""
    predictions, targets = _flatten_pair(predictions, targets)
    return float(np.mean(np.abs(predictions - targets) / np.maximum(np.abs(targets), eps)))
