"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                       # available experiments
    python -m repro table1 --preset quick      # Table I rows
    python -m repro fig8                       # backward-time study
    python -m repro table4 --methods equal,mocograd
    python -m repro table1 --telemetry out.jsonl   # stream telemetry events
    python -m repro report out.jsonl               # pretty-print a saved run
    python -m repro report run.jsonl run.worker*.jsonl   # merge a parallel run
    python -m repro serve --requests 512 --clients 8     # micro-batched inference demo

Flight recorder (see DESIGN.md, "Flight recorder")::

    python -m repro train --balancer mocograd --steps 200 \
        --profile trace.json --record-dynamics --telemetry run.jsonl
    python -m repro report run.jsonl --dynamics    # per-step GCD/λ sparklines
    # open https://ui.perfetto.dev (or chrome://tracing) and load trace.json

Outputs the same rows the benchmark harness writes to
``benchmarks/results/``; this entry point is the scriptable path.
``--telemetry PATH`` installs a process-wide JSONL sink: every trainer
created during the run streams its tracing spans and metric snapshots
into it (schema in DESIGN.md, "Observability").
"""

from __future__ import annotations

import argparse
import sys
import time

from . import obs
from .analysis import (
    architecture_sweep,
    backward_time_study,
    convergence_curves,
    lambda_sensitivity,
    task_interference_curve,
    tci_gcd_correlation,
)
from .experiments import METHODS, REGISTRY, format_percent, format_table


def _run_table(identifier: str, preset: str, methods) -> str:
    module, _ = REGISTRY[identifier]
    result = module.run(preset=preset, methods=methods)
    return module.format_result(result)


def _run_fig1(preset: str, methods) -> str:
    rows = []
    for architecture in ("hps", "mmoe"):
        curve = task_interference_curve(architecture=architecture, relatedness=0.05)
        for task_set, rmse in zip(curve["task_sets"], curve["rmse"]):
            rows.append([architecture, task_set, rmse])
    return format_table(["Arch", "Task set", "Task-A RMSE"], rows, title="Fig. 1")


def _run_fig2(preset: str, methods) -> str:
    result = tci_gcd_correlation()
    rows = list(zip(result["cosine"], result["gcd"], result["tci"]))
    table = format_table(["True task cosine", "mean GCD", "TCI"], rows, title="Fig. 2")
    return table + f"\nPearson r = {result['pearson_r']:.3f}"


def _run_fig6(preset: str, methods) -> str:
    result = convergence_curves(methods=methods)
    headers = ["Method"] + [f"epoch{i + 1}" for i in range(result["epochs"])]
    rows = [[m] + list(c["average"]) for m, c in result["curves"].items()]
    return format_table(headers, rows, title="Fig. 6 — average loss per epoch")


def _run_fig7(preset: str, methods) -> str:
    result = architecture_sweep()
    rows = [[arch, format_percent(d)] for arch, d in result["delta_m"].items()]
    return format_table(["Architecture", "ΔM"], rows, title="Fig. 7")


def _run_fig8(preset: str, methods) -> str:
    result = backward_time_study(methods=methods)
    backward = result["backward_seconds_per_step"]
    rows = [
        [m, t * 1000.0, backward[m] * 1000.0]
        for m, t in sorted(result["seconds_per_step"].items(), key=lambda kv: kv[1])
    ]
    return format_table(
        ["Method", "ms/step", "backward ms/step"], rows, title="Fig. 8", float_digits=3
    )


def _run_fig9(preset: str, methods) -> str:
    result = lambda_sensitivity()
    rows = list(zip(result["lambda"], result["avg_accuracy"]))
    return format_table(["λ", "Avg ACC"], rows, title="Fig. 9", float_digits=3)


def _run_serve(args) -> str:
    """Serving demo: micro-batched multi-scenario inference, instrumented."""
    import threading

    import numpy as np

    from .obs import Telemetry
    from .serve import ModelRegistry, Server, model_spec, save_model

    registry = ModelRegistry()
    scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    if not scenarios:
        raise SystemExit("--scenarios must name at least one scenario")
    if args.checkpoint:
        model = registry.load(args.checkpoint, name="served")
        spec = registry.spec("served")
        in_features = int(spec.get("config", {}).get("in_features", args.features))
    else:
        spec = model_spec(
            "mlp",
            architecture=args.arch,
            in_features=args.features,
            hidden=[32, 32],
            tasks=[f"task{i}" for i in range(args.tasks)],
            seed=args.seed,
        )
        model = registry.build(spec)
        in_features = args.features
        if args.save_checkpoint:
            path = save_model(model, args.save_checkpoint, spec)
            print(f"saved self-describing checkpoint to {path}")

    telemetry = Telemetry()
    rng = np.random.default_rng(args.seed)
    requests = [
        (rng.standard_normal((args.rows, in_features)), scenarios[i % len(scenarios)])
        for i in range(args.requests)
    ]
    config = {"max_batch_size": args.max_batch_size, "max_wait_ms": args.max_wait_ms}
    with Server({s: model for s in scenarios}, config, telemetry) as server:
        futures = [None] * len(requests)

        def client(start: int) -> None:
            for i in range(start, len(requests), args.clients):
                rows, scenario = requests[i]
                futures[i] = server.submit(rows, scenario)

        begin = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(t,)) for t in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - begin
        stats = server.stats()

    total_rows = args.requests * args.rows
    lines = [
        f"served {args.requests} requests × {args.rows} rows "
        f"({len(scenarios)} scenarios, {args.clients} clients) in {elapsed * 1000.0:.1f} ms "
        f"— {total_rows / elapsed:,.0f} rows/s",
        f"batches: {stats['batches']['count']} "
        f"(mean {stats['batches']['mean_rows']:.1f} rows, "
        f"p99 {stats['batches']['p99_rows']:.0f})",
    ]
    for scenario, digest in stats["scenarios"].items():
        lines.append(
            f"  {scenario}: {digest['requests']} requests, "
            f"p50 ≤ {digest['p50_seconds'] * 1000.0:g} ms, "
            f"p99 ≤ {digest['p99_seconds'] * 1000.0:g} ms"
        )
    return "\n".join(lines)


ANALYSIS_RUNNERS = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def _run_train(args) -> str:
    """Flight-recorder demo run: synthetic MTL training, fully instrumented."""
    import numpy as np

    from .core.balancer import available_balancers, create_balancer
    from .data import make_synthetic_mtl, make_synthetic_stream
    from .training import MTLTrainer

    if args.balancer not in available_balancers():
        raise SystemExit(
            f"unknown balancer {args.balancer!r}; available: {available_balancers()}"
        )
    # 80 samples/step: batch 64 over the ~80% train split, so one epoch
    # holds at least --steps batches.
    workload = dict(
        num_tasks=args.tasks,
        # Conflicting tasks (negative cosine) so there are dynamics worth
        # recording, clamped to the K-task feasibility bound.
        pairwise_cosine=max(-0.2, -0.9 / max(args.tasks - 1, 1)),
        seed=args.seed,
    )
    if args.streaming:
        benchmark = make_synthetic_stream(
            num_samples=max(64 * args.steps, 512),
            chunk_size=args.chunk_size,
            cache=args.cache_dir,
            **workload,
        )
    else:
        benchmark = make_synthetic_mtl(num_samples=max(80 * args.steps, 512), **workload)
    model = benchmark.build_model("hps", np.random.default_rng(args.seed))
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        create_balancer(args.balancer, seed=args.seed),
        grad_space=args.grad_space,
        seed=args.seed,
        profile=args.profile,
        record_dynamics=args.record_dynamics,
    )
    trainer.fit(
        benchmark.train, epochs=1, batch_size=64, max_steps_per_epoch=args.steps
    )
    lines = [
        f"trained {args.balancer} on {benchmark.name} — "
        f"{trainer.step_count} steps, K={args.tasks}",
        "final losses: "
        + ", ".join(
            f"{task.name}={loss:.4f}"
            for task, loss in zip(trainer.tasks, trainer.history.step_losses[-1])
        ),
    ]
    if args.streaming:
        telemetry = trainer.telemetry
        hits = telemetry.counter("stream_prefetch_hits_total").value
        stalls = telemetry.counter("stream_prefetch_stalls_total").value
        cache_hits = telemetry.counter("stream_cache_hits_total").value
        cache_misses = telemetry.counter("stream_cache_misses_total").value
        lines.append(
            f"streaming: chunk={args.chunk_size}, "
            f"prefetch hits={int(hits)} stalls={int(stalls)}, "
            f"cache hits={int(cache_hits)} misses={int(cache_misses)}"
            + (f" (dir {args.cache_dir})" if args.cache_dir else "")
        )
    if trainer.profiler is not None:
        lines += ["", trainer.profiler.format_self_times()]
        if args.profile:
            lines.append(
                f"\nwrote Chrome trace to {args.profile} — load it in "
                "chrome://tracing or https://ui.perfetto.dev"
            )
    if trainer.recorder is not None:
        recorder = trainer.recorder
        lines.append(
            f"recorded {len(recorder)} dynamics samples "
            f"({recorder.mode}, capacity {recorder.capacity}, seen {recorder.seen})"
        )
        if args.telemetry:
            lines.append(
                f"render them with: python -m repro report {args.telemetry} --dynamics"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    experiments = sorted(set(REGISTRY) | set(ANALYSIS_RUNNERS))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the MoCoGrad paper.",
    )
    parser.add_argument(
        "experiment", choices=experiments + ["list", "report", "serve", "train"]
    )
    parser.add_argument(
        "path",
        nargs="*",
        default=[],
        help="telemetry JSONL file(s) (required by the `report` subcommand; "
        "pass the parent file plus any run.worker<i>.jsonl files to merge a "
        "multi-process run)",
    )
    parser.add_argument("--preset", default="quick", choices=("quick", "full"))
    parser.add_argument(
        "--methods",
        default=None,
        help="comma-separated balancer names (default: the paper's method list)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="stream telemetry events (spans, metrics) to this JSONL file",
    )
    parser.add_argument(
        "--dynamics",
        action="store_true",
        help="report: render per-step conflict-dynamics sparklines instead "
        "of the timing/conflict digest",
    )
    train = parser.add_argument_group("train subcommand (flight-recorder demo)")
    train.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="train: export a Chrome trace_event JSON timeline to PATH",
    )
    train.add_argument(
        "--record-dynamics",
        action="store_true",
        help="train: record per-step conflict dynamics (stream with --telemetry)",
    )
    train.add_argument("--balancer", default="mocograd", help="train: balancer name")
    train.add_argument(
        "--grad-space",
        choices=("parameters", "features"),
        default="parameters",
        help="train: balance shared-parameter gradients (K×d) or "
        "shared-representation gradients (K×d_feat, one trunk backprop)",
    )
    train.add_argument(
        "--streaming",
        action="store_true",
        help="train: generate data through the streaming shard pipeline "
        "(bounded memory, double-buffered prefetch) instead of eagerly",
    )
    train.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        metavar="N",
        help="train: rows per generated shard in --streaming mode",
    )
    train.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="train: mmap shard-cache directory for --streaming mode "
        "(write-once per shard; repeated runs reuse cached shards)",
    )
    train.add_argument("--steps", type=int, default=200, help="train: optimization steps")
    train.add_argument("--tasks", type=int, default=4, help="train/serve: task count K")
    train.add_argument("--seed", type=int, default=0, help="train/serve: RNG seed")
    serve = parser.add_argument_group("serve subcommand (micro-batched inference demo)")
    serve.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="serve: load the model from a self-describing checkpoint "
        "(written by repro.serve.save_model) instead of building one",
    )
    serve.add_argument(
        "--save-checkpoint",
        metavar="PATH",
        default=None,
        help="serve: write the freshly built model as a self-describing "
        "checkpoint before serving (demo of the save→load round trip)",
    )
    serve.add_argument(
        "--arch",
        default="hps",
        help="serve: architecture for the built model (see repro.arch.MLP_ARCHITECTURES)",
    )
    serve.add_argument(
        "--scenarios",
        default="ES,FR,NL,US",
        help="serve: comma-separated scenario keys routed to the model",
    )
    serve.add_argument("--requests", type=int, default=256, help="serve: request count")
    serve.add_argument("--rows", type=int, default=1, help="serve: rows per request")
    serve.add_argument("--clients", type=int, default=4, help="serve: client threads")
    serve.add_argument("--features", type=int, default=16, help="serve: input features")
    serve.add_argument(
        "--max-batch-size", type=int, default=64, help="serve: rows per coalesced batch"
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, help="serve: batch latency budget (ms)"
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for identifier in experiments:
            label = REGISTRY[identifier][1] if identifier in REGISTRY else "analysis figure"
            print(f"{identifier:8s} {label}")
        return 0

    if args.experiment == "report":
        if not args.path:
            parser.error("report requires at least one telemetry JSONL path")
        try:
            events = obs.load_run_events(args.path)
        except OSError as exc:
            parser.error(f"cannot read telemetry file: {exc}")
        except ValueError as exc:
            parser.error(str(exc))
        if args.dynamics:
            print(obs.format_dynamics(obs.summarize_dynamics(events)))
        else:
            print(obs.format_report(obs.summarize_events(events)))
        return 0

    sink = None
    if args.telemetry:
        try:
            sink = obs.JsonlSink(args.telemetry)
        except OSError as exc:
            parser.error(f"cannot open telemetry file: {exc}")
        obs.configure_sinks([sink])
        sink.emit(
            {
                "type": "run",
                "experiment": args.experiment,
                "preset": args.preset,
                "ts": time.time(),
            }
        )
    try:
        methods = tuple(args.methods.split(",")) if args.methods else METHODS
        if args.experiment == "serve":
            print(_run_serve(args))
        elif args.experiment == "train":
            print(_run_train(args))
        elif args.experiment in REGISTRY:
            print(_run_table(args.experiment, args.preset, methods))
        else:
            print(ANALYSIS_RUNNERS[args.experiment](args.preset, methods))
    finally:
        if sink is not None:
            obs.configure_sinks([])
            sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
