"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                       # available experiments
    python -m repro table1 --preset quick      # Table I rows
    python -m repro fig8                       # backward-time study
    python -m repro table4 --methods equal,mocograd

Outputs the same rows the benchmark harness writes to
``benchmarks/results/``; this entry point is the scriptable path.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    architecture_sweep,
    backward_time_study,
    convergence_curves,
    lambda_sensitivity,
    task_interference_curve,
    tci_gcd_correlation,
)
from .experiments import METHODS, REGISTRY, format_percent, format_table


def _run_table(identifier: str, preset: str, methods) -> str:
    module, _ = REGISTRY[identifier]
    result = module.run(preset=preset, methods=methods)
    return module.format_result(result)


def _run_fig1(preset: str, methods) -> str:
    rows = []
    for architecture in ("hps", "mmoe"):
        curve = task_interference_curve(architecture=architecture, relatedness=0.05)
        for task_set, rmse in zip(curve["task_sets"], curve["rmse"]):
            rows.append([architecture, task_set, rmse])
    return format_table(["Arch", "Task set", "Task-A RMSE"], rows, title="Fig. 1")


def _run_fig2(preset: str, methods) -> str:
    result = tci_gcd_correlation()
    rows = list(zip(result["cosine"], result["gcd"], result["tci"]))
    table = format_table(["True task cosine", "mean GCD", "TCI"], rows, title="Fig. 2")
    return table + f"\nPearson r = {result['pearson_r']:.3f}"


def _run_fig6(preset: str, methods) -> str:
    result = convergence_curves(methods=methods)
    headers = ["Method"] + [f"epoch{i + 1}" for i in range(result["epochs"])]
    rows = [[m] + list(c["average"]) for m, c in result["curves"].items()]
    return format_table(headers, rows, title="Fig. 6 — average loss per epoch")


def _run_fig7(preset: str, methods) -> str:
    result = architecture_sweep()
    rows = [[arch, format_percent(d)] for arch, d in result["delta_m"].items()]
    return format_table(["Architecture", "ΔM"], rows, title="Fig. 7")


def _run_fig8(preset: str, methods) -> str:
    result = backward_time_study(methods=methods)
    rows = [
        [m, t * 1000.0]
        for m, t in sorted(result["seconds_per_step"].items(), key=lambda kv: kv[1])
    ]
    return format_table(["Method", "ms/step"], rows, title="Fig. 8", float_digits=3)


def _run_fig9(preset: str, methods) -> str:
    result = lambda_sensitivity()
    rows = list(zip(result["lambda"], result["avg_accuracy"]))
    return format_table(["λ", "Avg ACC"], rows, title="Fig. 9", float_digits=3)


ANALYSIS_RUNNERS = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def main(argv: list[str] | None = None) -> int:
    experiments = sorted(set(REGISTRY) | set(ANALYSIS_RUNNERS))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the MoCoGrad paper.",
    )
    parser.add_argument("experiment", choices=experiments + ["list"])
    parser.add_argument("--preset", default="quick", choices=("quick", "full"))
    parser.add_argument(
        "--methods",
        default=None,
        help="comma-separated balancer names (default: the paper's method list)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for identifier in experiments:
            label = REGISTRY[identifier][1] if identifier in REGISTRY else "analysis figure"
            print(f"{identifier:8s} {label}")
        return 0

    methods = tuple(args.methods.split(",")) if args.methods else METHODS
    if args.experiment in REGISTRY:
        print(_run_table(args.experiment, args.preset, methods))
    else:
        print(ANALYSIS_RUNNERS[args.experiment](args.preset, methods))
    return 0


if __name__ == "__main__":
    sys.exit(main())
