"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, digits: int = 2) -> str:
    """Render a fraction as a signed percentage, e.g. 0.0048 → '+0.48%'."""
    return f"{value * 100:+.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_digits: int = 4,
) -> str:
    """Fixed-width ASCII table (the shape the paper's tables print in)."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
