"""Table III — NYUv2 scene understanding (segmentation / depth / normals).

Reports the paper's full metric set per method: mIoU and PixAcc for
segmentation, Abs/Rel error for depth, mean/median angle distance and the
within-t° fractions for surface normals, plus ΔM over all nine numbers.
"""

from __future__ import annotations

from ..data.nyuv2 import make_nyuv2
from .reporting import format_percent, format_table
from .runner import METHODS, RunConfig, run_methods

__all__ = ["PRESETS", "run", "format_result", "METRIC_COLUMNS"]

PRESETS = {
    "quick": {"num_scenes": 150, "epochs": 6, "batch_size": 16, "lr": 3e-3, "num_seeds": 2},
    "full": {"num_scenes": 400, "epochs": 12, "batch_size": 16, "lr": 3e-3, "num_seeds": 2},
}

#: (task, metric) columns in the paper's order.
METRIC_COLUMNS = (
    ("segmentation", "miou"),
    ("segmentation", "pixacc"),
    ("depth", "abs_err"),
    ("depth", "rel_err"),
    ("normal", "mean"),
    ("normal", "median"),
    ("normal", "within_11.25"),
    ("normal", "within_22.5"),
    ("normal", "within_30"),
)


def run(preset: str = "quick", methods=METHODS, seed: int = 0) -> dict:
    """Run Table III; returns per-method metric dicts plus ΔM."""
    params = PRESETS[preset]
    benchmark = make_nyuv2(num_scenes=params["num_scenes"], seed=seed)
    config = RunConfig(
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        seed=seed,
        num_seeds=params.get("num_seeds", 1),
    )
    results = run_methods(benchmark, methods, config)
    return {
        "preset": preset,
        "metrics": {name: r.metrics for name, r in results.items()},
        "delta_m": {name: r.delta_m for name, r in results.items()},
    }


def format_result(result: dict) -> str:
    """Render the Table III layout (9 metric columns + ΔM)."""
    headers = ["Method"] + [f"{task[:3]}.{metric}" for task, metric in METRIC_COLUMNS] + ["ΔM"]
    rows = []
    for method, metrics in result["metrics"].items():
        row = [method] + [metrics[task][metric] for task, metric in METRIC_COLUMNS]
        row.append(format_percent(result["delta_m"][method]))
        rows.append(row)
    return format_table(headers, rows, title="Table III — NYUv2", float_digits=3)
