"""Combine the benchmark harness outputs into one report.

``pytest benchmarks/ --benchmark-only`` writes each regenerated table to
``benchmarks/results/<id>.txt``; :func:`summarize_results` stitches them
into a single document in the paper's artifact order — handy for diffing
two runs or pasting into an issue.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["ARTIFACT_ORDER", "summarize_results", "missing_results"]

#: artifact id → one-line description, in the paper's presentation order.
ARTIFACT_ORDER = (
    ("fig1", "Fig. 1 — task interference vs task count"),
    ("fig2", "Fig. 2 — TCI vs GCD correlation"),
    ("table1", "Table I — AliExpress AUC"),
    ("table2", "Table II — QM9 / MovieLens regression"),
    ("table3", "Table III — NYUv2"),
    ("table4", "Table IV — CityScapes"),
    ("fig5", "Fig. 5 — Office-Home accuracy"),
    ("fig6", "Fig. 6 — convergence curves"),
    ("fig7", "Fig. 7 — architecture sweep"),
    ("fig8", "Fig. 8 — backward time"),
    ("fig9", "Fig. 9 — λ sensitivity"),
    ("ablation_conflict_stress", "Ablation — conflict stress"),
    ("ablation_mocograd_modes", "Ablation — MoCoGrad design choices"),
    ("ablation_grad_source", "Ablation — feature-level gradients"),
)


def missing_results(results_dir) -> list[str]:
    """Artifact ids whose result file has not been generated yet."""
    results_dir = Path(results_dir)
    return [
        identifier
        for identifier, _ in ARTIFACT_ORDER
        if not (results_dir / f"{identifier}.txt").exists()
    ]


def summarize_results(results_dir, include_missing: bool = True) -> str:
    """One document with every generated table, in paper order."""
    results_dir = Path(results_dir)
    sections = ["# Reproduction results", ""]
    for identifier, description in ARTIFACT_ORDER:
        path = results_dir / f"{identifier}.txt"
        sections.append(f"## {description}")
        if path.exists():
            sections.append("")
            sections.append(path.read_text().rstrip())
        elif include_missing:
            sections.append("")
            sections.append(
                f"*(not generated — run `pytest benchmarks/bench_{identifier}*.py "
                "--benchmark-only`)*"
            )
        sections.append("")
    return "\n".join(sections)
