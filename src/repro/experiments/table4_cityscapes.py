"""Table IV — CityScapes 2-task scene understanding (seg + depth + ΔM)."""

from __future__ import annotations

from ..data.cityscapes import make_cityscapes
from .reporting import format_percent, format_table
from .runner import METHODS, RunConfig, run_methods

__all__ = ["PRESETS", "run", "format_result", "METRIC_COLUMNS"]

PRESETS = {
    "quick": {"num_scenes": 120, "epochs": 3, "batch_size": 16, "lr": 3e-3, "num_seeds": 2},
    "full": {"num_scenes": 400, "epochs": 8, "batch_size": 16, "lr": 3e-3, "num_seeds": 2},
}

METRIC_COLUMNS = (
    ("segmentation", "miou"),
    ("segmentation", "pixacc"),
    ("depth", "abs_err"),
    ("depth", "rel_err"),
)


def run(preset: str = "quick", methods=METHODS, seed: int = 0) -> dict:
    """Run Table IV; returns per-method metric dicts plus ΔM."""
    params = PRESETS[preset]
    benchmark = make_cityscapes(num_scenes=params["num_scenes"], seed=seed)
    config = RunConfig(
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        seed=seed,
        num_seeds=params.get("num_seeds", 1),
    )
    results = run_methods(benchmark, methods, config)
    return {
        "preset": preset,
        "metrics": {name: r.metrics for name, r in results.items()},
        "delta_m": {name: r.delta_m for name, r in results.items()},
    }


def format_result(result: dict) -> str:
    """Render the Table IV layout (4 metric columns + ΔM)."""
    headers = ["Method"] + [f"{task[:3]}.{metric}" for task, metric in METRIC_COLUMNS] + ["ΔM"]
    rows = []
    for method, metrics in result["metrics"].items():
        row = [method] + [metrics[task][metric] for task, metric in METRIC_COLUMNS]
        row.append(format_percent(result["delta_m"][method]))
        rows.append(row)
    return format_table(headers, rows, title="Table IV — CityScapes", float_digits=4)
