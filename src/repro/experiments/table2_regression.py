"""Table II — multi-task regression: QM9 (avg MAE) and MovieLens (avg RMSE).

Each method trains the 11-task QM9 model and the 9-genre MovieLens model;
the table reports the across-task average MAE / RMSE plus ΔM per dataset.
"""

from __future__ import annotations

import numpy as np

from ..data.movielens import GENRES, make_movielens
from ..data.qm9 import PROPERTIES, make_qm9
from ..metrics.delta import delta_m_from_results
from .reporting import format_percent, format_table
from .runner import METHODS, RunConfig, run_method, run_stl_baseline

__all__ = ["PRESETS", "run", "format_result"]

# QM9 lives in the scarce-and-noisy-labels regime where the paper's
# "sharing helps" shape holds: few training molecules per property with
# strong label noise, evaluated on large clean test pools (see the QM9
# generator docstring).  MovieLens uses moderate conflict (relatedness 0.2).
PRESETS = {
    "quick": {
        "qm9": {
            "data": {
                "molecules_per_task": 30,
                "noise": 0.5,
                "hidden": (48, 32),
                "properties": PROPERTIES,
            },
            "epochs": 25,
            "batch_size": 16,
        },
        "movielens": {
            "data": {"records_per_genre": 150, "genres": GENRES[:4], "relatedness": 0.5},
            "epochs": 8,
            "batch_size": 32,
        },
        "lr": 3e-3,
        "num_seeds": 2,
    },
    "full": {
        "qm9": {
            "data": {
                "molecules_per_task": 50,
                "noise": 0.5,
                "hidden": (48, 32),
                "properties": PROPERTIES,
            },
            "epochs": 30,
            "batch_size": 16,
        },
        "movielens": {
            "data": {"records_per_genre": 300, "genres": GENRES, "relatedness": 0.5},
            "epochs": 10,
            "batch_size": 32,
        },
        "lr": 3e-3,
        "num_seeds": 3,
    },
}


def _average(metrics: dict[str, dict[str, float]], key: str) -> float:
    return float(np.mean([task_metrics[key] for task_metrics in metrics.values()]))


def run(preset: str = "quick", methods=METHODS, seed: int = 0) -> dict:
    """Run Table II; returns per-dataset average errors + ΔM per method."""
    params = PRESETS[preset]
    qm9 = make_qm9(seed=seed, **params["qm9"]["data"])
    movielens = make_movielens(seed=seed, **params["movielens"]["data"])

    result: dict = {"preset": preset, "qm9": {}, "movielens": {}}
    for name, benchmark, avg_metric in (
        ("qm9", qm9, "mae"),
        ("movielens", movielens, "rmse"),
    ):
        config = RunConfig(
            epochs=params[name]["epochs"],
            batch_size=params[name]["batch_size"],
            lr=params["lr"],
            seed=seed,
            num_seeds=params.get("num_seeds", 1),
        )
        stl = run_stl_baseline(benchmark, config)
        directions = {t.name: dict(t.higher_is_better) for t in benchmark.tasks}
        result[name]["stl"] = {"avg": _average(stl, avg_metric), "delta_m": 0.0}
        for method in methods:
            metrics = run_method(benchmark, method, config)
            result[name][method] = {
                "avg": _average(metrics, avg_metric),
                "delta_m": delta_m_from_results(metrics, stl, directions),
            }
    return result


def format_result(result: dict) -> str:
    """Render the Table II layout (per-dataset averages + ΔM)."""
    headers = ["Method", "QM9 Avg MAE", "QM9 ΔM", "MovieLens Avg RMSE", "MovieLens ΔM"]
    rows = []
    for method in result["qm9"]:
        rows.append(
            [
                method,
                result["qm9"][method]["avg"],
                format_percent(result["qm9"][method]["delta_m"]),
                result["movielens"][method]["avg"],
                format_percent(result["movielens"][method]["delta_m"]),
            ]
        )
    return format_table(headers, rows, title="Table II — QM9 / MovieLens regression")
